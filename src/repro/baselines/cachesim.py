"""Set-associative LRU cache simulator.

The analytic CPU model estimates vertex-access miss rates with a
closed-form working-set formula (:mod:`repro.baselines.memory`).  This
simulator measures the same quantity exactly on an address trace, so
tests can bound the formula's error on real graph traces instead of
trusting it blindly.

The implementation is trace-driven and vectorless by design (caches are
inherently sequential state machines); it is meant for validation runs
of 10^5-10^6 accesses, not for production simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigError

__all__ = ["CacheSimulator", "CacheStats", "vertex_access_trace"]


@dataclass
class CacheStats:
    """Hit/miss counters of one simulation."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class CacheSimulator:
    """A single-level, set-associative, LRU, write-allocate cache.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Cache-line size; addresses are grouped into lines.
    ways:
        Associativity (1 = direct mapped; ``sets == 1`` gives fully
        associative).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64,
                 ways: int = 8) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigError("cache parameters must be positive")
        if capacity_bytes % (line_bytes * ways):
            raise ConfigError(
                "capacity must be a multiple of line_bytes * ways"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.num_sets = capacity_bytes // (line_bytes * ways)
        # sets[s] maps line tag -> recency counter (higher = newer).
        self._sets: list[dict[int, int]] = [dict()
                                            for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        if address < 0:
            raise ConfigError("addresses must be non-negative")
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[index]
        self._clock += 1
        self.stats.accesses += 1
        if tag in cache_set:
            cache_set[tag] = self._clock
            self.stats.hits += 1
            return True
        if len(cache_set) >= self.ways:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._clock
        return False

    def run_trace(self, addresses: Iterable[int]) -> CacheStats:
        """Feed a whole address trace; returns the cumulative stats."""
        for address in addresses:
            self.access(int(address))
        return self.stats

    def reset(self) -> None:
        """Flush contents and counters."""
        self._sets = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()


def vertex_access_trace(destinations: np.ndarray,
                        property_bytes: int = 8) -> np.ndarray:
    """Byte addresses of the per-edge destination-vertex accesses.

    This is the access stream a GridGraph-style gather performs into
    the vertex property array: one read-modify-write at
    ``dst * property_bytes`` per edge, in edge-stream order.
    """
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.ndim != 1:
        raise ConfigError("destinations must be a vector")
    if destinations.size and destinations.min() < 0:
        raise ConfigError("negative vertex id in trace")
    return destinations * int(property_bytes)
