"""Functional GridGraph-style execution engine (Figure 2b).

The analytic CPU platform charges costs from an activity trace; this
module actually *executes* vertex programs the way GridGraph does —
streaming the 2-D edge grid with dual sliding windows, applying updates
straight to the destination chunk — so the CPU baseline's semantics are
demonstrated, not assumed.

The engine supports the same vertex-program interface the accelerator
maps (processEdge/reduce/apply via the program descriptors), processes
edge blocks in destination-oriented order, and maintains the active
list for frontier algorithms.  Results are asserted identical to the
references in tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.registry import get_program
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.graph.partition import DualSlidingWindows

__all__ = ["GridGraphEngine"]


class GridGraphEngine:
    """Edge-centric execution over a ``P x P`` edge grid.

    Parameters
    ----------
    num_chunks:
        ``P`` — vertex chunks per dimension (GridGraph picks P so a
        chunk fits in cache; functionally any P works).
    """

    def __init__(self, num_chunks: int = 4) -> None:
        if num_chunks <= 0:
            raise ConfigError("num_chunks must be positive")
        self.num_chunks = int(num_chunks)

    # ------------------------------------------------------------------
    def run(self, algorithm: str, graph: Graph, max_iterations: int = 100,
            **kwargs) -> AlgorithmResult:
        """Execute a registered vertex program edge-centrically."""
        program = self._program(algorithm, **kwargs)
        windows = DualSlidingWindows(
            graph.num_vertices,
            min(self.num_chunks, graph.num_vertices),
        )
        blocks = self._edge_blocks(graph, windows)

        properties = program.initial_properties(graph, **kwargs)
        coefficients = program.crossbar_coefficient(graph)
        frontier: Optional[np.ndarray] = None
        if program.needs_active_list:
            frontier = properties != program.reduce_identity

        trace = IterationTrace(
            frontiers=[] if program.needs_active_list else None)
        converged = False
        iterations = 0
        for iteration in range(1, max_iterations + 1):
            if program.needs_active_list and not frontier.any():
                converged = True
                break
            iterations = iteration
            new_props, edges_touched = self._one_pass(
                program, graph, blocks, properties, coefficients,
                frontier)
            trace.record(
                vertices=(int(frontier.sum()) if frontier is not None
                          else graph.num_vertices),
                edges=edges_touched,
                frontier=frontier if program.needs_active_list else None,
            )
            done = program.has_converged(properties, new_props, iteration)
            if program.needs_active_list:
                frontier = new_props != properties
                done = not frontier.any()
            properties = new_props
            if done:
                converged = True
                break
        return AlgorithmResult(
            algorithm=program.name,
            values=properties,
            iterations=iterations,
            converged=converged,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _program(self, algorithm: str, **kwargs) -> VertexProgram:
        ctor = {k: v for k, v in kwargs.items()
                if k in ("source", "damping", "tolerance")}
        return get_program(algorithm, **ctor)

    def _edge_blocks(self, graph: Graph, windows: DualSlidingWindows):
        """Group edge indices into the (src_chunk, dst_chunk) grid,
        destination-oriented order (all source chunks for dst chunk 0,
        then dst chunk 1, ...)."""
        src = np.asarray(graph.adjacency.rows)
        dst = np.asarray(graph.adjacency.cols)
        chunk = windows.chunk_size
        keys = (dst // chunk) * windows.num_chunks + (src // chunk)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1])))
        stops = np.concatenate((boundaries[1:], [order.size]))
        return [(order[int(b):int(e)]) for b, e in zip(boundaries, stops)]

    def _one_pass(self, program: VertexProgram, graph: Graph, blocks,
                  properties: np.ndarray, coefficients: np.ndarray,
                  frontier: Optional[np.ndarray]
                  ) -> Tuple[np.ndarray, int]:
        """One full grid scan: scatter + gather fused per block."""
        src = np.asarray(graph.adjacency.rows)
        dst = np.asarray(graph.adjacency.cols)
        is_mac = program.pattern is MappingPattern.PARALLEL_MAC

        if is_mac:
            accumulator = np.zeros(graph.num_vertices)
        else:
            accumulator = properties.copy()
        inputs = program.source_input(properties, graph)

        edges_touched = 0
        for edge_ids in blocks:
            if frontier is not None:
                edge_ids = edge_ids[frontier[src[edge_ids]]]
                if edge_ids.size == 0:
                    continue
            edges_touched += int(edge_ids.size)
            sources = src[edge_ids]
            targets = dst[edge_ids]
            if is_mac:
                values = coefficients[edge_ids] * inputs[sources]
                np.add.at(accumulator, targets, values)
            else:
                values = coefficients[edge_ids] + properties[sources]
                np.minimum.at(accumulator, targets, values)

        new_props = program.apply(accumulator, properties, graph)
        return new_props, edges_touched
