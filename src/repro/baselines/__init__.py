"""Baseline platform models: CPU (GridGraph-like), GPU (Gunrock-like)
and PIM (Tesseract-like).

Each platform implements :class:`~repro.baselines.base.Platform`:
``run(algorithm, graph, **kw)`` executes the exact reference algorithm
for the *values* and charges an analytical performance/energy model for
the *costs*, driven by the same per-iteration activity trace GraphR's
analytic mode uses.  Model parameters and their calibration rationale
are documented per module and in DESIGN.md Section 2.
"""

from repro.baselines.base import Platform
from repro.baselines.memory import CacheModel, cache_miss_rate
from repro.baselines.cachesim import CacheSimulator, CacheStats
from repro.baselines.cpu import CPUPlatform
from repro.baselines.gpu import GPUPlatform
from repro.baselines.gridgraph import GridGraphEngine
from repro.baselines.pim import PIMPlatform

__all__ = [
    "Platform",
    "CacheModel",
    "cache_miss_rate",
    "CacheSimulator",
    "CacheStats",
    "CPUPlatform",
    "GPUPlatform",
    "GridGraphEngine",
    "PIMPlatform",
]
