"""GPU baseline: Gunrock (and cuMF_SGD for CF) on a Tesla K40c (Table 5).

Model
-----
Gunrock's kernels on graph workloads are memory-bound; per iteration
with ``E_i`` active edges:

* memory time — ``E_i * bytes_per_edge`` (CSR indices, weight, source
  property gather, destination atomic update) over the board bandwidth,
  derated by an irregular-access efficiency;
* compute time — ``E_i * instructions`` over the SIMT throughput with a
  divergence derate; the iteration takes the max of the two plus a few
  kernel launches;
* once per run: PCIe transfer of the graph + property vectors
  (the overhead the paper credits GraphR for not paying) and a fixed
  framework setup.

Energy is ``board power x time`` (the paper measures via nvidia-smi).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.vertex_program import AlgorithmResult
from repro.baselines.base import Platform
from repro.graph.graph import Graph
from repro.hw.params import GPUParams
from repro.hw.stats import RunStats

__all__ = ["GPUPlatform"]


@dataclass(frozen=True)
class _GPUModelKnobs:
    """Calibration constants of the GPU model."""

    bytes_per_edge: float = 24.0
    memory_efficiency: float = 0.38      # irregular-gather derate
    instructions_per_edge: float = 12.0
    kernels_per_iteration: int = 3
    fixed_overhead_s: float = 5e-3
    transfer_bytes_per_edge: float = 12.0
    #: cuMF_SGD keeps factor vectors in shared memory/registers, so the
    #: DRAM traffic per rating is far below 2 x F x 8 bytes.
    cf_work_factor: float = 0.33


class GPUPlatform(Platform):
    """Gunrock/cuMF-style GPU execution model."""

    name = "gpu"

    def __init__(self, params: GPUParams | None = None,
                 knobs: _GPUModelKnobs | None = None) -> None:
        self.params = params or GPUParams()
        self.knobs = knobs or _GPUModelKnobs()

    # ------------------------------------------------------------------
    def _charge(self, result: AlgorithmResult, graph: Graph,
                stats: RunStats, **kwargs) -> None:
        p = self.params
        k = self.knobs

        work_factor = 1.0
        if result.algorithm == "cf":
            features = int(kwargs.get("features", 32))
            work_factor = features * k.cf_work_factor

        effective_bw = p.memory_bandwidth_bps * k.memory_efficiency
        simt_rate = p.cuda_cores * p.frequency_hz * p.simt_efficiency

        transfer_bytes = (graph.num_edges * k.transfer_bytes_per_edge
                          + graph.num_vertices * 8)
        transfer_s = transfer_bytes / p.pcie_bandwidth_bps
        seconds = k.fixed_overhead_s + transfer_s
        stats.latency.add("pcie_transfer", transfer_s)
        stats.latency.add("framework_setup", k.fixed_overhead_s)

        for edges in result.trace.active_edges:
            memory_s = edges * k.bytes_per_edge * work_factor / effective_bw
            compute_s = (edges * k.instructions_per_edge * work_factor
                         / simt_rate)
            launch_s = k.kernels_per_iteration * p.kernel_launch_s
            iter_s = max(memory_s, compute_s) + launch_s
            seconds += iter_s
            stats.latency.add("memory" if memory_s >= compute_s
                              else "compute", max(memory_s, compute_s))
            stats.latency.add("kernel_launch", launch_s)

        stats.seconds = seconds
        stats.energy.charge_joules("board", p.board_power_w * seconds)
        stats.extra["transfer_s"] = transfer_s
        stats.extra["work_factor"] = work_factor
