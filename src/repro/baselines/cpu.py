"""CPU baseline: a GridGraph-style out-of-core framework on the paper's
dual-socket Xeon E5-2630 v3 (Table 4).

Model
-----
Per iteration ``i`` with ``E_i`` processed edges (from the algorithm's
activity trace):

* compute time — ``E_i * instructions_per_edge`` over the machine's
  sustained instruction throughput (cores x IPC x frequency, derated by
  the framework's parallel efficiency; GridGraph scales ~8x on 16
  cores);
* memory time — streamed edge bytes plus random vertex-access traffic
  (cache-modelled, using the *original* dataset's working set for
  scaled analogs) over the DRAM bandwidth;
* the iteration takes ``max(compute, memory)`` (overlapped) plus a
  per-iteration framework pass overhead; one fixed setup cost per run
  (GridGraph preprocessing/partition handling, excluded disk I/O
  notwithstanding).

Energy is ``total platform power x simulated time``, the same
TDP-based estimate the paper uses (Intel Product Specifications).

Collaborative filtering runs on GraphChi in the paper; its per-edge
work scales with the feature length and carries a higher framework
overhead, captured by ``cf_work_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.vertex_program import AlgorithmResult
from repro.baselines.base import Platform
from repro.baselines.memory import CacheModel
from repro.graph.graph import Graph
from repro.hw.params import CPUParams
from repro.hw.stats import RunStats

__all__ = ["CPUPlatform"]

#: Streamed bytes per edge record (GridGraph edge grid entry).
EDGE_STREAM_BYTES = 12


@dataclass(frozen=True)
class _CPUModelKnobs:
    """Calibration constants of the CPU model (see module docstring)."""

    instructions_per_edge: float = 35.0
    parallel_efficiency: float = 0.5
    per_iteration_overhead_s: float = 2e-4
    fixed_overhead_s: float = 8e-3
    vertex_pass_bytes: int = 16          # read + write property per vertex
    #: GraphChi SGD streams factor vectors with decent locality; per-
    #: rating work grows sub-linearly in the feature length.
    cf_work_factor: float = 0.6


class CPUPlatform(Platform):
    """GridGraph/GraphChi-style CPU execution model."""

    name = "cpu"

    def __init__(self, params: CPUParams | None = None,
                 knobs: _CPUModelKnobs | None = None) -> None:
        self.params = params or CPUParams()
        self.knobs = knobs or _CPUModelKnobs()
        self.cache = CacheModel(cache_bytes=self.params.l3_bytes,
                                line_bytes=self.params.cache_line_bytes)

    # ------------------------------------------------------------------
    def _charge(self, result: AlgorithmResult, graph: Graph,
                stats: RunStats, **kwargs) -> None:
        p = self.params
        k = self.knobs
        n = graph.num_vertices

        work_factor = 1.0
        if result.algorithm == "cf":
            features = int(kwargs.get("features", 32))
            work_factor = features * k.cf_work_factor

        instr_rate = (p.total_cores * p.ipc * p.frequency_hz
                      * k.parallel_efficiency)
        vertex_traffic = self.cache.vertex_traffic_per_edge(
            n, graph.scale_factor)

        seconds = k.fixed_overhead_s
        stats.latency.add("framework_setup", k.fixed_overhead_s)
        total_edges = graph.num_edges
        for edges in result.trace.active_edges:
            compute_s = (edges * k.instructions_per_edge * work_factor
                         / instr_rate)
            # GridGraph streams the whole edge grid each pass; selective
            # scheduling saves compute, not the sequential scan.
            streamed = max(edges, total_edges)
            mem_bytes = (streamed * EDGE_STREAM_BYTES * work_factor
                         + edges * vertex_traffic * work_factor
                         + n * k.vertex_pass_bytes)
            memory_s = mem_bytes / p.dram_bandwidth_bps
            iter_s = max(compute_s, memory_s) + k.per_iteration_overhead_s
            seconds += iter_s
            stats.latency.add("compute" if compute_s >= memory_s
                              else "memory", max(compute_s, memory_s))
            stats.latency.add("framework_pass", k.per_iteration_overhead_s)

        stats.seconds = seconds
        stats.energy.charge_joules("package",
                                   p.sockets * p.tdp_w_per_socket * seconds)
        stats.energy.charge_joules("dram", p.dram_power_w * seconds)
        stats.extra["miss_rate"] = self.cache.miss_rate(n, graph.scale_factor)
        stats.extra["work_factor"] = work_factor
