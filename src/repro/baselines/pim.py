"""PIM baseline: a Tesseract-like HMC architecture [4].

Model
-----
Tesseract places one in-order core in each of 512 HMC vaults and maps
vertex programs over them; edges whose destination lives in another
vault cross the interconnect as non-blocking ``put`` messages.

Per iteration with ``E_i`` active edges:

* core time — ``E_i * cycles_per_edge`` across all cores (in-order,
  memory-latency-limited IPC derate);
* message time — remote edges x injection/receive overhead across all
  cores (puts interleave with compute but interrupt receivers);
* vault memory time — edge + vertex traffic over the aggregate internal
  bandwidth (the HMC's strength: it rarely binds);
* a per-iteration global barrier.

Energy is ``platform power x time`` — the paper's normalisation, and
consistent with Tesseract's reported ~94 W for logic + DRAM layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.vertex_program import AlgorithmResult
from repro.baselines.base import Platform
from repro.graph.graph import Graph
from repro.hw.params import PIMParams
from repro.hw.stats import RunStats

__all__ = ["PIMPlatform"]


@dataclass(frozen=True)
class _PIMModelKnobs:
    """Calibration constants of the Tesseract model."""

    cycles_per_edge: float = 28.0        # in-order core, DRAM-latency bound
    bytes_per_edge: float = 20.0
    message_bytes: float = 40.0          # put(): target id, arg, metadata
    frontier_imbalance: float = 8.0      # vault skew on active-list algos
    barrier_s: float = 3e-5
    fixed_overhead_s: float = 5e-4
    cf_work_factor: float = 1.0


class PIMPlatform(Platform):
    """Tesseract-style processing-in-memory execution model."""

    name = "pim"

    def __init__(self, params: PIMParams | None = None,
                 knobs: _PIMModelKnobs | None = None) -> None:
        self.params = params or PIMParams()
        self.knobs = knobs or _PIMModelKnobs()

    # ------------------------------------------------------------------
    def _charge(self, result: AlgorithmResult, graph: Graph,
                stats: RunStats, **kwargs) -> None:
        p = self.params
        k = self.knobs

        work_factor = 1.0
        if result.algorithm == "cf":
            features = int(kwargs.get("features", 32))
            work_factor = features * k.cf_work_factor

        core_rate = p.total_cores * p.core_frequency_hz * p.core_ipc
        seconds = k.fixed_overhead_s
        stats.latency.add("setup", k.fixed_overhead_s)

        # Frontier algorithms concentrate work in the vaults owning the
        # active vertices; Tesseract has no work stealing across vaults.
        imbalance = (k.frontier_imbalance
                     if result.trace.frontiers is not None else 1.0)

        for edges in result.trace.active_edges:
            compute_cycles = edges * k.cycles_per_edge * work_factor
            message_cycles = (edges * p.remote_edge_fraction
                              * p.message_overhead_cycles * work_factor)
            core_s = (compute_cycles + message_cycles) / core_rate
            # Remote puts serialise on the inter-cube links.
            link_s = (edges * p.remote_edge_fraction * k.message_bytes
                      * work_factor / p.intercube_bandwidth_bps)
            memory_s = (edges * k.bytes_per_edge * work_factor
                        / p.internal_bandwidth_bps)
            busy_s = max(core_s, link_s, memory_s) * imbalance
            seconds += busy_s + k.barrier_s
            slowest = max((core_s, "cores"), (link_s, "links"),
                          (memory_s, "memory"))[1]
            stats.latency.add(slowest, busy_s)
            stats.latency.add("barrier", k.barrier_s)

        stats.seconds = seconds
        stats.energy.charge_joules("hmc", p.power_w * seconds)
        stats.extra["work_factor"] = work_factor
