"""Cache and DRAM helpers shared by the CPU and PIM models.

The only non-trivial piece is the vertex-access miss-rate estimate:
graph processing reads/writes a random destination vertex per edge, so
the miss rate is driven by how much of the vertex property array fits
in the last-level cache.  Scaled dataset analogs pass their
``scale_factor`` so the *original* dataset's working set decides the
miss rate — this preserves the paper's size-dependent behaviour on
shrunken graphs (DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CacheModel", "cache_miss_rate"]


def cache_miss_rate(working_set_bytes: float, cache_bytes: float,
                    locality: float = 0.35) -> float:
    """Estimated miss rate of random accesses over a working set.

    A fully resident working set misses ~never; beyond residency the
    miss rate approaches ``1 - cache_bytes / working_set - locality
    bonus``.  ``locality`` captures the skew of power-law graphs (hub
    vertices stay cached) — 0.35 matches the L3 hit-rate plateau
    Graphicionado reports for SNAP-class graphs.
    """
    if working_set_bytes < 0 or cache_bytes <= 0:
        raise ConfigError("sizes must be positive")
    if not 0 <= locality < 1:
        raise ConfigError("locality must be in [0, 1)")
    if working_set_bytes <= cache_bytes:
        return 0.0
    resident = cache_bytes / working_set_bytes
    miss = (1.0 - resident) * (1.0 - locality)
    return min(max(miss, 0.0), 1.0)


@dataclass(frozen=True)
class CacheModel:
    """Per-edge memory traffic estimate for a vertex-property loop.

    Attributes
    ----------
    cache_bytes:
        Last-level cache capacity.
    line_bytes:
        Cache line size (a missing vertex access drags a full line).
    property_bytes:
        Bytes per vertex property.
    """

    cache_bytes: int
    line_bytes: int = 64
    property_bytes: int = 8

    def vertex_traffic_per_edge(self, num_vertices: int,
                                scale_factor: float = 1.0) -> float:
        """DRAM bytes per edge caused by random vertex accesses.

        ``num_vertices * scale_factor`` reconstructs the original
        dataset's vertex count when the analog was shrunk.
        """
        if num_vertices <= 0:
            raise ConfigError("num_vertices must be positive")
        if scale_factor <= 0:
            raise ConfigError("scale_factor must be positive")
        working_set = num_vertices * scale_factor * self.property_bytes
        miss = cache_miss_rate(working_set, self.cache_bytes)
        return miss * self.line_bytes

    def miss_rate(self, num_vertices: int,
                  scale_factor: float = 1.0) -> float:
        """Convenience: the miss rate itself."""
        working_set = num_vertices * scale_factor * self.property_bytes
        return cache_miss_rate(working_set, self.cache_bytes)
