"""Platform abstraction shared by the three baseline models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

from repro.algorithms.registry import run_reference
from repro.algorithms.vertex_program import AlgorithmResult
from repro.graph.graph import Graph
from repro.hw.stats import RunStats

__all__ = ["Platform"]


class Platform(ABC):
    """A simulated execution platform.

    Subclasses implement :meth:`_charge`, which receives the finished
    reference result (values + per-iteration trace) and fills in the
    platform's simulated time and energy.
    """

    #: Platform identifier used in RunStats and reports.
    name: str = "abstract"

    def run(self, algorithm: str, graph: Graph,
            **kwargs) -> Tuple[AlgorithmResult, RunStats]:
        """Execute ``algorithm`` on ``graph``; returns values + costs."""
        result = run_reference(algorithm, graph, **kwargs)
        stats = RunStats(platform=self.name, algorithm=algorithm,
                         dataset=graph.name, iterations=result.iterations)
        self._charge(result, graph, stats, **kwargs)
        return result, stats

    @abstractmethod
    def _charge(self, result: AlgorithmResult, graph: Graph,
                stats: RunStats, **kwargs) -> None:
        """Fill ``stats.seconds`` / ``stats.energy`` for this run."""
