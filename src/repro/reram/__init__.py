"""ReRAM device substrate: cells, crossbars and GE peripherals.

This subpackage models the analog hardware of Figure 8 functionally:
fixed-point values are quantised to multi-level-cell conductances,
matrix-vector products happen per bit-slice, and the peripheral chain
(driver -> crossbar -> sample/hold -> ADC -> shift/add -> sALU)
reconstructs digital results.  Timing/energy live in
:mod:`repro.hw.params`; these classes count the events.
"""

from repro.reram.fixed_point import FixedPointFormat, quantize, bit_slices, combine_slices
from repro.reram.cell import ReRAMCell
from repro.reram.crossbar import Crossbar
from repro.reram.driver import WordlineDriver
from repro.reram.sample_hold import SampleHoldArray
from repro.reram.adc import SharedADC
from repro.reram.shift_add import ShiftAddUnit
from repro.reram.salu import SALU, REDUCE_OPS
from repro.reram.ge_assembly import DeviceGraphEngine
from repro.reram.variation import VariationModel

__all__ = [
    "DeviceGraphEngine",
    "VariationModel",
    "FixedPointFormat",
    "quantize",
    "bit_slices",
    "combine_slices",
    "ReRAMCell",
    "Crossbar",
    "WordlineDriver",
    "SampleHoldArray",
    "SharedADC",
    "ShiftAddUnit",
    "SALU",
    "REDUCE_OPS",
]
