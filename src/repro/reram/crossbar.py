"""ReRAM crossbar: in-situ matrix-vector multiplication (Figure 3c).

A ``C x C`` crossbar stores a matrix as cell conductances and computes
``b_j = sum_i a_i * w_ij`` in one read cycle by summing bitline
currents.  This model is *functional*: values are 4-bit slice integers,
arithmetic is exact integer math (with optional Gaussian read noise to
exercise the paper's error-resilience argument), and event counts are
returned so callers can charge time/energy.

Design notes
------------
* The crossbar stores a single bit-slice; a full 16-bit matrix occupies
  ``total_bits / cell_bits`` slice crossbars whose outputs are
  recombined by :class:`~repro.reram.shift_add.ShiftAddUnit`.
* Inputs are applied as multi-cycle 1-bit (or small-step) DAC pulses in
  real hardware; we present the input vector numerically and count one
  GE cycle, matching the paper's 64 ns GE-cycle abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DeviceError
from repro.hw.params import ReRAMParams

__all__ = ["Crossbar", "CrossbarOpCounts"]


@dataclass
class CrossbarOpCounts:
    """Events produced by one crossbar operation."""

    cells_written: int = 0
    row_writes: int = 0
    mvm_ops: int = 0
    cells_activated: int = 0

    def merge(self, other: "CrossbarOpCounts") -> None:
        """Accumulate another operation's counts."""
        self.cells_written += other.cells_written
        self.row_writes += other.row_writes
        self.mvm_ops += other.mvm_ops
        self.cells_activated += other.cells_activated


class Crossbar:
    """A ``rows x cols`` array of multi-level cells storing one bit-slice.

    Parameters
    ----------
    rows, cols:
        Array dimensions (the paper's ``C``; 8 in the evaluation,
        plus callers may allocate an extra bias row as Figure 16 does).
    params:
        Device constants; ``params.cell_bits`` bounds storable levels.
    noise_sigma:
        Standard deviation of additive Gaussian noise applied to each
        analog bitline sum, in units of one cell level.  0 disables
        noise (default).
    seed:
        RNG seed for the noise source.
    """

    def __init__(self, rows: int, cols: int,
                 params: Optional[ReRAMParams] = None,
                 noise_sigma: float = 0.0, seed: int = 0) -> None:
        if rows <= 0 or cols <= 0:
            raise DeviceError("crossbar dimensions must be positive")
        if noise_sigma < 0:
            raise DeviceError("noise_sigma must be non-negative")
        self.rows = int(rows)
        self.cols = int(cols)
        self.params = params or ReRAMParams()
        self.noise_sigma = float(noise_sigma)
        self._rng = np.random.default_rng(seed)
        self._levels = np.zeros((rows, cols), dtype=np.int64)
        self._max_level = (1 << self.params.cell_bits) - 1
        self._stuck_mask: np.ndarray | None = None
        self._stuck_values: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def levels(self) -> np.ndarray:
        """Stored cell levels (read-only view)."""
        view = self._levels.view()
        view.flags.writeable = False
        return view

    @property
    def max_level(self) -> int:
        """Largest programmable level (``2**cell_bits - 1``)."""
        return self._max_level

    # ------------------------------------------------------------------
    def inject_stuck_faults(self, fraction: float,
                            stuck_at: str = "off",
                            seed: int | None = None) -> int:
        """Mark a random fraction of cells as permanently stuck.

        ``stuck_at`` is ``"off"`` (stuck at HRS, level 0 — the common
        ReRAM endurance failure) or ``"on"`` (stuck at LRS, max level).
        Stuck cells ignore all subsequent programming.  Returns the
        number of faulty cells.
        """
        if not 0.0 <= fraction <= 1.0:
            raise DeviceError("fault fraction must be in [0, 1]")
        if stuck_at not in ("off", "on"):
            raise DeviceError("stuck_at must be 'off' or 'on'")
        rng = self._rng if seed is None else np.random.default_rng(seed)
        mask = rng.random((self.rows, self.cols)) < fraction
        value = 0 if stuck_at == "off" else self._max_level
        self._stuck_mask = mask
        self._stuck_values = np.full((self.rows, self.cols), value,
                                     dtype=np.int64)
        self._apply_faults()
        return int(mask.sum())

    @property
    def faulty_cells(self) -> int:
        """Number of stuck cells (0 when no faults injected)."""
        if self._stuck_mask is None:
            return 0
        return int(self._stuck_mask.sum())

    def _apply_faults(self) -> None:
        if self._stuck_mask is not None:
            self._levels = np.where(self._stuck_mask, self._stuck_values,
                                    self._levels)

    def program(self, tile: np.ndarray) -> CrossbarOpCounts:
        """Write a whole tile of levels (row by row, as the driver does).

        ``tile`` must be ``rows x cols`` integers within the cell range.
        Returns the op counts; the caller charges
        ``row_writes * write_latency`` (rows are written one wordline at
        a time, all columns in parallel) and
        ``cells_written * write_energy``.
        """
        tile = np.asarray(tile, dtype=np.int64)
        if tile.shape != (self.rows, self.cols):
            raise DeviceError(
                f"tile shape {tile.shape} != crossbar {self.rows}x{self.cols}"
            )
        if tile.size and (tile.min() < 0 or tile.max() > self._max_level):
            raise DeviceError(
                f"tile levels outside [0, {self._max_level}]"
            )
        self._levels = tile.copy()
        self._apply_faults()
        return CrossbarOpCounts(
            cells_written=int(tile.size),
            row_writes=self.rows,
        )

    def program_sparse(self, rows: np.ndarray, cols: np.ndarray,
                       levels: np.ndarray) -> CrossbarOpCounts:
        """Clear the array and write only the listed cells.

        Models the controller converting a COO subgraph slice directly:
        untouched cells stay at level 0, and only touched *rows* incur a
        write pulse.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        levels = np.asarray(levels, dtype=np.int64)
        if not (rows.shape == cols.shape == levels.shape):
            raise DeviceError("rows, cols, levels must have equal length")
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.rows:
                raise DeviceError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.cols:
                raise DeviceError("col index out of range")
            if levels.min() < 0 or levels.max() > self._max_level:
                raise DeviceError(f"levels outside [0, {self._max_level}]")
        self._levels = np.zeros((self.rows, self.cols), dtype=np.int64)
        self._levels[rows, cols] = levels
        self._apply_faults()
        touched_rows = int(np.unique(rows).size)
        return CrossbarOpCounts(
            cells_written=int(rows.size),
            row_writes=touched_rows,
        )

    # ------------------------------------------------------------------
    def mvm(self, inputs: np.ndarray) -> tuple[np.ndarray, CrossbarOpCounts]:
        """Analog MVM: ``out[j] = sum_i inputs[i] * levels[i, j]``.

        ``inputs`` is a length-``rows`` non-negative integer (or small
        fixed-point) vector presented by the driver.  Returns the raw
        bitline sums (before shift-add) and the op counts.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.rows,):
            raise DeviceError(
                f"input length {inputs.shape} != {self.rows} wordlines"
            )
        if inputs.size and inputs.min() < 0:
            raise DeviceError("driver inputs must be non-negative")
        sums = inputs @ self._levels
        if self.noise_sigma > 0:
            sums = sums + self._rng.normal(0.0, self.noise_sigma,
                                           size=sums.shape)
            sums = np.maximum(sums, 0.0)
        active = int(np.count_nonzero(inputs)) * self.cols
        counts = CrossbarOpCounts(mvm_ops=1, cells_activated=active)
        return sums, counts

    def select_row(self, row: int) -> tuple[np.ndarray, CrossbarOpCounts]:
        """Read one stored row via a one-hot MVM (the SSSP row select:
        "SpMV is only used to select a row in CB by multiplying with an
        one-hot vector")."""
        if not 0 <= row < self.rows:
            raise DeviceError(f"row {row} out of range")
        one_hot = np.zeros(self.rows)
        one_hot[row] = 1.0
        return self.mvm(one_hot)

    def __repr__(self) -> str:
        return (f"Crossbar({self.rows}x{self.cols}, cell_bits="
                f"{self.params.cell_bits}, noise={self.noise_sigma})")
