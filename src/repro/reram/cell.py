"""Single ReRAM cell model (Section 2.2, Figure 3a/b).

A metal-insulator-metal cell switches between a high-resistance state
(HRS, logical 0) and a low-resistance state (LRS, logical 1); multi-level
cells interpolate conductance between the two extremes to store
``cell_bits`` bits.  This class keeps the mapping between stored level,
conductance and read current explicit so the crossbar's analog
dot-product is physically interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.hw.params import ReRAMParams

__all__ = ["ReRAMCell"]


@dataclass
class ReRAMCell:
    """One multi-level ReRAM cell.

    The stored *level* is an integer in ``[0, 2**cell_bits - 1]``;
    level 0 maps to HRS conductance (~0) and the maximum level to LRS
    conductance, linearly in between — the standard linear-conductance
    MLC idealisation used by ISAAC/PRIME-class models.
    """

    params: ReRAMParams = field(default_factory=ReRAMParams)
    level: int = 0

    def __post_init__(self) -> None:
        self._check_level(self.level)

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Distinct programmable levels (``2**cell_bits``)."""
        return 1 << self.params.cell_bits

    @property
    def g_min(self) -> float:
        """HRS conductance in siemens."""
        return 1.0 / self.params.hrs_ohm

    @property
    def g_max(self) -> float:
        """LRS conductance in siemens."""
        return 1.0 / self.params.lrs_ohm

    @property
    def conductance(self) -> float:
        """Conductance of the current level (linear MLC map)."""
        span = self.g_max - self.g_min
        return self.g_min + span * self.level / (self.num_levels - 1)

    # ------------------------------------------------------------------
    def program(self, level: int) -> float:
        """Set the stored level; returns the write energy in joules.

        Programming cost is charged per write regardless of the level
        delta — the paper argues the High->Low full swing is the worst
        case and uses one conservative constant.
        """
        self._check_level(level)
        self.level = int(level)
        return self.params.write_energy_j

    def read_current(self, voltage: float | None = None) -> float:
        """Bitline current contribution ``I = V * G`` in amperes."""
        v = self.params.read_voltage_v if voltage is None else voltage
        if v < 0:
            raise DeviceError("read voltage must be non-negative")
        return v * self.conductance

    def _check_level(self, level: int) -> None:
        if not 0 <= int(level) < self.num_levels:
            raise DeviceError(
                f"level {level} outside [0, {self.num_levels})"
            )

    def __repr__(self) -> str:
        return f"ReRAMCell(level={self.level}/{self.num_levels - 1})"
