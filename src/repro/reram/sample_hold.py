"""Sample-and-hold array (S/H in Figure 8).

Holds analog bitline values until the shared ADC converts them.  The
functional model is a latch with capacity checking; its purpose in the
simulator is to enforce the GE pipeline contract (every bitline sampled
exactly once per GE cycle) and to count events.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError

__all__ = ["SampleHoldArray"]


class SampleHoldArray:
    """A bank of ``capacity`` sample-and-hold circuits."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise DeviceError("S/H capacity must be positive")
        self.capacity = int(capacity)
        self._held: np.ndarray | None = None
        self.samples_taken = 0

    @property
    def holding(self) -> bool:
        """Whether values are currently latched."""
        return self._held is not None

    def sample(self, analog_values: np.ndarray) -> None:
        """Latch a vector of analog values.

        Raises if a previous sample was never drained — that would be a
        pipeline hazard in the real GE.
        """
        values = np.asarray(analog_values, dtype=np.float64)
        if values.ndim != 1 or values.shape[0] > self.capacity:
            raise DeviceError(
                f"cannot hold {values.shape} values in {self.capacity} circuits"
            )
        if self._held is not None:
            raise DeviceError("sample-and-hold overwritten before drain")
        self._held = values.copy()
        self.samples_taken += int(values.shape[0])

    def drain(self) -> np.ndarray:
        """Release the held values to the ADC."""
        if self._held is None:
            raise DeviceError("nothing held to drain")
        values = self._held
        self._held = None
        return values
