"""Shared analog-to-digital converter (Section 3.2).

ADCs are expensive, so one ADC is time-multiplexed across the bitlines
of all crossbars in a GE: "If the GE cycle is 64ns, we can have one ADC
working at 1.0GSps to convert all data from eight 8-bitline crossbars
within one GE."  The model quantises analog sums to the ADC resolution
and counts conversions for time/energy charging.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DeviceError
from repro.hw.params import ADCParams

__all__ = ["SharedADC"]


class SharedADC:
    """One ADC shared by many bitlines.

    Parameters
    ----------
    params:
        Rate / resolution / power constants.
    full_scale:
        Largest analog value the ADC can represent; inputs are clipped
        (hardware saturation).  For a bit-slice crossbar the natural
        full scale is ``rows * max_level * max_input_code``.
    """

    def __init__(self, params: ADCParams | None = None,
                 full_scale: float = float((1 << 8) - 1)) -> None:
        if full_scale <= 0:
            raise DeviceError("full_scale must be positive")
        self.params = params or ADCParams()
        self.full_scale = float(full_scale)
        self.conversions = 0

    @property
    def levels(self) -> int:
        """Distinct output codes."""
        return 1 << self.params.resolution_bits

    def convert(self, analog_values: np.ndarray) -> np.ndarray:
        """Quantise a vector of analog sums to ADC codes (as values).

        Returns values snapped to the ADC grid over ``[0, full_scale]``.
        """
        values = np.asarray(analog_values, dtype=np.float64)
        if values.ndim != 1:
            raise DeviceError("ADC input must be a vector")
        clipped = np.clip(values, 0.0, self.full_scale)
        step = self.full_scale / (self.levels - 1)
        codes = np.rint(clipped / step)
        self.conversions += int(values.shape[0])
        return codes * step

    def conversion_time_s(self, num_values: int) -> float:
        """Seconds to serially convert ``num_values`` samples."""
        if num_values < 0:
            raise DeviceError("num_values must be non-negative")
        return num_values / self.params.sample_rate_sps

    def conversion_energy_j(self, num_values: int) -> float:
        """Joules to convert ``num_values`` samples."""
        if num_values < 0:
            raise DeviceError("num_values must be non-negative")
        return num_values * self.params.energy_per_sample_j

    def fits_in_cycle(self, num_values: int, cycle_s: float) -> bool:
        """Whether a conversion batch fits in one GE cycle — the paper's
        8-crossbar x 8-bitline / 64 ns sizing check."""
        return self.conversion_time_s(num_values) <= cycle_s + 1e-18

    @staticmethod
    def required_rate_sps(num_values: int, cycle_s: float) -> float:
        """Minimum sample rate to drain ``num_values`` per cycle."""
        if cycle_s <= 0:
            raise DeviceError("cycle_s must be positive")
        return math.ceil(num_values / cycle_s)
