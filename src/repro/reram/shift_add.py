"""Shift-and-add unit (S/A in Figure 8).

Recombines per-slice crossbar outputs into full-width results:
``D3 << 12 + D2 << 8 + D1 << 4 + D0`` for 16-bit data on 4-bit cells
(Section 3.2, "Data Format").
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import DeviceError

__all__ = ["ShiftAddUnit"]


class ShiftAddUnit:
    """Combines bit-slice partial sums.

    Parameters
    ----------
    cell_bits:
        Bits per slice (= bits per ReRAM cell).
    num_slices:
        Number of slices per full-width value.
    """

    def __init__(self, cell_bits: int, num_slices: int) -> None:
        if cell_bits <= 0 or num_slices <= 0:
            raise DeviceError("cell_bits and num_slices must be positive")
        self.cell_bits = int(cell_bits)
        self.num_slices = int(num_slices)
        self.combines = 0

    @property
    def total_bits(self) -> int:
        """Width of the recombined value."""
        return self.cell_bits * self.num_slices

    def combine(self, slice_outputs: Sequence[np.ndarray]) -> np.ndarray:
        """Weight slice ``i`` by ``2**(i * cell_bits)`` and sum.

        ``slice_outputs`` is least-significant slice first, matching
        :func:`repro.reram.fixed_point.bit_slices`.
        """
        if len(slice_outputs) != self.num_slices:
            raise DeviceError(
                f"expected {self.num_slices} slices, got {len(slice_outputs)}"
            )
        arrays: List[np.ndarray] = [np.asarray(s, dtype=np.float64)
                                    for s in slice_outputs]
        shape = arrays[0].shape
        for arr in arrays:
            if arr.shape != shape:
                raise DeviceError("slice outputs must share one shape")
        total = np.zeros(shape, dtype=np.float64)
        for i, arr in enumerate(arrays):
            total += arr * float(1 << (i * self.cell_bits))
        self.combines += int(np.prod(shape)) if shape else 1
        return total
