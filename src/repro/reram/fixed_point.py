"""16-bit fixed-point helpers and bit-slicing (Section 3.2, "Data Format").

A 16-bit value ``M`` is split into four 4-bit segments
``M = [M3, M2, M1, M0]``; each segment is programmed into a separate
4-bit ReRAM crossbar slice and the shift-add unit recombines partial
results as ``D3 << 12 | D2 << 8 | D1 << 4 | D0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import DeviceError

__all__ = ["FixedPointFormat", "quantize", "bit_slices", "combine_slices"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Unsigned fixed-point format ``total_bits`` wide with
    ``frac_bits`` fractional bits.

    The paper computes on 16-bit fixed point; probability-valued
    algorithms (PageRank) use a large fractional part, integer
    algorithms (SSSP distances) use none.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.total_bits <= 32:
            raise DeviceError("total_bits must be in [1, 32]")
        if not 0 <= self.frac_bits < self.total_bits:
            raise DeviceError("frac_bits must be in [0, total_bits)")

    @property
    def scale(self) -> float:
        """Real-value step per integer code."""
        return 1.0 / (1 << self.frac_bits)

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        return (1 << self.total_bits) - 1

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.scale

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Real values -> integer codes, clamping to the format range.

        Clamping (not raising) reflects hardware saturation; the paper's
        algorithms tolerate this imprecision (Section 1).
        """
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint(values / self.scale)
        return np.clip(codes, 0, self.max_code).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round-trip real values through the fixed-point format."""
    return fmt.decode(fmt.encode(values))


def bit_slices(codes: np.ndarray, cell_bits: int, total_bits: int) -> List[np.ndarray]:
    """Split integer codes into ``total_bits / cell_bits`` cell-sized
    slices, least-significant first.

    Each slice holds ``cell_bits`` bits, i.e. one programmable ReRAM
    cell level.
    """
    if cell_bits <= 0 or total_bits <= 0:
        raise DeviceError("cell_bits and total_bits must be positive")
    if total_bits % cell_bits != 0:
        raise DeviceError(
            f"total_bits {total_bits} must be a multiple of cell_bits {cell_bits}"
        )
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= (1 << total_bits)):
        raise DeviceError("code out of range for the slicing width")
    mask = (1 << cell_bits) - 1
    return [
        (codes >> (i * cell_bits)) & mask
        for i in range(total_bits // cell_bits)
    ]


def combine_slices(slices: List[np.ndarray], cell_bits: int) -> np.ndarray:
    """Shift-and-add recombination, least-significant slice first.

    Inputs may be *sums* of slice values (partial dot products), so
    individual entries can exceed ``2**cell_bits - 1``; the weighted sum
    is still exact.
    """
    if not slices:
        raise DeviceError("need at least one slice")
    total = np.zeros_like(np.asarray(slices[0], dtype=np.int64))
    for i, part in enumerate(slices):
        total = total + (np.asarray(part, dtype=np.int64) << (i * cell_bits))
    return total
