"""Device variation models beyond additive read noise.

Real ReRAM arrays suffer (at least) three non-idealities the paper's
error-resilience argument must survive:

* **programming variation** — the achieved conductance of a multi-level
  cell deviates log-normally from its target;
* **stuck-at faults** — endurance failures pin cells at HRS/LRS
  (modelled on :class:`~repro.reram.crossbar.Crossbar` directly);
* **IR drop** — wire resistance attenuates currents far from the
  drivers, a deterministic position-dependent gain error.

:class:`VariationModel` applies the first and third to a level matrix,
producing the *effective* levels an analog MVM would see; tests and the
noise ablation use it to quantify how much non-ideality the iterative
algorithms absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError

__all__ = ["VariationModel"]


@dataclass(frozen=True)
class VariationModel:
    """Conductance variation + IR-drop for an ``S x S`` crossbar.

    Attributes
    ----------
    programming_sigma:
        Log-normal sigma of the achieved/target conductance ratio.
        Measured MLC ReRAM is ~0.03-0.15; 0 disables.
    ir_drop_alpha:
        Fractional current loss across the full array diagonal.  Cell
        ``(i, j)`` keeps ``1 - alpha * (i + j) / (2 * (S - 1))`` of its
        current — the standard first-order wire-resistance model.
    seed:
        Seed (int or :class:`numpy.random.SeedSequence`) for the
        programming variation draw.  Callers that also draw read noise
        should hand this model a spawned child sequence so the two
        streams stay statistically independent.
    """

    programming_sigma: float = 0.0
    ir_drop_alpha: float = 0.0
    seed: "int | np.random.SeedSequence" = 0

    def __post_init__(self) -> None:
        if self.programming_sigma < 0:
            raise DeviceError("programming_sigma must be non-negative")
        if not 0.0 <= self.ir_drop_alpha < 1.0:
            raise DeviceError("ir_drop_alpha must be in [0, 1)")

    # ------------------------------------------------------------------
    def effective_levels(self, levels: np.ndarray) -> np.ndarray:
        """Levels as the analog readout would weight them.

        The result is real-valued (variation breaks the integer grid);
        zero cells stay exactly zero (no conductance to vary).
        """
        levels = np.asarray(levels, dtype=np.float64)
        if levels.ndim != 2:
            raise DeviceError("levels must be a matrix")
        return levels * self.effective_gain(levels.shape)

    def effective_levels_batch(self, levels: np.ndarray) -> np.ndarray:
        """Batched :meth:`effective_levels` for ``(B, S, W)`` stacks.

        Every tile in the batch sees the *same* per-cell gain field —
        the model describes one physical array that each streamed tile
        is programmed into, which is also what the per-tile path does
        (each :meth:`effective_levels` call re-derives the field from
        ``seed``), so batched and per-tile execution stay bit-equal.
        """
        levels = np.asarray(levels, dtype=np.float64)
        if levels.ndim != 3:
            raise DeviceError("batched levels must be (batch, rows, cols)")
        return levels * self.effective_gain(levels.shape[1:])[None, :, :]

    def effective_gain(self, shape: tuple[int, int]) -> np.ndarray:
        """Combined per-cell gain (programming variation x IR drop)."""
        gain = np.ones(shape)
        if self.programming_sigma > 0:
            rng = np.random.default_rng(self.seed)
            gain = gain * rng.lognormal(mean=0.0,
                                        sigma=self.programming_sigma,
                                        size=shape)
        if self.ir_drop_alpha > 0:
            gain = gain * self.gain_map(shape)
        return gain

    def gain_map(self, shape: tuple[int, int]) -> np.ndarray:
        """Position-dependent IR-drop gain in ``(0, 1]`` per cell."""
        rows, cols = shape
        if rows <= 0 or cols <= 0:
            raise DeviceError("shape must be positive")
        if rows == 1 and cols == 1:
            return np.ones((1, 1))
        i = np.arange(rows)[:, None]
        j = np.arange(cols)[None, :]
        denom = max(rows - 1, 1) + max(cols - 1, 1)
        return 1.0 - self.ir_drop_alpha * (i + j) / denom

    def mvm_error_bound(self, shape: tuple[int, int],
                        max_level: int) -> float:
        """Worst-case absolute bitline-sum error for unit inputs.

        A cheap a-priori bound used in tests: IR drop removes at most
        ``alpha`` of every product, and 3-sigma log-normal variation
        scales each by at most ``exp(3 * sigma) - 1``.
        """
        rows, _ = shape
        per_cell = max_level * (
            self.ir_drop_alpha
            + (np.exp(3.0 * self.programming_sigma) - 1.0)
        )
        return float(rows * per_cell)
