"""Device variation models beyond additive read noise.

Real ReRAM arrays suffer (at least) three non-idealities the paper's
error-resilience argument must survive:

* **programming variation** — the achieved conductance of a multi-level
  cell deviates log-normally from its target;
* **stuck-at faults** — endurance failures pin cells at HRS/LRS
  (modelled on :class:`~repro.reram.crossbar.Crossbar` directly);
* **IR drop** — wire resistance attenuates currents far from the
  drivers, a deterministic position-dependent gain error.

:class:`VariationModel` applies the first and third to a level matrix,
producing the *effective* levels an analog MVM would see; tests and the
noise ablation use it to quantify how much non-ideality the iterative
algorithms absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError

__all__ = ["VariationModel"]


@dataclass(frozen=True)
class VariationModel:
    """Conductance variation + IR-drop for an ``S x S`` crossbar.

    Attributes
    ----------
    programming_sigma:
        Log-normal sigma of the achieved/target conductance ratio.
        Measured MLC ReRAM is ~0.03-0.15; 0 disables.
    ir_drop_alpha:
        Fractional current loss across the full array diagonal.  Cell
        ``(i, j)`` keeps ``1 - alpha * (i + j) / (2 * (S - 1))`` of its
        current — the standard first-order wire-resistance model.
    seed:
        RNG seed for the programming variation draw.
    """

    programming_sigma: float = 0.0
    ir_drop_alpha: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.programming_sigma < 0:
            raise DeviceError("programming_sigma must be non-negative")
        if not 0.0 <= self.ir_drop_alpha < 1.0:
            raise DeviceError("ir_drop_alpha must be in [0, 1)")

    # ------------------------------------------------------------------
    def effective_levels(self, levels: np.ndarray) -> np.ndarray:
        """Levels as the analog readout would weight them.

        The result is real-valued (variation breaks the integer grid);
        zero cells stay exactly zero (no conductance to vary).
        """
        levels = np.asarray(levels, dtype=np.float64)
        if levels.ndim != 2:
            raise DeviceError("levels must be a matrix")
        out = levels.copy()
        if self.programming_sigma > 0:
            rng = np.random.default_rng(self.seed)
            factors = rng.lognormal(mean=0.0,
                                    sigma=self.programming_sigma,
                                    size=levels.shape)
            out = out * factors
        if self.ir_drop_alpha > 0:
            out = out * self.gain_map(levels.shape)
        return out

    def gain_map(self, shape: tuple[int, int]) -> np.ndarray:
        """Position-dependent IR-drop gain in ``(0, 1]`` per cell."""
        rows, cols = shape
        if rows <= 0 or cols <= 0:
            raise DeviceError("shape must be positive")
        if rows == 1 and cols == 1:
            return np.ones((1, 1))
        i = np.arange(rows)[:, None]
        j = np.arange(cols)[None, :]
        denom = max(rows - 1, 1) + max(cols - 1, 1)
        return 1.0 - self.ir_drop_alpha * (i + j) / denom

    def mvm_error_bound(self, shape: tuple[int, int],
                        max_level: int) -> float:
        """Worst-case absolute bitline-sum error for unit inputs.

        A cheap a-priori bound used in tests: IR drop removes at most
        ``alpha`` of every product, and 3-sigma log-normal variation
        scales each by at most ``exp(3 * sigma) - 1``.
        """
        rows, _ = shape
        per_cell = max_level * (
            self.ir_drop_alpha
            + (np.exp(3.0 * self.programming_sigma) - 1.0)
        )
        return float(rows * per_cell)
