"""A literal Figure 8 graph engine, assembled from device objects.

:class:`DeviceGraphEngine` wires ``N`` bit-sliced
:class:`~repro.reram.crossbar.Crossbar` arrays to a
:class:`~repro.reram.driver.WordlineDriver`, per-crossbar
:class:`~repro.reram.sample_hold.SampleHoldArray` banks, shared
:class:`~repro.reram.adc.SharedADC` converters, a
:class:`~repro.reram.shift_add.ShiftAddUnit` and a
:class:`~repro.reram.salu.SALU` — and executes one subgraph tile the
slow, faithful way.

The production simulator uses the vectorised
:class:`~repro.core.engine.GraphEngine` shortcut; tests assert this
assembly produces identical numbers, which is what licenses the
shortcut.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import DeviceError
from repro.hw.params import ADCParams, ReRAMParams
from repro.reram.adc import SharedADC
from repro.reram.crossbar import Crossbar, CrossbarOpCounts
from repro.reram.driver import WordlineDriver
from repro.reram.fixed_point import FixedPointFormat, bit_slices
from repro.reram.salu import SALU
from repro.reram.sample_hold import SampleHoldArray
from repro.reram.shift_add import ShiftAddUnit

__all__ = ["DeviceGraphEngine"]


class DeviceGraphEngine:
    """One graph engine built entirely from device-level components.

    Parameters
    ----------
    crossbar_size:
        ``S`` — rows/columns of each crossbar.
    logical_crossbars:
        Full-precision ``S x S`` tiles this GE holds; each consumes
        ``slices`` physical crossbars.
    fmt:
        Fixed-point format of coefficients and inputs.
    reram / adc:
        Device constants.
    """

    def __init__(self, crossbar_size: int = 8,
                 logical_crossbars: int = 8,
                 fmt: FixedPointFormat | None = None,
                 reram: ReRAMParams | None = None,
                 adc: ADCParams | None = None) -> None:
        if crossbar_size <= 0 or logical_crossbars <= 0:
            raise DeviceError("geometry must be positive")
        self.s = int(crossbar_size)
        self.logical = int(logical_crossbars)
        self.fmt = fmt or FixedPointFormat(16, 8)
        self.reram = reram or ReRAMParams()
        self.slices = self.fmt.total_bits // self.reram.cell_bits
        if self.fmt.total_bits % self.reram.cell_bits:
            raise DeviceError("data width must be a multiple of cell bits")

        self.driver = WordlineDriver(self.s, self.fmt)
        # slice-major physical layout: crossbars[logical][slice]
        self.crossbars: List[List[Crossbar]] = [
            [Crossbar(self.s, self.s, params=self.reram)
             for _ in range(self.slices)]
            for _ in range(self.logical)
        ]
        self.sample_hold = [
            SampleHoldArray(self.s * self.slices)
            for _ in range(self.logical)
        ]
        full_scale = float(self.s) * ((1 << self.reram.cell_bits) - 1) \
            * self.fmt.max_code
        self.adc = SharedADC(adc or ADCParams(), full_scale=full_scale)
        self.shift_add = ShiftAddUnit(self.reram.cell_bits, self.slices)
        self.salu = SALU("add")

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Destination columns this GE covers (``S * logical``)."""
        return self.s * self.logical

    def program_tile(self, dense_tile: np.ndarray) -> CrossbarOpCounts:
        """Load an ``S x width`` coefficient tile into the crossbars.

        Coefficients are quantised to the GE's format and split into
        per-cell bit slices, one physical crossbar per slice.
        """
        tile = np.asarray(dense_tile, dtype=np.float64)
        if tile.shape != (self.s, self.width):
            raise DeviceError(
                f"tile shape {tile.shape} != ({self.s}, {self.width})"
            )
        codes = self.fmt.encode(tile)
        totals = CrossbarOpCounts()
        for logical_idx in range(self.logical):
            chunk = codes[:, logical_idx * self.s:(logical_idx + 1) * self.s]
            payloads = bit_slices(chunk.ravel(), self.reram.cell_bits,
                                  self.fmt.total_bits)
            for slice_idx, payload in enumerate(payloads):
                xb = self.crossbars[logical_idx][slice_idx]
                counts = xb.program(payload.reshape(self.s, self.s))
                totals.merge(counts)
        return totals

    def present(self, inputs: np.ndarray,
                exact: bool = True) -> Tuple[np.ndarray, CrossbarOpCounts]:
        """One MAC presentation: drive ``inputs`` and read all bitlines.

        With ``exact`` the ADC stage is bypassed (full-resolution
        readout, matching the production engine's assumption that the
        bit-sliced conversion chain preserves precision); without it
        every bitline sum is quantised by the shared ADC.
        """
        codes, _ = self.driver.present(np.asarray(inputs, dtype=np.float64))
        driven = codes.astype(np.float64)
        outputs = np.zeros(self.width)
        totals = CrossbarOpCounts()
        for logical_idx in range(self.logical):
            slice_sums = []
            for slice_idx in range(self.slices):
                xb = self.crossbars[logical_idx][slice_idx]
                sums, counts = xb.mvm(driven)
                totals.merge(counts)
                slice_sums.append(sums)
            # Latch all slice bitlines, then convert.
            bank = self.sample_hold[logical_idx]
            bank.sample(np.concatenate(slice_sums))
            held = bank.drain()
            if not exact:
                held = self.adc.convert(held)
            parts = np.split(held, self.slices)
            combined = self.shift_add.combine(parts)
            span = slice(logical_idx * self.s, (logical_idx + 1) * self.s)
            outputs[span] = combined * self.fmt.scale * self.fmt.scale
        return outputs, totals

    def mac_subgraph(self, dense_tile: np.ndarray, inputs: np.ndarray,
                     accumulator: np.ndarray) -> np.ndarray:
        """Program + present + sALU-add into ``accumulator`` — one
        streaming-apply step of the parallel-MAC pattern."""
        self.program_tile(dense_tile)
        outputs, _ = self.present(inputs)
        self.salu.configure("add")
        return self.salu.reduce(np.asarray(accumulator, dtype=np.float64),
                                outputs)

    def __repr__(self) -> str:
        return (f"DeviceGraphEngine(S={self.s}, logical={self.logical}, "
                f"slices={self.slices})")
