"""Simple ALU (sALU in Figure 8, configured per Figure 15).

The sALU performs the reduce operations a crossbar cannot: elementwise
``add`` for PageRank/SpMV accumulation, ``min`` for BFS/SSSP
relaxation, plus ``max`` and arbitrary registered binary ops.  It is
the only digital compute in the GE datapath.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigError

__all__ = ["SALU", "REDUCE_OPS"]

#: Built-in reduce operations, keyed by the names Table 2 uses.
REDUCE_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


class SALU:
    """An elementwise binary reducer with a configurable operation.

    >>> salu = SALU("min")
    >>> salu.reduce(np.array([3., 9., 4., 2.]), np.array([5., 6., 4., 7.]))
    array([3., 6., 4., 2.])
    """

    def __init__(self, op: str = "add") -> None:
        self.configure(op)
        self.ops_performed = 0

    def configure(self, op: str) -> None:
        """Select the reduce operation (``add``, ``min``, ``max`` or any
        name previously added with :meth:`register`)."""
        if op not in REDUCE_OPS:
            raise ConfigError(
                f"unknown sALU op {op!r}; known: {sorted(REDUCE_OPS)}"
            )
        self.op_name = op
        self._fn = REDUCE_OPS[op]

    @staticmethod
    def register(name: str,
                 fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
        """Add a custom reduce operation usable by any sALU."""
        if not name or not callable(fn):
            raise ConfigError("need a non-empty name and a callable")
        REDUCE_OPS[name] = fn

    def reduce(self, accumulator: np.ndarray,
               incoming: np.ndarray) -> np.ndarray:
        """``op(accumulator, incoming)`` elementwise.

        Matches Figure 15: the register's old contents combine with the
        new crossbar outputs, producing the register's new contents.
        """
        acc = np.asarray(accumulator, dtype=np.float64)
        inc = np.asarray(incoming, dtype=np.float64)
        if acc.shape != inc.shape:
            raise ConfigError(
                f"operand shapes differ: {acc.shape} vs {inc.shape}"
            )
        self.ops_performed += int(acc.size)
        return self._fn(acc, inc)
