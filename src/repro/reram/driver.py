"""Wordline driver (DRV in Figure 8).

The driver has two jobs in the paper: loading edge data into crossbars
for processing, and presenting input vectors for matrix-vector
multiplication.  Functionally it validates and quantises the input
vector; its event counts let the node charge register reads and drive
energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.reram.fixed_point import FixedPointFormat

__all__ = ["WordlineDriver", "DriveCounts"]


@dataclass
class DriveCounts:
    """Events from one drive operation."""

    wordlines_driven: int = 0
    input_bits: int = 0


class WordlineDriver:
    """Quantises and presents input vectors to a crossbar.

    Parameters
    ----------
    lanes:
        Number of wordlines this driver feeds (= crossbar rows).
    fmt:
        Fixed-point format of presented values.
    """

    def __init__(self, lanes: int, fmt: FixedPointFormat | None = None) -> None:
        if lanes <= 0:
            raise DeviceError("driver lanes must be positive")
        self.lanes = int(lanes)
        self.fmt = fmt or FixedPointFormat()

    def present(self, values: np.ndarray) -> tuple[np.ndarray, DriveCounts]:
        """Quantise ``values`` to driver codes.

        Returns ``(codes, counts)`` where ``codes`` is the integer
        vector actually applied to the wordlines.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.lanes,):
            raise DeviceError(
                f"input length {values.shape} != {self.lanes} lanes"
            )
        if values.size and values.min() < 0:
            raise DeviceError("driver values must be non-negative")
        codes = self.fmt.encode(values)
        driven = int(np.count_nonzero(codes))
        counts = DriveCounts(
            wordlines_driven=driven,
            input_bits=driven * self.fmt.total_bits,
        )
        return codes, counts

    def one_hot(self, row: int) -> tuple[np.ndarray, DriveCounts]:
        """A unit pulse on one wordline (row select)."""
        if not 0 <= row < self.lanes:
            raise DeviceError(f"row {row} out of range for {self.lanes} lanes")
        codes = np.zeros(self.lanes, dtype=np.int64)
        codes[row] = 1
        return codes, DriveCounts(wordlines_driven=1, input_bits=1)
