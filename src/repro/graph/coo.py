"""Coordinate-list (COO) sparse matrix, the on-disk format GraphR assumes.

The paper (Section 2.4, Figure 4d) stores graphs as a coordinate list of
``(row, col, value)`` tuples; GraphR's controller converts subgraph-sized
slices of this list into dense crossbar tiles.  :class:`COOMatrix` is the
library's canonical edge container: a struct-of-arrays built on numpy
with explicit validation, deduplication and sorting utilities.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix stored as parallel ``(rows, cols, values)`` arrays.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)`` of the logical dense matrix.
    rows, cols:
        Integer arrays of equal length holding the coordinates of each
        non-zero.  Values outside ``shape`` raise
        :class:`~repro.errors.GraphFormatError`.
    values:
        Optional float array of the same length; defaults to all ones
        (unweighted graph).

    Notes
    -----
    The container is append-free by design: graph processing in this
    library treats edge lists as immutable inputs, matching the paper's
    preprocessing-once workflow.  Transformations (sorting, slicing,
    transposing) return new instances.
    """

    __slots__ = ("_shape", "_rows", "_cols", "_values")

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: Sequence[int],
        cols: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> None:
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise GraphFormatError(f"shape must be non-negative, got {shape!r}")
        self._shape = (n_rows, n_cols)

        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        if rows_arr.ndim != 1 or cols_arr.ndim != 1:
            raise GraphFormatError("rows and cols must be one-dimensional")
        if rows_arr.shape[0] != cols_arr.shape[0]:
            raise GraphFormatError(
                f"rows and cols length mismatch: {rows_arr.shape[0]} != {cols_arr.shape[0]}"
            )
        if values is None:
            values_arr = np.ones(rows_arr.shape[0], dtype=np.float64)
        else:
            values_arr = np.asarray(values, dtype=np.float64)
            if values_arr.ndim != 1 or values_arr.shape[0] != rows_arr.shape[0]:
                raise GraphFormatError(
                    "values must be one-dimensional and match rows/cols length"
                )

        if rows_arr.size:
            if rows_arr.min(initial=0) < 0 or cols_arr.min(initial=0) < 0:
                raise GraphFormatError("negative coordinates are not allowed")
            if rows_arr.max(initial=-1) >= n_rows:
                raise GraphFormatError(
                    f"row index {int(rows_arr.max())} out of range for {n_rows} rows"
                )
            if cols_arr.max(initial=-1) >= n_cols:
                raise GraphFormatError(
                    f"col index {int(cols_arr.max())} out of range for {n_cols} cols"
                )

        self._rows = rows_arr
        self._cols = cols_arr
        self._values = values_arr

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """The logical dense shape ``(n_rows, n_cols)``."""
        return self._shape

    @property
    def rows(self) -> np.ndarray:
        """Row coordinate of each non-zero (read-only view)."""
        view = self._rows.view()
        view.flags.writeable = False
        return view

    @property
    def cols(self) -> np.ndarray:
        """Column coordinate of each non-zero (read-only view)."""
        view = self._cols.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Value of each non-zero (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros (duplicates counted separately)."""
        return int(self._rows.shape[0])

    @property
    def density(self) -> float:
        """``nnz / (n_rows * n_cols)`` — the paper's Figure 21 x-axis."""
        cells = self._shape[0] * self._shape[1]
        if cells == 0:
            return 0.0
        return self.nnz / cells

    def __len__(self) -> int:
        return self.nnz

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        for r, c, v in zip(self._rows, self._cols, self._values):
            yield int(r), int(c), float(v)

    def __repr__(self) -> str:
        return (
            f"COOMatrix(shape={self._shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        return (
            self._shape == other._shape
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("COOMatrix is mutable-array-backed and unhashable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]] | Iterable[Tuple[int, int, float]],
        shape: Optional[Tuple[int, int]] = None,
    ) -> "COOMatrix":
        """Build from an iterable of ``(src, dst)`` or ``(src, dst, w)``.

        When ``shape`` is omitted it is inferred as the smallest square
        matrix containing every coordinate.
        """
        rows: list[int] = []
        cols: list[int] = []
        values: list[float] = []
        for edge in edges:
            if len(edge) == 2:
                r, c = edge  # type: ignore[misc]
                w = 1.0
            elif len(edge) == 3:
                r, c, w = edge  # type: ignore[misc]
            else:
                raise GraphFormatError(
                    f"edge tuples must have 2 or 3 elements, got {edge!r}"
                )
            rows.append(int(r))
            cols.append(int(c))
            values.append(float(w))
        if shape is None:
            extent = 0
            if rows:
                extent = max(max(rows), max(cols)) + 1
            shape = (extent, extent)
        return cls(shape, rows, cols, values)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, keeping exact non-zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise GraphFormatError("dense input must be two-dimensional")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        return cls(shape, [], [], [])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the dense matrix (duplicates summed)."""
        dense = np.zeros(self._shape, dtype=np.float64)
        np.add.at(dense, (self._rows, self._cols), self._values)
        return dense

    def transpose(self) -> "COOMatrix":
        """Swap rows and columns (``A`` → ``A^T``)."""
        return COOMatrix(
            (self._shape[1], self._shape[0]),
            self._cols.copy(),
            self._rows.copy(),
            self._values.copy(),
        )

    def sorted_by(self, order: str = "row") -> "COOMatrix":
        """Return a copy sorted ``row``-major or ``col``-major.

        ``row`` sorts by (row, col); ``col`` by (col, row) — the paper
        assumes row-major source order before preprocessing and
        column-major order inside each subgraph.
        """
        if order == "row":
            perm = np.lexsort((self._cols, self._rows))
        elif order == "col":
            perm = np.lexsort((self._rows, self._cols))
        else:
            raise GraphFormatError(f"unknown sort order {order!r}")
        return self.permuted(perm)

    def permuted(self, perm: np.ndarray) -> "COOMatrix":
        """Reorder entries by an explicit index permutation."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.nnz,):
            raise GraphFormatError(
                f"permutation length {perm.shape} does not match nnz {self.nnz}"
            )
        return COOMatrix(
            self._shape,
            self._rows[perm],
            self._cols[perm],
            self._values[perm],
        )

    def take(self, indices: np.ndarray) -> "COOMatrix":
        """Select a subset of entries by index (order preserved as given)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise GraphFormatError("indices must be one-dimensional")
        if indices.size and (indices.min() < 0 or indices.max() >= self.nnz):
            raise GraphFormatError("entry index out of range")
        return COOMatrix(
            self._shape,
            self._rows[indices],
            self._cols[indices],
            self._values[indices],
        )

    def deduplicated(self, combine: str = "sum") -> "COOMatrix":
        """Merge duplicate coordinates.

        ``combine`` is ``"sum"`` (accumulate weights), ``"min"``,
        ``"max"`` or ``"last"`` (keep the last occurrence).
        """
        if self.nnz == 0:
            return COOMatrix.empty(self._shape)
        keys = self._rows * self._shape[1] + self._cols
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        vals_sorted = self._values[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], keys_sorted[1:] != keys_sorted[:-1]))
        )
        unique_keys = keys_sorted[group_starts]
        if combine == "sum":
            merged = np.add.reduceat(vals_sorted, group_starts)
        elif combine == "min":
            merged = np.minimum.reduceat(vals_sorted, group_starts)
        elif combine == "max":
            merged = np.maximum.reduceat(vals_sorted, group_starts)
        elif combine == "last":
            group_ends = np.concatenate((group_starts[1:], [len(keys_sorted)])) - 1
            merged = vals_sorted[group_ends]
        else:
            raise GraphFormatError(f"unknown combine mode {combine!r}")
        return COOMatrix(
            self._shape,
            unique_keys // self._shape[1],
            unique_keys % self._shape[1],
            merged,
        )

    def submatrix(
        self,
        row_start: int,
        row_stop: int,
        col_start: int,
        col_stop: int,
    ) -> "COOMatrix":
        """Extract the tile ``[row_start:row_stop, col_start:col_stop]``
        with coordinates re-based to the tile origin."""
        if not (0 <= row_start <= row_stop <= self._shape[0]):
            raise GraphFormatError(
                f"row range [{row_start}, {row_stop}) invalid for {self._shape[0]} rows"
            )
        if not (0 <= col_start <= col_stop <= self._shape[1]):
            raise GraphFormatError(
                f"col range [{col_start}, {col_stop}) invalid for {self._shape[1]} cols"
            )
        mask = (
            (self._rows >= row_start)
            & (self._rows < row_stop)
            & (self._cols >= col_start)
            & (self._cols < col_stop)
        )
        return COOMatrix(
            (row_stop - row_start, col_stop - col_start),
            self._rows[mask] - row_start,
            self._cols[mask] - col_start,
            self._values[mask],
        )

    def with_values(self, values: Sequence[float]) -> "COOMatrix":
        """Same sparsity pattern, different values."""
        return COOMatrix(self._shape, self._rows.copy(), self._cols.copy(), values)

    def scaled(self, factor: float) -> "COOMatrix":
        """Multiply every value by ``factor``."""
        return self.with_values(self._values * float(factor))

    # ------------------------------------------------------------------
    # Linear algebra helpers
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact ``A @ x`` computed on the sparse entries."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._shape[1],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match {self._shape[1]} cols"
            )
        out = np.zeros(self._shape[0], dtype=np.float64)
        np.add.at(out, self._rows, self._values * x[self._cols])
        return out

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Exact ``A^T @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._shape[0],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match {self._shape[0]} rows"
            )
        out = np.zeros(self._shape[1], dtype=np.float64)
        np.add.at(out, self._cols, self._values * x[self._rows])
        return out

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row (out-degree for adjacency)."""
        return np.bincount(self._rows, minlength=self._shape[0]).astype(np.int64)

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column (in-degree)."""
        return np.bincount(self._cols, minlength=self._shape[1]).astype(np.int64)
