"""The :class:`Graph` facade used throughout the library.

A ``Graph`` wraps a directed, optionally weighted edge list stored as a
:class:`~repro.graph.coo.COOMatrix` over a square vertex space, plus a
little metadata (name, whether weights are meaningful, an optional
scale factor recording how far a dataset analog was shrunk from the
paper's original — see DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.csr import CSCMatrix, CSRMatrix

__all__ = ["Graph"]


@dataclass(frozen=True)
class Graph:
    """A directed graph over vertices ``0..num_vertices-1``.

    Attributes
    ----------
    adjacency:
        COO matrix whose entry ``(u, v, w)`` is a directed edge
        ``u -> v`` with weight ``w``.
    name:
        Human-readable label (dataset short code for the paper's
        datasets, e.g. ``"WV"``).
    weighted:
        Whether edge weights carry meaning.  Unweighted algorithms such
        as BFS ignore weights either way; generators set this flag so
        reports can state what was run.
    scale_factor:
        ``original_edges / generated_edges`` when the graph is a scaled
        stand-in for a larger published dataset; ``1.0`` otherwise.
    """

    adjacency: COOMatrix
    name: str = "graph"
    weighted: bool = False
    scale_factor: float = 1.0
    _csr_cache: list = field(default_factory=list, repr=False, compare=False)
    _csc_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise GraphFormatError(
                f"adjacency must be square, got {self.adjacency.shape}"
            )
        if self.scale_factor <= 0:
            raise GraphFormatError("scale_factor must be positive")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]] | Iterable[Tuple[int, int, float]],
        num_vertices: Optional[int] = None,
        name: str = "graph",
        weighted: bool = False,
    ) -> "Graph":
        """Build a graph from an edge iterable.

        ``num_vertices`` defaults to one past the largest endpoint.
        """
        shape = None if num_vertices is None else (num_vertices, num_vertices)
        coo = COOMatrix.from_edges(edges, shape=shape)
        if coo.shape[0] != coo.shape[1]:
            coo = COOMatrix(
                (max(coo.shape), max(coo.shape)), coo.rows, coo.cols, coo.values
            )
        return cls(adjacency=coo, name=name, weighted=weighted)

    # ------------------------------------------------------------------
    # Shape and degree queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|`` (duplicates counted)."""
        return self.adjacency.nnz

    @property
    def density(self) -> float:
        """``|E| / |V|^2`` — the x-axis of the paper's Figure 21."""
        return self.adjacency.density

    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex."""
        return self.adjacency.row_degrees()

    def in_degrees(self) -> np.ndarray:
        """In-degree per vertex."""
        return self.adjacency.col_degrees()

    # ------------------------------------------------------------------
    # Format views (cached)
    # ------------------------------------------------------------------
    def csr(self) -> CSRMatrix:
        """Out-edge (CSR) view, converted on first use then cached."""
        if not self._csr_cache:
            self._csr_cache.append(CSRMatrix.from_coo(self.adjacency))
        return self._csr_cache[0]

    def csc(self) -> CSCMatrix:
        """In-edge (CSC) view, converted on first use then cached."""
        if not self._csc_cache:
            self._csc_cache.append(CSCMatrix.from_coo(self.adjacency))
        return self._csc_cache[0]

    def reversed(self) -> "Graph":
        """Graph with every edge direction flipped."""
        return Graph(
            adjacency=self.adjacency.transpose(),
            name=f"{self.name}^T",
            weighted=self.weighted,
            scale_factor=self.scale_factor,
        )

    def deduplicated(self) -> "Graph":
        """Graph with duplicate edges merged (weights summed)."""
        return Graph(
            adjacency=self.adjacency.deduplicated("sum"),
            name=self.name,
            weighted=self.weighted,
            scale_factor=self.scale_factor,
        )

    def symmetrized(self) -> "Graph":
        """Graph with every edge mirrored (weights deduplicated by min).

        Used by undirected-semantics algorithms such as weakly connected
        components.
        """
        adj = self.adjacency
        rows = np.concatenate([np.asarray(adj.rows), np.asarray(adj.cols)])
        cols = np.concatenate([np.asarray(adj.cols), np.asarray(adj.rows)])
        values = np.concatenate([np.asarray(adj.values),
                                 np.asarray(adj.values)])
        sym = COOMatrix(adj.shape, rows, cols, values).deduplicated("min")
        return Graph(
            adjacency=sym,
            name=f"{self.name}+sym",
            weighted=self.weighted,
            scale_factor=self.scale_factor,
        )

    def with_unit_weights(self) -> "Graph":
        """Graph with every weight replaced by 1 (for BFS)."""
        return Graph(
            adjacency=self.adjacency.with_values(
                np.ones(self.adjacency.nnz)
            ),
            name=self.name,
            weighted=False,
            scale_factor=self.scale_factor,
        )

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, weighted={self.weighted})"
        )
