"""Block / subgraph partitioning (Sections 3.3-3.4, Figure 12).

GraphR partitions the ``|V| x |V|`` adjacency matrix twice:

* into **blocks** of ``B x B`` vertices — the unit loaded from disk into
  the node's memory ReRAM (out-of-core granularity);
* each block into **subgraphs** of ``C x (C*N*G)`` — the tile processed
  by all graph engines in one streaming-apply step (``C`` = crossbar
  size, ``N`` = crossbars per GE, ``G`` = GEs per node).

:class:`DualSlidingWindows` additionally models GridGraph's 2-D edge
grid (Figure 2b), which the CPU baseline streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.graph.coo import COOMatrix

__all__ = ["BlockPartition", "SubgraphGrid", "DualSlidingWindows",
           "ceil_div", "pad_to_multiple"]


def ceil_div(a: int, b: int) -> int:
    """``ceil(a / b)`` on non-negative ints."""
    if b <= 0:
        raise PartitionError("divisor must be positive")
    return -(-a // b)


def pad_to_multiple(n: int, multiple: int) -> int:
    """Smallest value >= n that is a multiple of ``multiple``.

    The paper pads |V| with zero rows/columns so that B divides V and
    the subgraph tile divides B ("we can simply pad zeros ... these
    zeros do not correspond to actual edges").
    """
    return ceil_div(n, multiple) * multiple


@dataclass(frozen=True)
class BlockPartition:
    """Partition of a ``V x V`` matrix into ``B x B`` vertex blocks.

    Blocks are enumerated in the paper's column-major global order
    (Section 3.4: ``B(0,0) -> B(1,0) -> B(0,1) -> B(1,1)``).
    """

    num_vertices: int
    block_size: int

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise PartitionError("num_vertices must be positive")
        if self.block_size <= 0:
            raise PartitionError("block_size must be positive")

    @property
    def padded_vertices(self) -> int:
        """Vertex count after zero padding to a multiple of B."""
        return pad_to_multiple(self.num_vertices, self.block_size)

    @property
    def blocks_per_side(self) -> int:
        """Number of block rows (= block columns)."""
        return self.padded_vertices // self.block_size

    @property
    def num_blocks(self) -> int:
        """Total blocks in the grid."""
        return self.blocks_per_side ** 2

    def block_coords(self, i: int, j: int) -> Tuple[int, int]:
        """Block coordinates ``(Bi, Bj)`` of matrix entry ``(i, j)`` — Eq. (1)."""
        self._check_entry(i, j)
        return i // self.block_size, j // self.block_size

    def block_order(self, bi: int, bj: int) -> int:
        """Column-major global order of block ``(bi, bj)`` — Eq. (2).

        The paper's Eq. (2) prints ``IB = Bj + (V/B) * Bj``, an obvious
        typo for the column-major index ``Bi + (V/B) * Bj`` its own
        example sequence ``B(0,0) -> B(1,0) -> B(0,1) -> B(1,1)``
        requires; we implement the sequence.
        """
        side = self.blocks_per_side
        if not (0 <= bi < side and 0 <= bj < side):
            raise PartitionError(f"block ({bi}, {bj}) outside {side}x{side} grid")
        return bi + side * bj

    def block_of_entry(self, i: int, j: int) -> int:
        """Global block order of the block containing entry ``(i, j)``."""
        return self.block_order(*self.block_coords(i, j))

    def iter_blocks(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(bi, bj)`` in global (column-major) order."""
        side = self.blocks_per_side
        for bj in range(side):
            for bi in range(side):
                yield bi, bj

    def block_submatrix(self, coo: COOMatrix, bi: int, bj: int) -> COOMatrix:
        """Extract block ``(bi, bj)`` from an adjacency COO matrix."""
        if coo.shape[0] != coo.shape[1] or coo.shape[0] != self.num_vertices:
            raise PartitionError(
                f"matrix shape {coo.shape} does not match partition over "
                f"{self.num_vertices} vertices"
            )
        b = self.block_size
        row_stop = min((bi + 1) * b, self.num_vertices)
        col_stop = min((bj + 1) * b, self.num_vertices)
        sub = coo.submatrix(bi * b, row_stop, bj * b, col_stop)
        # Re-shape to the full padded block so downstream tiling is uniform.
        return COOMatrix((b, b), sub.rows, sub.cols, sub.values)

    def _check_entry(self, i: int, j: int) -> None:
        if not (0 <= i < self.padded_vertices and 0 <= j < self.padded_vertices):
            raise PartitionError(
                f"entry ({i}, {j}) outside padded {self.padded_vertices}^2 matrix"
            )


@dataclass(frozen=True)
class SubgraphGrid:
    """Partition of one ``B x B`` block into ``C x (C*N*G)`` subgraphs.

    A subgraph is the tile consumed by all GEs in a single
    streaming-apply step: ``C`` source vertices tall (one crossbar of
    wordlines) and ``C*N*G`` destination vertices wide (bitlines across
    every crossbar of every GE).
    """

    block_size: int
    crossbar_size: int
    crossbars_per_ge: int
    num_ges: int

    def __post_init__(self) -> None:
        if min(self.block_size, self.crossbar_size, self.crossbars_per_ge,
               self.num_ges) <= 0:
            raise PartitionError("all partition parameters must be positive")
        if self.tile_cols > pad_to_multiple(self.block_size, self.tile_cols):
            raise PartitionError("subgraph tile wider than the padded block")

    @property
    def tile_rows(self) -> int:
        """Subgraph height ``C`` (source vertices)."""
        return self.crossbar_size

    @property
    def tile_cols(self) -> int:
        """Subgraph width ``C*N*G`` (destination vertices)."""
        return self.crossbar_size * self.crossbars_per_ge * self.num_ges

    @property
    def padded_block(self) -> Tuple[int, int]:
        """Block size padded so the tile divides it in both dimensions."""
        return (
            pad_to_multiple(self.block_size, self.tile_rows),
            pad_to_multiple(self.block_size, self.tile_cols),
        )

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """``(tile_rows_count, tile_cols_count)`` of the subgraph grid."""
        rows, cols = self.padded_block
        return rows // self.tile_rows, cols // self.tile_cols

    @property
    def subgraphs_per_block(self) -> int:
        """Total subgraph tiles in one block."""
        r, c = self.grid_shape
        return r * c

    def subgraph_coords(self, i: int, j: int) -> Tuple[int, int]:
        """Tile coordinates of an in-block entry ``(i', j')`` — Eq. (5)."""
        rows, cols = self.padded_block
        if not (0 <= i < rows and 0 <= j < cols):
            raise PartitionError(
                f"entry ({i}, {j}) outside padded block {rows}x{cols}"
            )
        return i // self.tile_rows, j // self.tile_cols

    def subgraph_order(self, si: int, sj: int) -> int:
        """Column-major order of tile ``(si, sj)`` within the block — Eq. (6).

        Column-major matches GraphR's streaming-apply choice: all tiles
        over the same destination range are consecutive, so RegO holds
        one destination chunk at a time.
        """
        n_rows, n_cols = self.grid_shape
        if not (0 <= si < n_rows and 0 <= sj < n_cols):
            raise PartitionError(
                f"subgraph ({si}, {sj}) outside {n_rows}x{n_cols} grid"
            )
        return si + sj * n_rows

    def iter_subgraphs(self) -> Iterator[Tuple[int, int]]:
        """Yield tile coords ``(si, sj)`` in column-major order."""
        n_rows, n_cols = self.grid_shape
        for sj in range(n_cols):
            for si in range(n_rows):
                yield si, sj

    def tile_bounds(self, si: int, sj: int) -> Tuple[int, int, int, int]:
        """In-block ``(row_start, row_stop, col_start, col_stop)`` of a tile."""
        n_rows, n_cols = self.grid_shape
        if not (0 <= si < n_rows and 0 <= sj < n_cols):
            raise PartitionError(
                f"subgraph ({si}, {sj}) outside {n_rows}x{n_cols} grid"
            )
        return (
            si * self.tile_rows,
            (si + 1) * self.tile_rows,
            sj * self.tile_cols,
            (sj + 1) * self.tile_cols,
        )

    def nonempty_subgraph_count(self, block: COOMatrix) -> int:
        """Number of tiles of ``block`` that contain at least one edge.

        GraphR skips empty subgraphs entirely ("if the subgraph is
        empty, then GEs can move down to the next subgraph"), so this
        count — not the grid size — drives execution time.
        """
        if block.nnz == 0:
            return 0
        si = np.asarray(block.rows) // self.tile_rows
        sj = np.asarray(block.cols) // self.tile_cols
        return int(np.unique(si * self.grid_shape[1] + sj).size)

    def occupancy_histogram(self, block: COOMatrix) -> np.ndarray:
        """Edges per non-empty tile, sorted descending (diagnostics)."""
        if block.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        si = np.asarray(block.rows) // self.tile_rows
        sj = np.asarray(block.cols) // self.tile_cols
        _, counts = np.unique(si * self.grid_shape[1] + sj, return_counts=True)
        return np.sort(counts)[::-1]


@dataclass(frozen=True)
class DualSlidingWindows:
    """GridGraph's dual sliding windows (Figure 2b), used by the CPU model.

    Vertices are split into ``P`` chunks; edges into a ``P x P`` grid of
    blocks.  Streaming a destination-oriented column of blocks slides the
    source window over the chunks while the destination window stays put.
    """

    num_vertices: int
    num_chunks: int

    def __post_init__(self) -> None:
        if self.num_vertices <= 0 or self.num_chunks <= 0:
            raise PartitionError("num_vertices and num_chunks must be positive")
        if self.num_chunks > self.num_vertices:
            raise PartitionError("more chunks than vertices")

    @property
    def chunk_size(self) -> int:
        """Vertices per chunk (last chunk may be smaller)."""
        return ceil_div(self.num_vertices, self.num_chunks)

    def chunk_of(self, v: int) -> int:
        """Chunk index of vertex ``v``."""
        if not 0 <= v < self.num_vertices:
            raise PartitionError(f"vertex {v} out of range")
        return v // self.chunk_size

    def edge_grid_counts(self, coo: COOMatrix) -> np.ndarray:
        """``P x P`` array: number of edges in each (src_chunk, dst_chunk)
        grid cell."""
        if coo.shape != (self.num_vertices, self.num_vertices):
            raise PartitionError("matrix shape does not match the partition")
        p = self.num_chunks
        grid = np.zeros((p, p), dtype=np.int64)
        if coo.nnz:
            src = np.asarray(coo.rows) // self.chunk_size
            dst = np.asarray(coo.cols) // self.chunk_size
            np.add.at(grid, (src, dst), 1)
        return grid
