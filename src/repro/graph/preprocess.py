"""Edge-list preprocessing for streaming-apply (Section 3.4, Eqs. 1-9).

GraphR requires the on-disk edge list to be ordered so that the edges of
consecutive subgraphs are contiguous: loading a block, then each
subgraph, is then purely sequential I/O.  The order is hierarchical:

1. blocks in column-major order over the ``(V/B)^2`` block grid (Eq. 2);
2. within a block, subgraph tiles of ``C x (C*N*G)`` in column-major
   order (Eqs. 5-6);
3. within a subgraph, entries in column-major order (Eq. 8).

Every edge ``(i, j)`` gets a **global order ID** ``I(i, j)`` that counts
*all* matrix positions (zeros included) preceding it in this traversal
(Eq. 9); sorting the edge list by ``I`` yields the streaming order.  We
implement the computation zero-based and fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import PartitionError
from repro.graph.coo import COOMatrix
from repro.graph.partition import BlockPartition, SubgraphGrid, pad_to_multiple

__all__ = ["GraphROrdering", "global_order_id", "preprocess_edge_list"]


@dataclass(frozen=True)
class GraphROrdering:
    """The geometry that defines a streaming-apply traversal.

    Parameters mirror Figure 9 / Figure 12 of the paper:

    ``num_vertices``
        ``V`` — vertices in the whole graph (pre-padding).
    ``block_size``
        ``B`` — vertices per out-of-core block.
    ``crossbar_size``
        ``C`` — rows/columns of one ReRAM crossbar.
    ``crossbars_per_ge``
        ``N`` — crossbars in one graph engine.
    ``num_ges``
        ``G`` — graph engines in the node.
    """

    num_vertices: int
    block_size: int
    crossbar_size: int
    crossbars_per_ge: int = 1
    num_ges: int = 1

    def __post_init__(self) -> None:
        if min(self.num_vertices, self.block_size, self.crossbar_size,
               self.crossbars_per_ge, self.num_ges) <= 0:
            raise PartitionError("all ordering parameters must be positive")
        if self.block_size > pad_to_multiple(self.num_vertices,
                                             self.block_size):
            raise PartitionError("block larger than the padded graph")

    # -- derived geometry ------------------------------------------------
    @property
    def tile_rows(self) -> int:
        """Subgraph height ``C``."""
        return self.crossbar_size

    @property
    def tile_cols(self) -> int:
        """Subgraph width ``C*N*G``."""
        return self.crossbar_size * self.crossbars_per_ge * self.num_ges

    @property
    def padded_block(self) -> Tuple[int, int]:
        """Block dimensions padded to tile multiples."""
        return (
            pad_to_multiple(self.block_size, self.tile_rows),
            pad_to_multiple(self.block_size, self.tile_cols),
        )

    @property
    def padded_vertices(self) -> int:
        """``V`` padded to a multiple of ``B``."""
        return pad_to_multiple(self.num_vertices, self.block_size)

    @property
    def blocks_per_side(self) -> int:
        """Block-grid side length ``V/B`` (after padding)."""
        return self.padded_vertices // self.block_size

    @property
    def subgraph_grid(self) -> Tuple[int, int]:
        """Subgraph tiles per block ``(rows, cols)``."""
        pr, pc = self.padded_block
        return pr // self.tile_rows, pc // self.tile_cols

    @property
    def entries_per_subgraph(self) -> int:
        """Matrix positions (zeros included) in one subgraph tile."""
        return self.tile_rows * self.tile_cols

    @property
    def entries_per_block(self) -> int:
        """Matrix positions in one padded block."""
        pr, pc = self.padded_block
        return pr * pc

    def block_partition(self) -> BlockPartition:
        """The matching :class:`BlockPartition`."""
        return BlockPartition(self.num_vertices, self.block_size)

    def grid(self) -> SubgraphGrid:
        """The matching :class:`SubgraphGrid`."""
        return SubgraphGrid(self.block_size, self.crossbar_size,
                            self.crossbars_per_ge, self.num_ges)


def global_order_id(ordering: GraphROrdering, rows: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
    """Vectorised Eq. (9): global order ID of each coordinate pair.

    IDs are zero-based; the paper's formulas are one-based, the ordering
    they induce is identical.  Zeros count: two edges ``k`` positions
    apart in the traversal differ by exactly ``k`` in ID.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise PartitionError("rows and cols must have equal length")
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise PartitionError("negative coordinates")
    if rows.size and (rows.max() >= ordering.padded_vertices
                      or cols.max() >= ordering.padded_vertices):
        raise PartitionError("coordinate outside the padded matrix")

    b = ordering.block_size
    side = ordering.blocks_per_side
    tile_r, tile_c = ordering.tile_rows, ordering.tile_cols
    grid_r, grid_c = ordering.subgraph_grid

    # Eq. (1): block coordinates; Eq. (2): column-major block order.
    block_i = rows // b
    block_j = cols // b
    block_order = block_i + side * block_j

    # Eq. (4): coordinates relative to the block origin.
    in_block_i = rows - block_i * b
    in_block_j = cols - block_j * b

    # Eq. (5): subgraph tile coordinates; Eq. (6): column-major tile order.
    tile_i = in_block_i // tile_r
    tile_j = in_block_j // tile_c
    tile_order = tile_i + tile_j * grid_r

    # Eq. (7): coordinates relative to the tile origin; Eq. (8):
    # column-major order inside the tile.
    sub_i = in_block_i - tile_i * tile_r
    sub_j = in_block_j - tile_j * tile_c
    sub_order = sub_i + sub_j * tile_r

    # Eq. (9): compose the hierarchy.
    per_tile = ordering.entries_per_subgraph
    per_block = grid_r * grid_c * per_tile
    return block_order * per_block + tile_order * per_tile + sub_order


def preprocess_edge_list(coo: COOMatrix,
                         ordering: GraphROrdering) -> COOMatrix:
    """Sort an edge list into GraphR streaming order.

    Performed once in software, as in the paper (Figure 9).  The result
    is a :class:`COOMatrix` whose entries, read front to back, visit
    blocks, then subgraphs, then in-tile positions in column-major
    order.  Time ``O(E log E)``, space ``O(E)``.
    """
    if coo.shape[0] != coo.shape[1]:
        raise PartitionError("adjacency matrix must be square")
    if coo.shape[0] != ordering.num_vertices:
        raise PartitionError(
            f"matrix over {coo.shape[0]} vertices does not match ordering "
            f"over {ordering.num_vertices}"
        )
    ids = global_order_id(ordering, np.asarray(coo.rows), np.asarray(coo.cols))
    if np.unique(ids).size != ids.size:
        # Duplicate coordinates share an ID; keep a stable order for them.
        perm = np.argsort(ids, kind="stable")
    else:
        perm = np.argsort(ids)
    return coo.permuted(perm)
