"""Compressed sparse row/column formats (Figure 4 of the paper).

GraphR stores graphs as COO on disk, but the CPU baseline (GridGraph
style) and the reference algorithm implementations traverse CSR/CSC.
Both classes convert losslessly to and from :class:`COOMatrix` and offer
row/column slicing that the vertex-centric reference algorithms use.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix

__all__ = ["CSRMatrix", "CSCMatrix"]


class _CompressedBase:
    """Shared machinery for CSR and CSC.

    Stores ``indptr`` over the *major* axis and ``indices`` on the
    *minor* axis.  For CSR major = rows; for CSC major = columns.
    """

    __slots__ = ("_shape", "_indptr", "_indices", "_values")

    #: Which axis of ``shape`` is the major (compressed) axis.
    _MAJOR_AXIS = 0

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise GraphFormatError(f"shape must be non-negative, got {shape!r}")
        self._shape = (n_rows, n_cols)
        major = self._shape[self._MAJOR_AXIS]
        minor = self._shape[1 - self._MAJOR_AXIS]

        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indptr.shape != (major + 1,):
            raise GraphFormatError(
                f"indptr must have length major+1 = {major + 1}, got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise GraphFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if indices.shape != values.shape:
            raise GraphFormatError("indices and values length mismatch")
        if indices.size and (indices.min() < 0 or indices.max() >= minor):
            raise GraphFormatError("minor-axis index out of range")
        self._indptr = indptr
        self._indices = indices
        self._values = values

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Logical dense shape ``(n_rows, n_cols)``."""
        return self._shape

    @property
    def indptr(self) -> np.ndarray:
        """Major-axis segment pointers (read-only)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """Minor-axis indices (read-only)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Non-zero values (read-only)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self._indices.shape[0])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self._shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    def _major_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(minor_indices, values)`` for one major-axis index."""
        major = self._shape[self._MAJOR_AXIS]
        if not 0 <= i < major:
            raise GraphFormatError(f"major index {i} out of range [0, {major})")
        start, stop = int(self._indptr[i]), int(self._indptr[i + 1])
        return self._indices[start:stop], self._values[start:stop]

    def _expand_major(self) -> np.ndarray:
        """Expand indptr into a per-entry major coordinate array."""
        major = self._shape[self._MAJOR_AXIS]
        return np.repeat(np.arange(major, dtype=np.int64), np.diff(self._indptr))

    @classmethod
    def _compress(cls, shape: Tuple[int, int], major: np.ndarray,
                  minor: np.ndarray, values: np.ndarray) -> "_CompressedBase":
        """Build from coordinate arrays by stable-sorting on the major axis."""
        order = np.lexsort((minor, major))
        major_sorted = major[order]
        n_major = shape[cls._MAJOR_AXIS]
        counts = np.bincount(major_sorted, minlength=n_major)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(shape, indptr, minor[order], values[order])


class CSRMatrix(_CompressedBase):
    """Compressed sparse row matrix (Figure 4c)."""

    _MAJOR_AXIS = 0

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Convert from :class:`COOMatrix` (duplicates preserved)."""
        return cls._compress(coo.shape, np.asarray(coo.rows),
                             np.asarray(coo.cols), np.asarray(coo.values))

    def to_coo(self) -> COOMatrix:
        """Convert back to coordinate form (row-major entry order)."""
        return COOMatrix(self._shape, self._expand_major(), self._indices,
                         self._values)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(col_indices, values)`` of row ``i`` — a vertex's out-edges."""
        return self._major_slice(i)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._shape[1],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match {self._shape[1]} cols"
            )
        out = np.zeros(self._shape[0], dtype=np.float64)
        np.add.at(out, self._expand_major(), self._values * x[self._indices])
        return out

    def to_dense(self) -> np.ndarray:
        """Materialise the dense matrix (duplicates summed)."""
        return self.to_coo().to_dense()


class CSCMatrix(_CompressedBase):
    """Compressed sparse column matrix (Figure 4b)."""

    _MAJOR_AXIS = 1

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        """Convert from :class:`COOMatrix` (duplicates preserved)."""
        return cls._compress(coo.shape, np.asarray(coo.cols),
                             np.asarray(coo.rows), np.asarray(coo.values))

    def to_coo(self) -> COOMatrix:
        """Convert back to coordinate form (column-major entry order)."""
        return COOMatrix(self._shape, self._indices, self._expand_major(),
                         self._values)

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of column ``j`` — a vertex's in-edges."""
        return self._major_slice(j)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact ``A @ x`` (gather along columns)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._shape[1],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match {self._shape[1]} cols"
            )
        out = np.zeros(self._shape[0], dtype=np.float64)
        np.add.at(out, self._indices, self._values * x[self._expand_major()])
        return out

    def to_dense(self) -> np.ndarray:
        """Materialise the dense matrix (duplicates summed)."""
        return self.to_coo().to_dense()
