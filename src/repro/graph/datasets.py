"""Scaled analogs of the paper's evaluation datasets (Table 3).

The paper evaluates on seven real graphs:

========  ===================  ==========  =========
Code      Dataset              # Vertices  # Edges
========  ===================  ==========  =========
WV        WikiVote             7.0 K       103 K
SD        Slashdot             82 K        948 K
AZ        Amazon               262 K       1.2 M
WG        WebGoogle            0.88 M      5.1 M
LJ        LiveJournal          4.8 M       69 M
OK        Orkut                3.0 M       106 M
NF        Netflix              480K users, 17.8K movies, 99 M ratings
========  ===================  ==========  =========

Offline we regenerate each as a deterministic R-MAT (or bipartite) graph.
Graphs above ``MAX_SYNTH_EDGES`` edges are shrunk with density preserved
and the shrink recorded in :attr:`Graph.scale_factor`; the performance
models consume event counts, so relative platform ordering is
scale-stable (DESIGN.md Section 6).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import DatasetError
from repro.graph.generators import bipartite_rating_graph, rmat
from repro.graph.graph import Graph
from repro.obs import metrics

__all__ = ["DatasetSpec", "artifact_key", "cached", "dataset",
           "list_datasets", "PAPER_DATASETS", "MAX_SYNTH_EDGES"]

#: Bump when the generators (hence the built arrays) change shape:
#: residency segments and other content-keyed artifacts derived from a
#: dataset build are keyed by this, so old residents go cold instead of
#: serving stale bytes.
DATASET_BUILD_VERSION = 1

#: Cap on generated edges: keeps every dataset analog laptop-friendly.
MAX_SYNTH_EDGES = 2_000_000


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one Table 3 dataset.

    ``paper_vertices`` / ``paper_edges`` are the counts in the paper;
    ``bipartite`` marks Netflix, whose vertex count splits into
    ``(users, items)``.
    """

    code: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    bipartite: bool = False
    users: int = 0
    items: int = 0

    def synthetic_size(self) -> Tuple[int, int, float]:
        """``(vertices, edges, scale_factor)`` of the generated analog.

        Shrinks vertices and edges by the same linear factor (so the
        average degree, hence density relative to a graph of that size,
        tracks the original) until the edge count fits under
        :data:`MAX_SYNTH_EDGES`.
        """
        if self.paper_edges <= MAX_SYNTH_EDGES:
            return self.paper_vertices, self.paper_edges, 1.0
        factor = self.paper_edges / MAX_SYNTH_EDGES
        vertices = max(2, int(self.paper_vertices / factor))
        edges = MAX_SYNTH_EDGES
        return vertices, edges, factor


#: The seven Table 3 datasets, keyed by the paper's short code.
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "WV": DatasetSpec("WV", "WikiVote", 7_000, 103_000),
    "SD": DatasetSpec("SD", "Slashdot", 82_000, 948_000),
    "AZ": DatasetSpec("AZ", "Amazon", 262_000, 1_200_000),
    "WG": DatasetSpec("WG", "WebGoogle", 880_000, 5_100_000),
    "LJ": DatasetSpec("LJ", "LiveJournal", 4_800_000, 69_000_000),
    "OK": DatasetSpec("OK", "Orkut", 3_000_000, 106_000_000),
    "NF": DatasetSpec("NF", "Netflix", 480_000 + 17_800, 99_000_000,
                      bipartite=True, users=480_000, items=17_800),
}

_CACHE: Dict[Tuple[str, bool, int], Graph] = {}


def list_datasets() -> Tuple[str, ...]:
    """Short codes of every available dataset, in Table 3 order."""
    return tuple(PAPER_DATASETS)


def artifact_key(code: str, weighted: bool = False, seed: int = 7) -> str:
    """Content key of one dataset build — the build-once artifact form.

    Generation is deterministic in ``(code, weighted, seed)`` plus the
    generator version, so this digest names the *bytes* a build
    produces; shared-memory residency and any future on-disk artifact
    store key their copies by it.
    """
    payload = {
        "build_version": DATASET_BUILD_VERSION,
        "dataset": code.upper(),
        "weighted": bool(weighted),
        "seed": int(seed),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def cached(code: str, weighted: bool = False, seed: int = 7) -> bool:
    """Whether :func:`dataset` would be a warm in-process cache hit
    (an *attach*, in pipeline terms, rather than a *prepare*)."""
    return (code.upper(), weighted, seed) in _CACHE


def dataset(code: str, weighted: bool = False, seed: int = 7,
            use_cache: bool = True) -> Graph:
    """Generate (or fetch from cache) the analog of a Table 3 dataset.

    Parameters
    ----------
    code:
        Paper short code, e.g. ``"WV"`` (case-insensitive).
    weighted:
        Attach integer edge weights (needed for SSSP).  Netflix is
        always weighted (ratings).
    seed:
        Generator seed; the default matches the shipped benchmarks.
    use_cache:
        Memoise the generated graph for the life of the process.  The
        benchmark harness hits each dataset many times.
    """
    key = code.upper()
    if key not in PAPER_DATASETS:
        raise DatasetError(
            f"unknown dataset {code!r}; available: {', '.join(PAPER_DATASETS)}"
        )
    spec = PAPER_DATASETS[key]
    cache_key = (key, weighted, seed)
    if use_cache and cache_key in _CACHE:
        return _CACHE[cache_key]

    # Counted at the actual generation site so "exactly one build"
    # is assertable across a worker pool sharing one resident copy.
    metrics.get_registry().counter(
        "repro_dataset_builds_total",
        "Dataset analogs generated from scratch").inc()
    vertices, edges, factor = spec.synthetic_size()
    if spec.bipartite:
        # Shrink the user dimension only: the item side is small in the
        # original (17.8K movies) and shrinking it too would make the
        # rating matrix unrealistically dense per crossbar tile.
        users = max(2, int(spec.users / factor))
        items = spec.items
        ratings = min(edges, users * items)
        graph = bipartite_rating_graph(
            num_users=users, num_items=items, num_ratings=ratings,
            seed=seed, name=key,
        )
    else:
        scale = max(1, math.ceil(math.log2(max(2, vertices))))
        graph = rmat(scale=scale, num_edges=edges, seed=seed,
                     weighted=weighted, name=key)
    graph = Graph(
        adjacency=graph.adjacency,
        name=key,
        weighted=graph.weighted,
        scale_factor=factor,
    )
    if use_cache:
        _CACHE[cache_key] = graph
    return graph


def clear_cache() -> None:
    """Drop all memoised datasets (mainly for tests)."""
    _CACHE.clear()
