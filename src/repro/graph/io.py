"""Edge-list persistence: the out-of-core side of GraphR's workflow.

The paper assumes a preprocessed COO edge list on disk, loaded block by
block with sequential I/O (Figure 9).  This module provides a simple,
dependency-free text format (one ``src dst [weight]`` triple per line,
``#`` comments) and a compact binary format used by the examples.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph

__all__ = ["save_edge_list", "load_edge_list", "save_binary", "load_binary"]

_MAGIC = b"GRPR"
_VERSION = 1


def save_edge_list(graph: Graph, path: Union[str, Path]) -> None:
    """Write ``src dst weight`` lines, with a metadata header comment."""
    path = Path(path)
    adj = graph.adjacency
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# repro edge list: name={graph.name} "
                 f"vertices={graph.num_vertices} edges={graph.num_edges} "
                 f"weighted={int(graph.weighted)}\n")
        for src, dst, weight in adj:
            if graph.weighted:
                fh.write(f"{src} {dst} {weight:g}\n")
            else:
                fh.write(f"{src} {dst}\n")


def load_edge_list(path: Union[str, Path], num_vertices: int = 0,
                   name: str = "", weighted: bool = False) -> Graph:
    """Read a text edge list written by :func:`save_edge_list` (or any
    whitespace-separated ``src dst [weight]`` file)."""
    path = Path(path)
    rows: list[int] = []
    cols: list[int] = []
    values: list[float] = []
    header_vertices = 0
    header_name = ""
    header_weighted = weighted
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("vertices="):
                        header_vertices = int(token.split("=", 1)[1])
                    elif token.startswith("name="):
                        header_name = token.split("=", 1)[1]
                    elif token.startswith("weighted="):
                        header_weighted = bool(int(token.split("=", 1)[1]))
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
                )
            rows.append(int(parts[0]))
            cols.append(int(parts[1]))
            values.append(float(parts[2]) if len(parts) == 3 else 1.0)
    n = num_vertices or header_vertices
    if n == 0:
        n = (max(max(rows), max(cols)) + 1) if rows else 0
    coo = COOMatrix((n, n), rows, cols, values)
    return Graph(adjacency=coo, name=name or header_name or path.stem,
                 weighted=header_weighted)


def save_binary(graph: Graph, path: Union[str, Path]) -> None:
    """Write a compact little-endian binary: header + (i64, i64, f64) rows."""
    path = Path(path)
    adj = graph.adjacency
    with path.open("wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<IQQB", _VERSION, graph.num_vertices,
                             graph.num_edges, int(graph.weighted)))
        fh.write(np.asarray(adj.rows, dtype="<i8").tobytes())
        fh.write(np.asarray(adj.cols, dtype="<i8").tobytes())
        fh.write(np.asarray(adj.values, dtype="<f8").tobytes())


#: Bytes before the array payload: 4-byte magic + ``<IQQB`` header.
_HEADER_BYTES = 4 + struct.calcsize("<IQQB")


def load_binary(path: Union[str, Path], name: str = "",
                mmap: bool = False) -> Graph:
    """Read a file written by :func:`save_binary`.

    With ``mmap=True`` the arrays are zero-copy read-only views over a
    private memory mapping of the file instead of heap copies — the
    attach path for immutable content-keyed artifacts (prepared
    out-of-core shard blocks).  The mapping lives as long as the
    arrays do; values are bit-identical to a buffered read.
    """
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise GraphFormatError(f"{path}: not a repro binary graph file")
        version, vertices, edges, weighted = struct.unpack("<IQQB",
                                                           fh.read(21))
        if version != _VERSION:
            raise GraphFormatError(f"{path}: unsupported version {version}")
        if mmap:
            import mmap as mmap_module

            mapped = mmap_module.mmap(fh.fileno(), 0,
                                      access=mmap_module.ACCESS_READ)
            buf = memoryview(mapped)
            rows = np.frombuffer(buf, dtype="<i8", count=edges,
                                 offset=_HEADER_BYTES)
            cols = np.frombuffer(buf, dtype="<i8", count=edges,
                                 offset=_HEADER_BYTES + 8 * edges)
            values = np.frombuffer(buf, dtype="<f8", count=edges,
                                   offset=_HEADER_BYTES + 16 * edges)
        else:
            rows = np.frombuffer(fh.read(8 * edges), dtype="<i8")
            cols = np.frombuffer(fh.read(8 * edges), dtype="<i8")
            values = np.frombuffer(fh.read(8 * edges), dtype="<f8")
    coo = COOMatrix((vertices, vertices), rows, cols, values)
    return Graph(adjacency=coo, name=name or path.stem,
                 weighted=bool(weighted))
