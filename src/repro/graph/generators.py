"""Deterministic synthetic graph generators.

These stand in for the paper's SNAP/KONECT datasets (Table 3), which we
cannot download offline.  The R-MAT generator reproduces the power-law
degree skew of real social/web graphs; the bipartite rating generator
mimics the Netflix user x movie matrix used for collaborative filtering.
All generators accept a ``seed`` and are fully deterministic for a given
(seed, parameters) pair.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph

__all__ = [
    "erdos_renyi",
    "rmat",
    "bipartite_rating_graph",
    "chain_graph",
    "star_graph",
    "grid_graph",
    "complete_graph",
]


def _weights(rng: np.random.Generator, count: int, weighted: bool,
             max_weight: float) -> Optional[np.ndarray]:
    """Integer weights in ``[1, max_weight]`` or ``None`` for unit weights."""
    if not weighted:
        return None
    return rng.integers(1, int(max_weight) + 1, size=count).astype(np.float64)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    weighted: bool = False,
    max_weight: float = 15.0,
    allow_self_loops: bool = False,
    name: str = "erdos-renyi",
) -> Graph:
    """Uniform random directed graph with exactly ``num_edges`` distinct edges.

    Edges are sampled without replacement from the ``|V|^2`` possible
    coordinates (minus the diagonal when ``allow_self_loops`` is false).
    """
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    capacity = num_vertices * num_vertices
    if not allow_self_loops:
        capacity -= num_vertices
    if num_edges > capacity:
        raise GraphFormatError(
            f"cannot place {num_edges} distinct edges in capacity {capacity}"
        )
    rng = np.random.default_rng(seed)
    chosen: set[int] = set()
    # Rejection sampling with batches; fine because requested densities
    # in this library are far below capacity.
    while len(chosen) < num_edges:
        need = num_edges - len(chosen)
        batch = rng.integers(0, num_vertices * num_vertices, size=max(need * 2, 16))
        for key in batch:
            key = int(key)
            if not allow_self_loops and key // num_vertices == key % num_vertices:
                continue
            chosen.add(key)
            if len(chosen) == num_edges:
                break
    keys = np.fromiter(chosen, dtype=np.int64, count=num_edges)
    keys.sort()
    rows = keys // num_vertices
    cols = keys % num_vertices
    values = _weights(rng, num_edges, weighted, max_weight)
    coo = COOMatrix((num_vertices, num_vertices), rows, cols, values)
    return Graph(adjacency=coo, name=name, weighted=weighted)


def rmat(
    scale: int,
    num_edges: int,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    weighted: bool = False,
    max_weight: float = 15.0,
    deduplicate: bool = True,
    name: str = "rmat",
) -> Graph:
    """Recursive-matrix (R-MAT / Kronecker) power-law graph.

    ``2**scale`` vertices.  The default ``(a, b, c)`` parameters are the
    Graph500 values, producing the heavy-tailed degree distributions of
    real social networks.  With ``deduplicate`` the edge count may come
    out slightly below ``num_edges`` (duplicates merged), which matches
    how real datasets are reported.
    """
    if scale <= 0 or scale > 30:
        raise GraphFormatError("scale must be in [1, 30]")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise GraphFormatError("require a, b, c >= 0 and a + b + c < 1")
    num_vertices = 1 << scale
    rng = np.random.default_rng(seed)

    def sample(count: int) -> COOMatrix:
        rows = np.zeros(count, dtype=np.int64)
        cols = np.zeros(count, dtype=np.int64)
        ab = a + b
        abc = a + b + c
        for level in range(scale):
            r = rng.random(count)
            # Quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1)
            right = ((r >= a) & (r < ab)) | (r >= abc)
            down = r >= ab
            bit = np.int64(1 << (scale - level - 1))
            rows += down * bit
            cols += right * bit
        return COOMatrix((num_vertices, num_vertices), rows, cols, None)

    if not deduplicate:
        coo = sample(num_edges)
    else:
        # Oversample so the post-dedup edge count matches the request
        # (power-law sampling collides heavily on hub vertices).
        coo = sample(num_edges)
        for _ in range(6):
            coo = coo.deduplicated("last")
            missing = num_edges - coo.nnz
            if missing <= 0 or coo.nnz >= num_vertices * num_vertices:
                break
            extra = sample(max(2 * missing, 64))
            coo = COOMatrix(
                coo.shape,
                np.concatenate([np.asarray(coo.rows), np.asarray(extra.rows)]),
                np.concatenate([np.asarray(coo.cols), np.asarray(extra.cols)]),
                None,
            )
        coo = coo.deduplicated("last")
        if coo.nnz > num_edges:
            keep = rng.permutation(coo.nnz)[:num_edges]
            keep.sort()
            coo = coo.take(keep)

    values = _weights(rng, coo.nnz, weighted, max_weight)
    if values is not None:
        coo = coo.with_values(values)
    return Graph(adjacency=coo, name=name, weighted=weighted)


def bipartite_rating_graph(
    num_users: int,
    num_items: int,
    num_ratings: int,
    seed: int = 0,
    rating_levels: int = 5,
    name: str = "ratings",
) -> Graph:
    """Bipartite user-item rating graph (Netflix stand-in for CF).

    Users occupy vertex ids ``[0, num_users)`` and items
    ``[num_users, num_users + num_items)``; each rating is a directed
    edge user -> item with an integer weight in ``[1, rating_levels]``.
    Item popularity follows a Zipf-like skew, as in real rating data.
    """
    if num_users <= 0 or num_items <= 0:
        raise GraphFormatError("num_users and num_items must be positive")
    if num_ratings > num_users * num_items:
        raise GraphFormatError("more ratings than user-item pairs")
    rng = np.random.default_rng(seed)
    # Zipf-ish item popularity.
    popularity = 1.0 / np.arange(1, num_items + 1, dtype=np.float64)
    popularity /= popularity.sum()

    users = rng.integers(0, num_users, size=num_ratings)
    items = rng.choice(num_items, size=num_ratings, p=popularity)
    ratings = rng.integers(1, rating_levels + 1, size=num_ratings).astype(np.float64)

    total = num_users + num_items
    coo = COOMatrix((total, total), users, items + num_users, ratings)
    coo = coo.deduplicated("last")
    return Graph(adjacency=coo, name=name, weighted=True)


def chain_graph(num_vertices: int, weighted: bool = False,
                name: str = "chain") -> Graph:
    """Path ``0 -> 1 -> ... -> n-1`` (weights = 1)."""
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    rows = np.arange(num_vertices - 1)
    cols = rows + 1
    coo = COOMatrix((num_vertices, num_vertices), rows, cols, None)
    return Graph(adjacency=coo, name=name, weighted=weighted)


def star_graph(num_vertices: int, center: int = 0, name: str = "star") -> Graph:
    """Edges from ``center`` to every other vertex."""
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    if not 0 <= center < num_vertices:
        raise GraphFormatError("center out of range")
    others = np.array([v for v in range(num_vertices) if v != center],
                      dtype=np.int64)
    rows = np.full(others.shape, center, dtype=np.int64)
    coo = COOMatrix((num_vertices, num_vertices), rows, others, None)
    return Graph(adjacency=coo, name=name, weighted=False)


def grid_graph(side: int, name: str = "grid") -> Graph:
    """``side x side`` 4-neighbour grid with edges right and down."""
    if side <= 0:
        raise GraphFormatError("side must be positive")
    edges = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                edges.append((v, v + 1))
            if r + 1 < side:
                edges.append((v, v + side))
    return Graph.from_edges(edges, num_vertices=side * side, name=name)


def watts_strogatz(num_vertices: int, neighbours: int, rewire_p: float,
                   seed: int = 0, name: str = "watts-strogatz") -> Graph:
    """Small-world graph: ring lattice with random rewiring.

    Each vertex connects to its ``neighbours`` clockwise successors;
    every edge's endpoint is rewired to a uniform random vertex with
    probability ``rewire_p``.  Useful for sensitivity studies between
    the regular (grid/chain) and power-law (R-MAT) extremes.
    """
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    if not 0 < neighbours < num_vertices:
        raise GraphFormatError("neighbours must be in (0, num_vertices)")
    if not 0.0 <= rewire_p <= 1.0:
        raise GraphFormatError("rewire_p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(num_vertices), neighbours)
    offsets = np.tile(np.arange(1, neighbours + 1), num_vertices)
    dst = (src + offsets) % num_vertices
    rewire = rng.random(dst.shape[0]) < rewire_p
    dst = np.where(rewire, rng.integers(0, num_vertices, dst.shape[0]),
                   dst)
    # Drop accidental self loops from rewiring.
    keep = src != dst
    coo = COOMatrix((num_vertices, num_vertices), src[keep], dst[keep],
                    None).deduplicated("last")
    return Graph(adjacency=coo, name=name, weighted=False)


def barabasi_albert(num_vertices: int, attach: int, seed: int = 0,
                    name: str = "barabasi-albert") -> Graph:
    """Preferential-attachment graph (scale-free degree distribution).

    Vertices arrive one at a time and attach ``attach`` out-edges to
    existing vertices with probability proportional to their current
    degree — the classic generative model for the hub structure R-MAT
    mimics statistically.
    """
    if num_vertices <= attach or attach <= 0:
        raise GraphFormatError(
            "need num_vertices > attach > 0"
        )
    rng = np.random.default_rng(seed)
    src: list[int] = []
    dst: list[int] = []
    # Repeated-endpoint list implements degree-proportional sampling.
    endpoints: list[int] = list(range(attach))
    for vertex in range(attach, num_vertices):
        targets: set[int] = set()
        while len(targets) < attach:
            pick = endpoints[int(rng.integers(len(endpoints)))]
            targets.add(pick)
        for target in targets:
            src.append(vertex)
            dst.append(target)
            endpoints.append(target)
        endpoints.extend([vertex] * attach)
    coo = COOMatrix((num_vertices, num_vertices), src, dst, None)
    return Graph(adjacency=coo, name=name, weighted=False)


def complete_graph(num_vertices: int, name: str = "complete") -> Graph:
    """Every ordered pair (u, v), u != v — density 1 minus the diagonal."""
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    rows, cols = np.nonzero(~np.eye(num_vertices, dtype=bool))
    coo = COOMatrix((num_vertices, num_vertices), rows, cols, None)
    return Graph(adjacency=coo, name=name, weighted=False)
