"""Graph statistics used by examples, reports and workload sanity checks.

Nothing here is GraphR-specific; it is the small analysis toolkit a
user of the library needs to understand a workload before simulating it
(degree skew, reachability, tile occupancy under a given accelerator
geometry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.partition import SubgraphGrid

__all__ = ["GraphSummary", "summarize", "degree_histogram",
           "reachable_fraction", "tile_occupancy"]


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of one graph."""

    name: str
    num_vertices: int
    num_edges: int
    density: float
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    self_loops: int
    isolated_vertices: int

    def describe(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join([
            f"graph {self.name}:",
            f"  vertices          {self.num_vertices:,}",
            f"  edges             {self.num_edges:,}",
            f"  density           {self.density:.3e}",
            f"  mean out-degree   {self.mean_degree:.2f}",
            f"  max out-degree    {self.max_out_degree:,}",
            f"  max in-degree     {self.max_in_degree:,}",
            f"  self loops        {self.self_loops:,}",
            f"  isolated vertices {self.isolated_vertices:,}",
        ])


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for a graph."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    mean_degree = (graph.num_edges / graph.num_vertices
                   if graph.num_vertices else 0.0)
    return GraphSummary(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        density=graph.density,
        max_out_degree=int(out_deg.max(initial=0)),
        max_in_degree=int(in_deg.max(initial=0)),
        mean_degree=mean_degree,
        self_loops=int((src == dst).sum()),
        isolated_vertices=int(((out_deg == 0) & (in_deg == 0)).sum()),
    )


def degree_histogram(graph: Graph, direction: str = "out",
                     bins: int = 16) -> Dict[str, np.ndarray]:
    """Log-binned degree histogram (power-law graphs need log bins).

    Returns ``{"edges": bin_edges, "counts": vertices_per_bin}``.
    """
    if direction == "out":
        deg = graph.out_degrees()
    elif direction == "in":
        deg = graph.in_degrees()
    else:
        raise GraphFormatError("direction must be 'out' or 'in'")
    if bins <= 0:
        raise GraphFormatError("bins must be positive")
    top = max(int(deg.max(initial=0)), 1)
    edges = np.unique(np.geomspace(1, top + 1, bins + 1).astype(np.int64))
    counts, _ = np.histogram(deg[deg > 0], bins=edges)
    return {"edges": edges, "counts": counts}


def reachable_fraction(graph: Graph, source: int = 0) -> float:
    """Fraction of vertices reachable from ``source`` (BFS-based)."""
    # Imported lazily: repro.algorithms depends on repro.graph, so a
    # module-level import here would be circular.
    from repro.algorithms.bfs import UNREACHABLE, bfs_reference
    result = bfs_reference(graph, source=source)
    return float((result.values < UNREACHABLE).mean())


def tile_occupancy(graph: Graph, grid: SubgraphGrid) -> Dict[str, float]:
    """How well a graph fills an accelerator geometry's subgraph tiles.

    Returns the non-empty tile fraction and the mean edges per
    non-empty tile — the two quantities that drive GraphR's
    sparsity-dependent behaviour (Figure 21).
    """
    if graph.num_vertices % grid.block_size:
        padded = ((graph.num_vertices // grid.block_size) + 1) \
            * grid.block_size
    else:
        padded = graph.num_vertices
    blocks_per_side = padded // grid.block_size
    total_tiles = (blocks_per_side ** 2) * grid.subgraphs_per_block

    part_edges = 0
    nonempty = 0
    from repro.graph.partition import BlockPartition
    block_part = BlockPartition(graph.num_vertices, grid.block_size)
    for bi, bj in block_part.iter_blocks():
        block = block_part.block_submatrix(graph.adjacency, bi, bj)
        nonempty += grid.nonempty_subgraph_count(block)
        part_edges += block.nnz
    return {
        "nonempty_fraction": nonempty / total_tiles if total_tiles else 0.0,
        "edges_per_nonempty_tile": (part_edges / nonempty
                                    if nonempty else 0.0),
    }
