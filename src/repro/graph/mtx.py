"""MatrixMarket (.mtx) interchange, the lingua franca of sparse-matrix
suites (SuiteSparse, SNAP mirrors, scipy).

Supports the ``matrix coordinate`` format with ``real``, ``integer``
or ``pattern`` fields and ``general`` or ``symmetric`` symmetry.
MatrixMarket is 1-indexed; the loader converts to the library's
0-indexed vertices.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph

__all__ = ["save_mtx", "load_mtx"]

_HEADER = "%%MatrixMarket matrix coordinate"


def save_mtx(graph: Graph, path: Union[str, Path],
             comment: str = "") -> None:
    """Write a graph as a general coordinate MatrixMarket file."""
    path = Path(path)
    adj = graph.adjacency
    field = "real" if graph.weighted else "pattern"
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{_HEADER} {field} general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{adj.shape[0]} {adj.shape[1]} {adj.nnz}\n")
        for row, col, value in adj:
            if graph.weighted:
                fh.write(f"{row + 1} {col + 1} {value:g}\n")
            else:
                fh.write(f"{row + 1} {col + 1}\n")


def load_mtx(path: Union[str, Path], name: str = "") -> Graph:
    """Read a coordinate MatrixMarket file into a :class:`Graph`.

    ``symmetric`` inputs are expanded (each off-diagonal entry
    mirrored); rectangular matrices are embedded in the enclosing
    square vertex space, matching how bipartite rating data is used.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        parts = header.lower().split()
        if (len(parts) < 5 or parts[0] != "%%matrixmarket"
                or parts[1] != "matrix" or parts[2] != "coordinate"):
            raise GraphFormatError(
                f"{path}: unsupported MatrixMarket header {header!r}"
            )
        field, symmetry = parts[3], parts[4]
        if field not in ("real", "integer", "pattern"):
            raise GraphFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(
                f"{path}: unsupported symmetry {symmetry!r}"
            )

        size_line = ""
        for line in fh:
            line = line.strip()
            if line and not line.startswith("%"):
                size_line = line
                break
        if not size_line:
            raise GraphFormatError(f"{path}: missing size line")
        dims = size_line.split()
        if len(dims) != 3:
            raise GraphFormatError(f"{path}: bad size line {size_line!r}")
        n_rows, n_cols, nnz = (int(d) for d in dims)

        rows: list[int] = []
        cols: list[int] = []
        values: list[float] = []
        raw_entries = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if field == "pattern":
                if len(parts) != 2:
                    raise GraphFormatError(
                        f"{path}: pattern entries need 2 fields: {line!r}"
                    )
                value = 1.0
            else:
                if len(parts) != 3:
                    raise GraphFormatError(
                        f"{path}: entries need 3 fields: {line!r}"
                    )
                value = float(parts[2])
            row, col = int(parts[0]) - 1, int(parts[1]) - 1
            raw_entries += 1
            rows.append(row)
            cols.append(col)
            values.append(value)
            if symmetry == "symmetric" and row != col:
                rows.append(col)
                cols.append(row)
                values.append(value)

    # Validate against the size line *before* mirroring: symmetric
    # files state the stored (lower-triangle) entry count, so a
    # truncated file must fail here rather than load silently.
    if raw_entries != nnz:
        raise GraphFormatError(
            f"{path}: expected {nnz} entries, found {raw_entries}"
        )
    n = max(n_rows, n_cols)
    coo = COOMatrix((n, n), rows, cols, values)
    return Graph(adjacency=coo, name=name or path.stem,
                 weighted=(field != "pattern"))
