"""Graph substrate: containers, formats, generators, partitioning.

This subpackage provides everything GraphR's evaluation needs below the
accelerator: sparse-matrix containers mirroring Figure 4 of the paper
(COO / CSR / CSC), a :class:`~repro.graph.graph.Graph` facade, synthetic
generators standing in for the SNAP datasets of Table 3, the
block/subgraph partitioner of Section 3.3, and the Section 3.4
preprocessing pass that produces GraphR's streaming-apply edge order.
"""

from repro.graph.coo import COOMatrix
from repro.graph.csr import CSRMatrix, CSCMatrix
from repro.graph.graph import Graph
from repro.graph.generators import (
    erdos_renyi,
    rmat,
    bipartite_rating_graph,
    chain_graph,
    star_graph,
    grid_graph,
    complete_graph,
)
from repro.graph.datasets import dataset, list_datasets, DatasetSpec
from repro.graph.partition import BlockPartition, SubgraphGrid, DualSlidingWindows
from repro.graph.preprocess import (
    GraphROrdering,
    preprocess_edge_list,
    global_order_id,
)
from repro.graph.analysis import GraphSummary, summarize
from repro.graph.mtx import load_mtx, save_mtx

__all__ = [
    "GraphSummary",
    "summarize",
    "load_mtx",
    "save_mtx",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "Graph",
    "erdos_renyi",
    "rmat",
    "bipartite_rating_graph",
    "chain_graph",
    "star_graph",
    "grid_graph",
    "complete_graph",
    "dataset",
    "list_datasets",
    "DatasetSpec",
    "BlockPartition",
    "SubgraphGrid",
    "DualSlidingWindows",
    "GraphROrdering",
    "preprocess_edge_list",
    "global_order_id",
]
