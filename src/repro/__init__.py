"""repro — a reproduction of *GraphR: Accelerating Graph Processing
Using ReRAM* (Song et al., HPCA 2018).

The package layers, bottom-up:

* :mod:`repro.graph` — sparse formats, generators, dataset analogs,
  partitioning and the Section 3.4 preprocessing pass;
* :mod:`repro.reram` — functional ReRAM cell/crossbar and GE
  peripheral models;
* :mod:`repro.hw` — technology constants and time/energy ledgers;
* :mod:`repro.algorithms` — vertex programs and exact references
  (PageRank, BFS, SSSP, SpMV, collaborative filtering);
* :mod:`repro.core` — the GraphR accelerator (the paper's
  contribution): streaming-apply, MAC/add-op mappers, cost model;
* :mod:`repro.baselines` — CPU (GridGraph-like), GPU (Gunrock-like)
  and PIM (Tesseract-like) platform models;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import GraphR, dataset
    result, stats = GraphR().run("pagerank", dataset("WV"))
"""

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.datasets import dataset, list_datasets

__version__ = "1.0.0"

__all__ = ["GraphR", "GraphRConfig", "dataset", "list_datasets",
           "__version__"]
