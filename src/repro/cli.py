"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run ALGORITHM DATASET``
    Simulate one workload on a chosen platform and print the stats.
``figures [fig17|fig18|fig19|fig20|fig21|all]``
    Regenerate the paper's figures as text.
``tables [1|2|3]``
    Print the paper's tables.
``datasets``
    List the Table 3 dataset analogs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines import CPUPlatform, GPUPlatform, PIMPlatform
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.datasets import dataset, list_datasets

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphR (HPCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("algorithm",
                     choices=["pagerank", "bfs", "sssp", "spmv", "cf",
                              "wcc"])
    run.add_argument("dataset", help="Table 3 code, e.g. WV")
    run.add_argument("--platform", default="graphr",
                     choices=["graphr", "cpu", "gpu", "pim"])
    run.add_argument("--iterations", type=int, default=20,
                     help="iteration budget for iterative algorithms")
    run.add_argument("--source", type=int, default=0,
                     help="source vertex for BFS/SSSP")
    run.add_argument("--epochs", type=int, default=3,
                     help="training epochs for CF")

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("which", nargs="?", default="all",
                         choices=["fig17", "fig18", "fig19", "fig20",
                                  "fig21", "all"])

    tables = sub.add_parser("tables", help="print paper tables")
    tables.add_argument("which", nargs="?", default="all",
                        choices=["1", "2", "3", "all"])

    sub.add_parser("datasets", help="list dataset analogs")
    return parser


def _run_command(args: argparse.Namespace) -> int:
    graph = dataset(args.dataset, weighted=(args.algorithm == "sssp"))
    kwargs: dict = {}
    if args.algorithm in ("bfs", "sssp"):
        kwargs["source"] = args.source
    elif args.algorithm == "pagerank":
        kwargs["max_iterations"] = args.iterations
    elif args.algorithm == "cf":
        kwargs["epochs"] = args.epochs

    if args.platform == "graphr":
        _, stats = GraphR(GraphRConfig(mode="analytic")).run(
            args.algorithm, graph, **kwargs)
    else:
        platform = {"cpu": CPUPlatform, "gpu": GPUPlatform,
                    "pim": PIMPlatform}[args.platform]()
        _, stats = platform.run(args.algorithm, graph, **kwargs)

    print(stats.summary())
    print("energy breakdown (J):")
    for component, joules in stats.energy.breakdown().items():
        print(f"  {component:20s} {joules:.6e}")
    return 0


def _figures_command(args: argparse.Namespace) -> int:
    from repro.experiments import (ExperimentRunner, figure17, figure18,
                                   figure19, figure20, figure21)
    builders = {"fig17": figure17, "fig18": figure18, "fig19": figure19,
                "fig20": figure20, "fig21": figure21}
    wanted = builders if args.which == "all" else \
        {args.which: builders[args.which]}
    runner = ExperimentRunner()
    for builder in wanted.values():
        print(builder(runner).describe())
        print()
    return 0


def _tables_command(args: argparse.Namespace) -> int:
    from repro.experiments import table1, table2, table3
    builders = {"1": table1, "2": table2,
                "3": lambda: table3(generate=False)}
    wanted = builders if args.which == "all" else \
        {args.which: builders[args.which]}
    for builder in wanted.values():
        _, text = builder()
        print(text)
        print()
    return 0


def _datasets_command(_: argparse.Namespace) -> int:
    from repro.graph.datasets import PAPER_DATASETS
    for code in list_datasets():
        spec = PAPER_DATASETS[code]
        print(f"{code}: {spec.full_name} — paper |V|="
              f"{spec.paper_vertices:,}, |E|={spec.paper_edges:,}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _run_command,
        "figures": _figures_command,
        "tables": _tables_command,
        "datasets": _datasets_command,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
