"""Command-line interface: ``python -m repro <command>`` (or the
``repro`` console script).

Commands
--------
``run ALGORITHM DATASET``
    Simulate one workload on a chosen platform and print the stats.
``batch JOBFILE``
    Execute a JSON job file through the parallel batch runtime.
``figures [fig17|fig18|fig19|fig20|fig21|all]``
    Regenerate the paper's figures as text.
``tables [1|2|3]``
    Print the paper's tables.
``datasets``
    List the Table 3 dataset analogs.

``run`` and ``figures`` accept ``--workers N`` (process-pool size) and
``--cache-dir PATH`` (persistent result cache); ``run``, ``batch`` and
``datasets`` accept ``--json`` for machine-consumable output.  ``run``
also picks the deployment scenario: ``--deployment
single|out-of-core|multi-node`` with ``--block-size`` (out-of-core
``B``) and ``--num-nodes`` (cluster size); ``batch`` job files carry
the same ``deployment`` object per entry for deployment-grid sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.runtime import BatchRunner, load_jobfile

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphR (HPCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("algorithm",
                     choices=["pagerank", "bfs", "sssp", "spmv", "cf",
                              "wcc"])
    run.add_argument("dataset", help="Table 3 code, e.g. WV")
    run.add_argument("--platform", default="graphr",
                     choices=["graphr", "cpu", "gpu", "pim"])
    run.add_argument("--iterations", type=int, default=20,
                     help="iteration budget for iterative algorithms")
    run.add_argument("--source", type=int, default=0,
                     help="source vertex for BFS/SSSP")
    run.add_argument("--epochs", type=int, default=3,
                     help="training epochs for CF")
    run.add_argument("--mode", default=None,
                     choices=["auto", "functional", "analytic"],
                     help="GraphR execution mode (default: the "
                          "runtime's analytic-mode configuration)")
    run.add_argument("--batch-size", type=int, default=None,
                     help="subgraph tiles per batched functional "
                          "engine call (0 = per-tile loop)")
    run.add_argument("--deployment", default=None,
                     choices=["single", "out-of-core", "multi-node"],
                     help="GraphR deployment scenario (default: "
                          "in-memory single node)")
    run.add_argument("--num-nodes", type=int, default=4,
                     help="cluster size for --deployment multi-node")
    run.add_argument("--block-size", type=int, default=None,
                     help="out-of-core block size B in vertices "
                          "(default: the whole graph as one block)")
    _add_runtime_flags(run)
    run.add_argument("--json", action="store_true",
                     help="print the run's stats as JSON")

    batch = sub.add_parser("batch",
                           help="execute a JSON job file in parallel")
    batch.add_argument("jobfile", help="path to the job file (JSON)")
    _add_runtime_flags(batch)
    batch.add_argument("--json", action="store_true",
                       help="print every result (and cache stats) as "
                            "JSON")

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("which", nargs="?", default="all",
                         choices=["fig17", "fig18", "fig19", "fig20",
                                  "fig21", "all"])
    _add_runtime_flags(figures)

    tables = sub.add_parser("tables", help="print paper tables")
    tables.add_argument("which", nargs="?", default="all",
                        choices=["1", "2", "3", "all"])

    datasets = sub.add_parser("datasets", help="list dataset analogs")
    datasets.add_argument("--json", action="store_true",
                          help="print the dataset table as JSON")
    return parser


def _add_runtime_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--workers", type=int, default=1,
                         help="process-pool size (default: 1, serial)")
    command.add_argument("--cache-dir", default=None,
                         help="persistent result-cache directory")


def _batch_runner(args: argparse.Namespace) -> BatchRunner:
    return BatchRunner(workers=args.workers, cache_dir=args.cache_dir)


def _run_command(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import stats_to_dict

    kwargs: dict = {}
    if args.algorithm in ("bfs", "sssp"):
        kwargs["source"] = args.source
    elif args.algorithm == "pagerank":
        kwargs["max_iterations"] = args.iterations
    elif args.algorithm == "cf":
        kwargs["epochs"] = args.epochs

    config = None
    if args.mode is not None or args.batch_size is not None \
            or args.block_size is not None:
        from repro.core.config import GraphRConfig
        # Seed from the runtime's analytic-mode default so that
        # --batch-size alone tunes the batch without silently flipping
        # the execution mode to auto.
        overrides: dict = {"mode": args.mode or "analytic"}
        if args.batch_size is not None:
            overrides["functional_batch_size"] = args.batch_size
        if args.block_size is not None:
            overrides["block_size"] = args.block_size
        config = GraphRConfig(**overrides)

    deployment = None
    if args.deployment is not None:
        from repro.core.partitioned import DeploymentSpec
        deployment = DeploymentSpec(kind=args.deployment,
                                    num_nodes=args.num_nodes)

    runner = _batch_runner(args)
    stats = runner.run(args.algorithm, args.dataset,
                       platform=args.platform, config=config,
                       deployment=deployment, **kwargs)
    if args.json:
        print(json.dumps(stats_to_dict(stats), indent=2))
        return 0
    print(stats.summary())
    print("energy breakdown (J):")
    for component, joules in stats.energy.breakdown().items():
        print(f"  {component:20s} {joules:.6e}")
    return 0


def _batch_command(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import stats_to_dict
    from repro.experiments.report import render_table

    jobs = load_jobfile(args.jobfile)
    runner = _batch_runner(args)
    results = runner.run_jobs(jobs)
    failures = [r for r in results if not r.ok]

    if args.json:
        print(json.dumps({
            "results": [
                {
                    "job": result.job.to_dict(),
                    "key": result.job.content_key(),
                    "ok": result.ok,
                    "from_cache": result.from_cache,
                    "error": result.error,
                    "stats": (stats_to_dict(result.stats)
                              if result.ok else None),
                }
                for result in results
            ],
            "cache": runner.cache_stats(),
        }, indent=2))
        return 1 if failures else 0

    header = ["job", "status", "seconds", "joules", "iterations"]
    body = []
    for result in results:
        if result.ok:
            status = "cached" if result.from_cache else "ok"
            body.append([result.job.label(), status,
                         f"{result.stats.seconds:.4g}",
                         f"{result.stats.joules:.4g}",
                         str(result.stats.iterations)])
        else:
            body.append([result.job.label(), "FAILED", "-", "-", "-"])
    print(render_table(header, body))
    cache = runner.cache_stats()
    print(f"{len(results)} job(s), {len(failures)} failed; cache: "
          f"{cache['hits']} hit(s), {cache['misses']} miss(es)")
    for result in failures:
        print(f"\n{result.job.label()} failed:\n{result.error}",
              file=sys.stderr)
    return 1 if failures else 0


def _figures_command(args: argparse.Namespace) -> int:
    from repro.experiments import (ExperimentRunner, figure17, figure18,
                                   figure19, figure20, figure21)
    builders = {"fig17": figure17, "fig18": figure18, "fig19": figure19,
                "fig20": figure20, "fig21": figure21}
    wanted = builders if args.which == "all" else \
        {args.which: builders[args.which]}
    runner = ExperimentRunner(batch_runner=_batch_runner(args))
    for builder in wanted.values():
        print(builder(runner).describe())
        print()
    return 0


def _tables_command(args: argparse.Namespace) -> int:
    from repro.experiments import table1, table2, table3
    builders = {"1": table1, "2": table2,
                "3": lambda: table3(generate=False)}
    wanted = builders if args.which == "all" else \
        {args.which: builders[args.which]}
    for builder in wanted.values():
        _, text = builder()
        print(text)
        print()
    return 0


def _datasets_command(args: argparse.Namespace) -> int:
    from repro.graph.datasets import PAPER_DATASETS, list_datasets
    if args.json:
        print(json.dumps([
            {
                "code": code,
                "full_name": PAPER_DATASETS[code].full_name,
                "paper_vertices": PAPER_DATASETS[code].paper_vertices,
                "paper_edges": PAPER_DATASETS[code].paper_edges,
                "bipartite": PAPER_DATASETS[code].bipartite,
            }
            for code in list_datasets()
        ], indent=2))
        return 0
    for code in list_datasets():
        spec = PAPER_DATASETS[code]
        print(f"{code}: {spec.full_name} — paper |V|="
              f"{spec.paper_vertices:,}, |E|={spec.paper_edges:,}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _run_command,
        "batch": _batch_command,
        "figures": _figures_command,
        "tables": _tables_command,
        "datasets": _datasets_command,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
