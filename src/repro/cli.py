"""Command-line interface: ``python -m repro <command>`` (or the
``repro`` console script).

Commands
--------
``run ALGORITHM DATASET``
    Simulate one workload on a chosen platform and print the stats.
``batch JOBFILE``
    Execute a JSON job file through the parallel batch runtime.
``serve``
    Run the persistent simulation service (job queue daemon + HTTP
    API) until SIGINT/SIGTERM.
``submit JOBFILE``
    Submit a job file to a running service (``--wait`` blocks until
    the batch drains and prints the results).
``status [JOB_ID]``
    One job's status, or a listing (``--state`` filters).
``result JOB_ID``
    A finished job's stats.
``cache {stats,prune}``
    Inspect or size-bound a result-cache directory.
``bench``
    Run the pinned benchmark grid, write ``BENCH_<rev>.json`` and
    (with ``--against BASELINE``) fail on phase-time regressions.
``figures [fig17|fig18|fig19|fig20|fig21|all]``
    Regenerate the paper's figures as text.
``tables [1|2|3]``
    Print the paper's tables.
``datasets``
    List the Table 3 dataset analogs.

``run`` and ``figures`` accept ``--workers N`` (process-pool size) and
``--cache-dir PATH`` (persistent result cache); ``run``, ``batch`` and
``datasets`` accept ``--json`` for machine-consumable output.  ``run``
also picks the deployment scenario: ``--deployment
single|out-of-core|multi-node`` with ``--block-size`` (out-of-core
``B``) and ``--num-nodes`` (cluster size); ``batch`` job files carry
the same ``deployment`` object per entry for deployment-grid sweeps.
The service commands (``submit``/``status``/``result``) take ``--url``
(default ``http://127.0.0.1:8750``) to reach the daemon.  ``run``,
``batch``, ``serve`` and ``bench`` accept ``--log-level`` and
``--log-json`` to surface the telemetry log stream (correlation-id
stamped, optionally JSON lines).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.runtime import BatchRunner, load_jobfile

__all__ = ["main", "build_parser"]

#: Default address of the ``repro serve`` daemon.
DEFAULT_SERVICE_URL = "http://127.0.0.1:8750"


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphR (HPCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.algorithms.registry import list_algorithms

    run = sub.add_parser("run", help="simulate one workload")
    # Derived from the registry, so a newly registered algorithm is
    # immediately runnable (pre-fix the list was hardcoded here and
    # silently went stale).
    run.add_argument("algorithm", choices=list(list_algorithms()))
    run.add_argument("dataset", help="Table 3 code, e.g. WV")
    run.add_argument("--platform", default="graphr",
                     choices=["graphr", "cpu", "gpu", "pim"])
    run.add_argument("--iterations", type=int, default=None,
                     help="iteration budget for iterative algorithms "
                          "(default: 20 for pagerank/ppr; frontier "
                          "algorithms run to convergence)")
    run.add_argument("--source", type=int, default=0,
                     help="source vertex for BFS/SSSP/SSWP and the "
                          "PPR restart vertex")
    run.add_argument("--epochs", type=int, default=3,
                     help="training epochs for CF")
    run.add_argument("--k", type=int, default=2,
                     help="core threshold for k-core decomposition")
    run.add_argument("--mode", default=None,
                     choices=["auto", "functional", "analytic"],
                     help="GraphR execution mode (default: the "
                          "runtime's analytic-mode configuration)")
    run.add_argument("--batch-size", type=int, default=None,
                     help="subgraph tiles per batched functional "
                          "engine call (0 = per-tile loop)")
    run.add_argument("--deployment", default=None,
                     choices=["single", "out-of-core", "multi-node"],
                     help="GraphR deployment scenario (default: "
                          "in-memory single node)")
    run.add_argument("--num-nodes", type=int, default=4,
                     help="cluster size for --deployment multi-node")
    run.add_argument("--block-size", type=int, default=None,
                     help="out-of-core block size B in vertices "
                          "(default: the whole graph as one block)")
    _add_runtime_flags(run)
    _add_logging_flags(run)
    run.add_argument("--json", action="store_true",
                     help="print the run's stats as JSON")

    batch = sub.add_parser("batch",
                           help="execute a JSON job file in parallel")
    batch.add_argument("jobfile", help="path to the job file (JSON)")
    _add_runtime_flags(batch)
    _add_logging_flags(batch)
    batch.add_argument("--json", action="store_true",
                       help="print every result (and cache stats) as "
                            "JSON")

    serve = sub.add_parser("serve",
                           help="run the persistent simulation service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750,
                       help="HTTP port (default: 8750; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm worker processes (default: 2)")
    serve.add_argument("--db", default=".repro-service/jobs.db",
                       help="SQLite job-store path "
                            "(default: .repro-service/jobs.db)")
    serve.add_argument("--cache-dir", default=None,
                       help="result-cache directory "
                            "(default: <db dir>/cache)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds "
                            "(default: unbounded)")
    serve.add_argument("--resident-bytes", type=int, default=None,
                       help="cap the shared-memory resident dataset "
                            "pool at this many bytes (default: "
                            "unbounded; LRU segments are evicted "
                            "over the cap)")
    _add_logging_flags(serve)

    submit = sub.add_parser("submit",
                            help="submit a job file to the service")
    submit.add_argument("jobfile", help="path to the job file (JSON)")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority (higher runs first)")
    submit.add_argument("--wait", action="store_true",
                        help="block until every job is terminal and "
                             "print the results")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up waiting after this many seconds")
    _add_service_flags(submit)

    status = sub.add_parser("status",
                            help="job status (one id) or job listing")
    status.add_argument("id", nargs="?", default=None,
                        help="job id; omit to list jobs")
    status.add_argument("--state", default=None,
                        choices=["queued", "running", "done", "failed",
                                 "cancelled"],
                        help="restrict the listing to one state")
    _add_service_flags(status)

    result = sub.add_parser("result",
                            help="fetch a finished job's stats")
    result.add_argument("id", help="job id")
    _add_service_flags(result)

    cache = sub.add_parser("cache",
                           help="inspect or prune a result cache")
    cache_sub = cache.add_subparsers(dest="cache_command",
                                     required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count and total bytes")
    cache_stats.add_argument("--cache-dir", required=True,
                             help="result-cache directory")
    cache_stats.add_argument("--json", action="store_true",
                             help="print the inventory as JSON")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict oldest entries down to a size bound")
    cache_prune.add_argument("--cache-dir", required=True,
                             help="result-cache directory")
    cache_prune.add_argument("--max-bytes", type=int, required=True,
                             help="keep at most this many bytes")
    cache_prune.add_argument("--json", action="store_true",
                             help="print the evicted entries as JSON")

    bench = sub.add_parser(
        "bench", help="run the pinned benchmark grid and record "
                      "per-phase timings")
    bench.add_argument("--out", default=None,
                       help="output path (default: BENCH_<rev>.json "
                            "in the current directory)")
    bench.add_argument("--against", default=None,
                       help="baseline BENCH_*.json to gate against; "
                            "exit 1 on any phase-time regression")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="fractional slowdown that counts as a "
                            "regression (default: 0.25)")
    bench.add_argument("--min-seconds", type=float, default=0.05,
                       help="ignore phases whose baseline is below "
                            "this (noise floor, default: 0.05)")
    _add_runtime_flags(bench)
    _add_logging_flags(bench)
    bench.add_argument("--json", action="store_true",
                       help="print the bench document (and any "
                            "regressions) as JSON")

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("which", nargs="?", default="all",
                         choices=["fig17", "fig18", "fig19", "fig20",
                                  "fig21", "all"])
    _add_runtime_flags(figures)

    tables = sub.add_parser("tables", help="print paper tables")
    tables.add_argument("which", nargs="?", default="all",
                        choices=["1", "2", "3", "all"])

    datasets = sub.add_parser("datasets", help="list dataset analogs")
    datasets.add_argument("--json", action="store_true",
                          help="print the dataset table as JSON")

    lint = sub.add_parser(
        "lint",
        help="check repository invariants (REP1xx/REP2xx rules)",
        description="AST-based invariant checks: determinism, "
                    "filesystem ordering, content-key completeness, "
                    "shared-memory lifecycle, telemetry purity, error "
                    "taxonomy, plus the REP2xx concurrency family "
                    "(lock discipline, fork safety, blocking "
                    "timeouts, finalizer safety, claim protocol).  "
                    "Exits 1 on findings, 2 on misuse.")
    lint.add_argument("paths", nargs="*",
                      help="package dirs or .py files to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--select", action="append", default=[],
                      metavar="RULES",
                      help="run only these comma-separated rule IDs "
                           "or family prefixes, e.g. REP2 "
                           "(repeatable)")
    lint.add_argument("--ignore", action="append", default=[],
                      metavar="RULES",
                      help="skip these comma-separated rule IDs or "
                           "family prefixes (repeatable)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default=None,
                      help="report format (default: text)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable report "
                           "(alias for --format json)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    return parser


def _add_runtime_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--workers", type=int, default=1,
                         help="process-pool size (default: 1, serial)")
    command.add_argument("--cache-dir", default=None,
                         help="persistent result-cache directory")


def _add_logging_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--log-level", default=None,
                         choices=["DEBUG", "INFO", "WARNING", "ERROR"],
                         help="surface the repro log stream at this "
                              "level (default: silent)")
    command.add_argument("--log-json", action="store_true",
                         help="emit log lines as JSON objects")


def _setup_logging(args: argparse.Namespace) -> None:
    """Apply --log-level/--log-json when the command carries them."""
    level = getattr(args, "log_level", None)
    json_lines = getattr(args, "log_json", False)
    if level is not None or json_lines:
        from repro.obs import setup_logging
        setup_logging(level=level or "INFO", json_lines=json_lines)


def _add_service_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--url", default=DEFAULT_SERVICE_URL,
                         help=f"service base URL "
                              f"(default: {DEFAULT_SERVICE_URL})")
    command.add_argument("--json", action="store_true",
                         help="machine-consumable output")


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient
    return ServiceClient(args.url)


def _batch_runner(args: argparse.Namespace) -> BatchRunner:
    return BatchRunner(workers=args.workers, cache_dir=args.cache_dir)


def _run_command(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import stats_to_dict

    kwargs: dict = {}
    if args.algorithm in ("bfs", "sssp", "sswp", "ppr"):
        kwargs["source"] = args.source
    elif args.algorithm == "cf":
        kwargs["epochs"] = args.epochs
    elif args.algorithm == "kcore":
        kwargs["k"] = args.k
    if args.algorithm in ("pagerank", "ppr"):
        # The dense power iterations always carry a budget (their
        # references default to 100, far past the shipped benchmarks).
        kwargs["max_iterations"] = (20 if args.iterations is None
                                    else args.iterations)
    elif args.iterations is not None \
            and args.algorithm in ("bfs", "sssp", "sswp", "kcore",
                                   "wcc"):
        # Frontier algorithms run to convergence unless the user
        # explicitly bounds them (an unconditional default of 20 would
        # silently truncate deep graphs).
        kwargs["max_iterations"] = args.iterations

    config = None
    if args.mode is not None or args.batch_size is not None \
            or args.block_size is not None:
        from repro.core.config import GraphRConfig
        # Seed from the runtime's analytic-mode default so that
        # --batch-size alone tunes the batch without silently flipping
        # the execution mode to auto.
        overrides: dict = {"mode": args.mode or "analytic"}
        if args.batch_size is not None:
            overrides["functional_batch_size"] = args.batch_size
        if args.block_size is not None:
            overrides["block_size"] = args.block_size
        config = GraphRConfig(**overrides)

    deployment = None
    if args.deployment is not None:
        from repro.core.partitioned import DeploymentSpec
        deployment = DeploymentSpec(kind=args.deployment,
                                    num_nodes=args.num_nodes)

    runner = _batch_runner(args)
    stats = runner.run(args.algorithm, args.dataset,
                       platform=args.platform, config=config,
                       deployment=deployment, **kwargs)
    if args.json:
        print(json.dumps(stats_to_dict(stats), indent=2))
        return 0
    print(stats.summary())
    print("energy breakdown (J):")
    for component, joules in stats.energy.breakdown().items():
        print(f"  {component:20s} {joules:.6e}")
    return 0


def _batch_command(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import stats_to_dict
    from repro.experiments.report import render_table

    jobs = load_jobfile(args.jobfile)
    runner = _batch_runner(args)
    results = runner.run_jobs(jobs)
    failures = [r for r in results if not r.ok]

    if args.json:
        print(json.dumps({
            "results": [
                {
                    "job": result.job.to_dict(),
                    "key": result.job.content_key(),
                    "ok": result.ok,
                    "from_cache": result.from_cache,
                    "error": result.error,
                    "stats": (stats_to_dict(result.stats)
                              if result.ok else None),
                }
                for result in results
            ],
            "cache": runner.cache_stats(),
        }, indent=2))
        return 1 if failures else 0

    header = ["job", "status", "seconds", "joules", "iterations"]
    body = []
    for result in results:
        if result.ok:
            status = "cached" if result.from_cache else "ok"
            body.append([result.job.label(), status,
                         f"{result.stats.seconds:.4g}",
                         f"{result.stats.joules:.4g}",
                         str(result.stats.iterations)])
        else:
            body.append([result.job.label(), "FAILED", "-", "-", "-"])
    print(render_table(header, body))
    cache = runner.cache_stats()
    print(f"{len(results)} job(s), {len(failures)} failed; cache: "
          f"{cache['hits']} hit(s), {cache['misses']} miss(es)")
    for result in failures:
        print(f"\n{result.job.label()} failed:\n{result.error}",
              file=sys.stderr)
    return 1 if failures else 0


def _serve_command(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service import SimulationService, serve_in_thread

    from repro.errors import JobError

    service = SimulationService(
        db_path=args.db, cache_dir=args.cache_dir,
        workers=args.workers, job_timeout_s=args.job_timeout,
        resident_bytes=args.resident_bytes)
    requeued = service.start()
    try:
        server = serve_in_thread(service, host=args.host,
                                 port=args.port)
    except OSError as exc:
        service.stop(drain=False)
        raise JobError(f"cannot bind {args.host}:{args.port}: "
                       f"{exc}") from exc
    line = (f"repro service listening on {server.url} — "
            f"{args.workers} worker(s), db {service.db_path}, "
            f"cache {service.cache.cache_dir}")
    if requeued:
        line += f"; requeued {len(requeued)} interrupted job(s)"
    print(line, flush=True)

    stop = threading.Event()

    def _signal(signum, frame):  # noqa: ARG001 - signal API
        stop.set()

    signal.signal(signal.SIGINT, _signal)
    signal.signal(signal.SIGTERM, _signal)
    try:
        while not stop.wait(0.5):
            pass
    finally:
        server.shutdown()
        service.stop(drain=False)
        print("repro service stopped", flush=True)
    return 0


def _submit_command(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table

    jobs = load_jobfile(args.jobfile)
    client = _service_client(args)
    submissions = client.submit(jobs, priority=args.priority)
    if not args.wait:
        if args.json:
            print(json.dumps({"submissions": submissions}, indent=2))
        else:
            for submission in submissions:
                suffix = " (served from cache)" \
                    if submission["from_cache"] else ""
                print(f"{submission['id']}  {submission['state']}"
                      f"{suffix}")
        return 0

    details = client.wait_for([s["id"] for s in submissions],
                              timeout_s=args.timeout)
    failures = [d for d in details if d["state"] != "done"]
    if args.json:
        for submission, detail in zip(submissions, details):
            detail["from_cache"] = submission["from_cache"]
        print(json.dumps({"jobs": details}, indent=2))
        return 1 if failures else 0

    header = ["job", "id", "status", "seconds", "joules", "iterations"]
    body = []
    for submission, detail in zip(submissions, details):
        spec = detail["spec"]
        label = (f"{spec.get('platform', 'graphr')}:"
                 f"{spec['algorithm']}:{spec['dataset']}")
        stats = detail.get("stats")
        if detail["state"] == "done" and stats:
            status = "cached" if submission["from_cache"] else "done"
            body.append([label, detail["id"], status,
                         f"{stats['seconds']:.4g}",
                         f"{stats['joules']:.4g}",
                         str(stats['iterations'])])
        else:
            body.append([label, detail["id"], detail["state"].upper(),
                         "-", "-", "-"])
    print(render_table(header, body))
    for detail in failures:
        print(f"\n{detail['id']} ended {detail['state']}:"
              f"\n{detail.get('error') or '(no error recorded)'}",
              file=sys.stderr)
    return 1 if failures else 0


def _status_command(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table

    client = _service_client(args)
    if args.id is not None:
        detail = client.job(args.id)
        if args.json:
            print(json.dumps(detail, indent=2))
        else:
            spec = detail["spec"]
            print(f"{detail['id']}: {spec.get('platform', 'graphr')}:"
                  f"{spec['algorithm']}:{spec['dataset']} — "
                  f"{detail['state']} "
                  f"(attempts={detail['attempts']}, "
                  f"priority={detail['priority']})")
            if detail.get("error"):
                print(detail["error"], file=sys.stderr)
        return 0
    listing = client.jobs(state=args.state)
    if args.json:
        print(json.dumps({"jobs": listing}, indent=2))
        return 0
    header = ["id", "job", "state", "attempts", "priority"]
    body = [[detail["id"],
             f"{detail['spec'].get('platform', 'graphr')}:"
             f"{detail['spec']['algorithm']}:"
             f"{detail['spec']['dataset']}",
             detail["state"], str(detail["attempts"]),
             str(detail["priority"])]
            for detail in listing]
    print(render_table(header, body))
    print(f"{len(listing)} job(s)")
    return 0


def _result_command(args: argparse.Namespace) -> int:
    from repro.errors import JobError
    from repro.hw.stats import RunStats

    detail = _service_client(args).job(args.id)
    if detail["state"] != "done":
        raise JobError(f"job {args.id} is {detail['state']}, "
                       f"not done"
                       + (f": {detail['error']}"
                          if detail.get("error") else ""))
    stats = detail.get("stats")
    if not stats:
        raise JobError(f"job {args.id} finished but its result left "
                       f"the cache; resubmit to recompute")
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    reconstructed = RunStats.from_dict(stats)
    print(reconstructed.summary())
    print("energy breakdown (J):")
    for component, joules in reconstructed.energy.breakdown().items():
        print(f"  {component:20s} {joules:.6e}")
    return 0


def _cache_command(args: argparse.Namespace) -> int:
    from repro.runtime.cache import ResultCache
    from repro.runtime.residency import host_resident_stats

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        entries = cache.entries()
        shards = cache.shard_entries()
        result_bytes = sum(entry.bytes for entry in entries)
        shard_bytes = sum(entry.bytes for entry in shards)
        # Host-wide, not per-cache-dir: shared-memory segments live in
        # /dev/shm, one namespace per machine.
        resident = host_resident_stats()
        # oldest/newest span the combined inventory — the same order
        # prune evicts in, so "oldest" really is the first victim.
        combined = sorted(entries + shards,
                          key=lambda entry: (entry.mtime, entry.key))
        if args.json:
            print(json.dumps({
                "cache_dir": str(cache.cache_dir),
                "entries": len(entries),
                "result_bytes": result_bytes,
                "shard_count": len(shards),
                "shard_bytes": shard_bytes,
                "total_bytes": result_bytes + shard_bytes,
                "resident_segments": resident["resident_segments"],
                "resident_bytes": resident["resident_bytes"],
                "oldest": combined[0].as_dict() if combined else None,
                "newest": combined[-1].as_dict() if combined else None,
            }, indent=2))
        else:
            print(f"{cache.cache_dir}: {len(entries)} entr"
                  f"{'y' if len(entries) == 1 else 'ies'}, "
                  f"{result_bytes} bytes; {len(shards)} shard "
                  f"dir{'' if len(shards) == 1 else 's'}, "
                  f"{shard_bytes} bytes "
                  f"({result_bytes + shard_bytes} bytes total); "
                  f"{resident['resident_segments']} resident "
                  f"segment{'' if resident['resident_segments'] == 1 else 's'}, "
                  f"{resident['resident_bytes']} bytes in shared "
                  f"memory")
        return 0
    evicted = cache.prune(args.max_bytes)
    freed = sum(entry.bytes for entry in evicted)
    if args.json:
        print(json.dumps({
            "evicted": [entry.as_dict() for entry in evicted],
            "freed_bytes": freed,
            "remaining_bytes": cache.total_bytes(),
        }, indent=2))
    else:
        print(f"evicted {len(evicted)} entr"
              f"{'y' if len(evicted) == 1 else 'ies'} "
              f"({freed} bytes); {cache.total_bytes()} bytes remain")
    return 0


def _bench_command(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (BENCH_PHASES, bench_filename,
                                         compare, load_bench,
                                         run_bench, write_bench)

    document = run_bench(workers=args.workers,
                         cache_dir=args.cache_dir)
    out_path = args.out or bench_filename(document["rev"])
    write_bench(document, out_path)

    regressions = []
    if args.against:
        baseline = load_bench(args.against)
        regressions = compare(document, baseline,
                              threshold=args.threshold,
                              min_seconds=args.min_seconds)

    if args.json:
        print(json.dumps({
            "bench": document,
            "out": str(out_path),
            "regressions": regressions,
        }, indent=2))
        return 1 if regressions else 0

    from repro.experiments.report import render_table

    header = ["workload", *BENCH_PHASES]
    body = [[row["label"]]
            + [f"{row['phases'][phase]:.4f}"
               for phase in BENCH_PHASES]
            for row in document["workloads"]]
    print(render_table(header, body))
    print(f"wrote {out_path} (rev {document['rev']})")
    if args.against:
        if regressions:
            print(f"\n{len(regressions)} phase regression(s) against "
                  f"{args.against}:", file=sys.stderr)
            for reg in regressions:
                print(f"  {reg['label']} {reg['phase']}: "
                      f"{reg['baseline_s']:.4f}s -> "
                      f"{reg['current_s']:.4f}s "
                      f"({reg['ratio']:.2f}x)", file=sys.stderr)
            return 1
        print(f"no regressions against {args.against} "
              f"(threshold {args.threshold:.0%}, noise floor "
              f"{args.min_seconds}s)")
    return 0


def _figures_command(args: argparse.Namespace) -> int:
    from repro.experiments import (ExperimentRunner, figure17, figure18,
                                   figure19, figure20, figure21)
    builders = {"fig17": figure17, "fig18": figure18, "fig19": figure19,
                "fig20": figure20, "fig21": figure21}
    wanted = builders if args.which == "all" else \
        {args.which: builders[args.which]}
    runner = ExperimentRunner(batch_runner=_batch_runner(args))
    for builder in wanted.values():
        print(builder(runner).describe())
        print()
    return 0


def _tables_command(args: argparse.Namespace) -> int:
    from repro.experiments import table1, table2, table3
    builders = {"1": table1, "2": table2,
                "3": lambda: table3(generate=False)}
    wanted = builders if args.which == "all" else \
        {args.which: builders[args.which]}
    for builder in wanted.values():
        _, text = builder()
        print(text)
        print()
    return 0


def _datasets_command(args: argparse.Namespace) -> int:
    from repro.graph.datasets import PAPER_DATASETS, list_datasets
    if args.json:
        print(json.dumps([
            {
                "code": code,
                "full_name": PAPER_DATASETS[code].full_name,
                "paper_vertices": PAPER_DATASETS[code].paper_vertices,
                "paper_edges": PAPER_DATASETS[code].paper_edges,
                "bipartite": PAPER_DATASETS[code].bipartite,
            }
            for code in list_datasets()
        ], indent=2))
        return 0
    for code in list_datasets():
        spec = PAPER_DATASETS[code]
        print(f"{code}: {spec.full_name} — paper |V|="
              f"{spec.paper_vertices:,}, |E|={spec.paper_edges:,}")
    return 0


def _split_rules(values: Sequence[str]) -> List[str]:
    rules: List[str] = []
    for value in values:
        rules.extend(part.strip() for part in value.split(",")
                     if part.strip())
    return rules


def _lint_command(args: argparse.Namespace) -> int:
    from repro.analysis import list_rules, run_lint
    from repro.analysis.reporting import (render_json, render_sarif,
                                          render_text)

    if args.list_rules:
        for entry in list_rules():
            print(f"{entry['rule']}  {entry['summary']}")
        return 0
    paths = [Path(p) for p in args.paths]
    if not paths:
        import repro

        paths = [Path(repro.__file__).parent]
    result = run_lint(paths,
                      select=_split_rules(args.select),
                      ignore=_split_rules(args.ignore))
    fmt = args.format or ("json" if args.json else "text")
    renderers = {"text": render_text, "json": render_json,
                 "sarif": render_sarif}
    print(renderers[fmt](result))
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _run_command,
        "batch": _batch_command,
        "serve": _serve_command,
        "submit": _submit_command,
        "status": _status_command,
        "result": _result_command,
        "cache": _cache_command,
        "bench": _bench_command,
        "figures": _figures_command,
        "tables": _tables_command,
        "datasets": _datasets_command,
        "lint": _lint_command,
    }
    try:
        _setup_logging(args)
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
