"""Exception hierarchy shared across the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge list or matrix payload is malformed (bad shape, dtype,
    out-of-range vertex id, negative weight where disallowed...)."""


class PartitionError(ReproError):
    """A block/subgraph partitioning request is inconsistent with the
    graph or the accelerator geometry."""


class ConfigError(ReproError):
    """An accelerator or platform configuration is invalid."""


class MappingError(ReproError):
    """A graph algorithm cannot be mapped onto the requested execution
    pattern (e.g. a non-SpMV vertex program on a MAC mapper)."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration
    budget."""


class DeviceError(ReproError):
    """A ReRAM device-level operation is invalid (value out of the cell's
    programmable range, crossbar shape mismatch...)."""


class DatasetError(ReproError):
    """A named dataset is unknown or its generation parameters are
    invalid."""


class JobError(ReproError):
    """A batch job is malformed, or its execution failed inside a
    worker (the original traceback is carried in the message)."""


class CacheError(ReproError):
    """A result-cache operation received invalid arguments or found an
    inconsistent on-disk state."""


class ResidencyError(ReproError):
    """A shared-memory residency operation is invalid (bad budget,
    malformed segment name...)."""


class RequestError(ReproError):
    """An HTTP request to the batch service is malformed; the service
    layer maps this (like every ReproError) to a 400 response."""


class LintError(ReproError):
    """``repro lint`` itself was misused: unknown rule IDs, paths
    outside a package, or a policy naming modules that do not exist."""
