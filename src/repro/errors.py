"""Exception hierarchy shared across the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge list or matrix payload is malformed (bad shape, dtype,
    out-of-range vertex id, negative weight where disallowed...)."""


class PartitionError(ReproError):
    """A block/subgraph partitioning request is inconsistent with the
    graph or the accelerator geometry."""


class ConfigError(ReproError):
    """An accelerator or platform configuration is invalid."""


class MappingError(ReproError):
    """A graph algorithm cannot be mapped onto the requested execution
    pattern (e.g. a non-SpMV vertex program on a MAC mapper)."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration
    budget."""


class DeviceError(ReproError):
    """A ReRAM device-level operation is invalid (value out of the cell's
    programmable range, crossbar shape mismatch...)."""


class DatasetError(ReproError):
    """A named dataset is unknown or its generation parameters are
    invalid."""


class JobError(ReproError):
    """A batch job is malformed, or its execution failed inside a
    worker (the original traceback is carried in the message)."""
