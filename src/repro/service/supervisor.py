"""Warm worker pool draining the service's priority queue.

One supervisor thread per worker slot, each owning one long-lived
child process on the scheduler's :func:`~repro.runtime.scheduler.
worker_loop` — workers stay warm across jobs (imports paid once, the
dataset cache stays hot), which is the point of running a daemon
instead of `repro batch`.

Each slot loops: pop the highest-priority job id, *claim* it in the
store (the atomic queued→running compare-and-swap — a cancelled or
duplicate entry simply fails the claim and is skipped), execute it on
the slot's worker, and record the outcome:

* ``{"ok": True}`` — stats go to the result cache, the row goes
  ``done``;
* ``{"ok": False}`` — a deterministic :class:`~repro.errors.JobError`
  inside the job; it would fail identically on retry, so the row goes
  ``failed`` immediately;
* worker crash (pipe broke / child exited) — the worker is respawned
  and the job retried up to ``max_crash_retries`` times;
* timeout — the worker is killed and the job marked ``failed``
  (a deterministic simulation that exceeded the budget once will
  exceed it again).

Shutdown is graceful: slots finish their in-flight job; with
``drain=True`` they first empty the queue.  Whatever stays ``queued``
in the store is re-enqueued by the next daemon's
:meth:`~repro.service.daemon.SimulationService.start`.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from typing import List, Optional, Set, Tuple

from repro.errors import JobError
from repro.hw.stats import RunStats
from repro.obs import logsetup, metrics
from repro.runtime.cache import ResultCache
from repro.runtime.residency import (ResidentSetManager, segment_for,
                                     residency_supported)
from repro.runtime.scheduler import (WorkerCrash, WorkerProcess,
                                     WorkerTimeout,
                                     _prepend_queue_wait)
from repro.service.store import JobRecord, JobStore

__all__ = ["WorkerSupervisor"]

log = logsetup.get_logger(__name__)


class WorkerSupervisor:
    """Keeps ``workers`` warm processes executing queued jobs.

    Parameters
    ----------
    store:
        The durable job store (claims, attempts, terminal states).
    cache:
        Result cache finished stats are written to; ``None`` disables
        result persistence (tests only — the service always passes
        one).
    workers:
        Worker-slot count.  ``0`` is allowed: the service then only
        queues (useful for tests and for a dedicated front-end
        process).
    cache_dir:
        Forwarded to the workers for artifact reuse (prepared
        out-of-core shards).
    job_timeout_s:
        Per-job wall-clock budget; ``None`` means unbounded.
    max_crash_retries:
        Crash retry budget per job (deterministic failures are never
        retried).
    resident_bytes:
        Byte budget for the shared-memory resident set (``0`` /
        ``None`` = unbounded).  The supervisor owns the
        :class:`~repro.runtime.residency.ResidentSetManager`: it pins
        a job's expected segment before dispatch, adopts what workers
        report, evicts LRU segments over the budget and sweeps
        orphans after crashes.
    residency:
        Share prepared datasets between workers via shared memory
        (``None`` auto-enables on Linux).  Results are bit-identical
        either way.
    """

    def __init__(self, store: JobStore,
                 cache: Optional[ResultCache] = None,
                 workers: int = 2,
                 cache_dir: Optional[str] = None,
                 job_timeout_s: Optional[float] = None,
                 max_crash_retries: int = 2,
                 resident_bytes: Optional[int] = None,
                 residency: Optional[bool] = None) -> None:
        if workers < 0:
            raise JobError("workers must be >= 0")
        if max_crash_retries < 0:
            raise JobError("max_crash_retries must be >= 0")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise JobError("job_timeout_s must be positive or None")
        self.store = store
        self.cache = cache
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.job_timeout_s = job_timeout_s
        self.max_crash_retries = max_crash_retries
        if residency is None:
            residency = True
        self.residency = bool(residency) and residency_supported()
        self.resident = ResidentSetManager(
            max_bytes=int(resident_bytes or 0))
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = itertools.count()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._busy: Set[int] = set()
        self._counter_lock = threading.Lock()
        self.completed = 0
        self.failed = 0
        #: Monotonic timestamps of recent worker crashes/timeouts —
        #: the health endpoint's ``degraded`` signal.
        self._recent_crashes: "deque[float]" = deque(maxlen=64)
        #: Crashes within this window flip :meth:`degraded`.
        self.degraded_window_s = 300.0
        #: How many windowed crashes count as "climbing".
        self.degraded_crash_threshold = 3

    # ------------------------------------------------------------------
    def enqueue(self, record: JobRecord) -> None:
        """Offer one queued job to the slots (higher priority first,
        FIFO within a priority)."""
        self._queue.put((-record.priority, next(self._seq), record.id))

    def start(self) -> None:
        """Spawn the slot threads (idempotent while running)."""
        if self._threads:
            return
        self._stop.clear()
        self._drain.clear()
        for slot in range(self.workers):
            thread = threading.Thread(target=self._slot_loop,
                                      args=(slot,),
                                      name=f"repro-worker-{slot}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, drain: bool = False,
             timeout: Optional[float] = None) -> bool:
        """Stop the pool, finishing each slot's in-flight job.

        ``drain=True`` first empties the queue; otherwise queued jobs
        stay ``queued`` in the store for the next daemon.  Returns
        ``True`` when every slot thread actually exited; with a
        ``timeout`` a slot mid-job may outlive the call — it is kept
        in the roster (so a later ``start()`` cannot double-spawn) and
        the caller must not tear down shared state under it.
        """
        if drain:
            self._drain.set()
        else:
            self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._stop.set()
        self._threads = [thread for thread in self._threads
                         if thread.is_alive()]
        return not self._threads

    # ------------------------------------------------------------------
    @property
    def busy_workers(self) -> int:
        """Slots currently executing a job."""
        with self._counter_lock:
            return len(self._busy)

    @property
    def queue_backlog(self) -> int:
        """Entries sitting in the in-memory priority queue."""
        return self._queue.qsize()

    def utilisation(self) -> float:
        """Busy slots over total slots (0.0 with no workers)."""
        return self.busy_workers / self.workers if self.workers else 0.0

    def _note_crash(self) -> None:
        with self._counter_lock:
            self._recent_crashes.append(time.monotonic())

    def recent_crashes(self) -> int:
        """Worker crashes/timeouts inside the degraded window."""
        cutoff = time.monotonic() - self.degraded_window_s
        with self._counter_lock:
            return sum(1 for when in self._recent_crashes
                       if when >= cutoff)

    def degraded(self) -> bool:
        """Whether crash retries are climbing: at least
        ``degraded_crash_threshold`` worker crashes or timeouts within
        ``degraded_window_s`` — the health endpoint's early-warning
        flag, cleared automatically once the window slides past."""
        return self.recent_crashes() >= self.degraded_crash_threshold

    # ------------------------------------------------------------------
    def _slot_loop(self, slot: int) -> None:
        worker: Optional[WorkerProcess] = None
        try:
            while not self._stop.is_set():
                try:
                    _, _, job_id = self._queue.get(timeout=0.1)
                except queue.Empty:
                    if self._drain.is_set():
                        break
                    continue
                if not self.store.claim(job_id):
                    continue  # cancelled, done, or a duplicate entry
                record = self.store.get(job_id)
                with self._counter_lock:
                    self._busy.add(slot)
                try:
                    worker = self._run_job(worker, record)
                finally:
                    with self._counter_lock:
                        self._busy.discard(slot)
        finally:
            if worker is not None:
                worker.stop()

    def _spawn(self) -> WorkerProcess:
        return WorkerProcess(cache_dir=self.cache_dir,
                             residency=self.residency)

    def _run_job(self, worker: Optional[WorkerProcess],
                 record: JobRecord) -> Optional[WorkerProcess]:
        """Execute one claimed job; returns the slot's (possibly
        respawned) warm worker for the next job."""
        job = record.job()
        registry = metrics.get_registry()
        logsetup.set_correlation_id(job.content_key()[:12])
        limit = 1 + self.max_crash_retries
        # The job's dataset segment is derivable before it runs; pin
        # it so budget eviction never races an in-flight attach.
        segment = segment_for(job.dataset, job.resolved_weighted,
                              job.dataset_seed) if self.residency \
            else None
        if segment is not None:
            self.resident.pin(segment)
        try:
            while True:
                attempts = self.store.bump_attempts(record.id)
                if worker is None or not worker.alive():
                    worker = self._spawn()
                try:
                    worker.submit(record.id, record.spec)
                    _, outcome = worker.recv(
                        timeout=self.job_timeout_s)
                except WorkerTimeout:
                    worker.stop(kill=True)
                    self._note_crash()
                    if self.residency:
                        self.resident.sweep_orphans()
                    registry.counter(
                        "repro_worker_timeouts_total",
                        "Jobs killed for exceeding job_timeout_s").inc()
                    log.warning("job %s timed out after %.1fs",
                                record.id, self.job_timeout_s)
                    self._finish(record, job, ok=False,
                                 error=(f"job timed out after "
                                        f"{self.job_timeout_s:.1f}s "
                                        f"(attempt {attempts})"))
                    return None
                except WorkerCrash as exc:
                    worker.stop(kill=True)
                    worker = None
                    self._note_crash()
                    if self.residency:
                        # A builder that died mid-publish leaves a
                        # not-ready segment and a stale claim lock;
                        # one that died between publish and report
                        # leaves an untracked ready segment.  Both
                        # are reconciled here.
                        self.resident.sweep_orphans()
                    registry.counter(
                        "repro_worker_crashes_total",
                        "Worker processes that died mid-job").inc()
                    log.warning("worker crashed on job %s "
                                "(attempt %d/%d): %s",
                                record.id, attempts, limit, exc)
                    if attempts < limit:
                        registry.counter(
                            "repro_job_retries_total",
                            "Extra execution attempts after worker "
                            "crashes").inc()
                        continue
                    self._finish(record, job, ok=False,
                                 error=(f"worker crashed after "
                                        f"{attempts} attempt(s): {exc}"))
                    return None
                delta = outcome.get("metrics")
                if delta is not None:
                    registry.merge(delta)
                if self.residency:
                    self.resident.observe(outcome.get("resident"))
                if outcome.get("ok"):
                    stats_dict = outcome["stats"]
                    self._inject_queue_wait(record, registry,
                                            stats_dict)
                    if self.cache is not None:
                        self.cache.put(job,
                                       RunStats.from_dict(stats_dict))
                    self._finish(record, job, ok=True)
                    log.info("job %s done", record.id)
                else:
                    self._finish(record, job, ok=False,
                                 error=outcome.get(
                                     "error", "unknown worker error"))
                    log.info("job %s failed", record.id)
                return worker
        finally:
            if segment is not None:
                self.resident.unpin(segment)
            logsetup.set_correlation_id(None)

    @staticmethod
    def _inject_queue_wait(record: JobRecord, registry,
                           stats_dict) -> None:
        """Prepend the store-measured queue wait to the job's trace.

        The worker cannot know how long its payload sat queued; the
        store's ``submitted_at``/``started_at`` timestamps do.  The
        span is injected into the serialized trace *before* caching so
        the persisted trace carries the full submit→done story.
        """
        if record.started_at is None:
            return
        wait = max(0.0, record.started_at - record.submitted_at)
        registry.histogram(
            "repro_scheduler_queue_wait_seconds",
            "Time jobs waited before execution began").observe(wait)
        _prepend_queue_wait(stats_dict, wait)

    def _finish(self, record: JobRecord, job, ok: bool,
                error: Optional[str] = None) -> None:
        self.store.finish(record.id, ok=ok, error=error)
        with self._counter_lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1

    def totals(self) -> Tuple[int, int]:
        """``(completed, failed)`` read atomically under the counter
        lock — the pair stays consistent for health/metrics readers."""
        with self._counter_lock:
            return self.completed, self.failed
