"""The persistent simulation service tying store, cache and workers.

:class:`SimulationService` is the daemon's core, independent of any
transport: the HTTP layer (:mod:`repro.service.http`) and tests drive
exactly the same object.  It owns

* a :class:`~repro.service.store.JobStore` (durable state, dedup,
  restart recovery),
* a :class:`~repro.runtime.cache.ResultCache` (finished stats by
  content key — shared with ``repro batch``, so a batch-warmed cache
  serves the service and vice versa),
* a :class:`~repro.service.supervisor.WorkerSupervisor` (warm worker
  processes draining the priority queue).

Submission semantics: the content key decides everything.  A key whose
stats already sit in the result cache is recorded ``done`` and served
immediately (no execution); a key already ``queued``/``running``/
``done`` dedupes to the existing job; only genuinely new work (or a
revived ``failed``/``cancelled`` job, or a ``done`` job whose cached
result was pruned) is enqueued.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import JobError
from repro.obs import logsetup, metrics
from repro.runtime.cache import ResultCache
from repro.runtime.job import Job
from repro.service.store import JobRecord, JobStore
from repro.service.supervisor import WorkerSupervisor

__all__ = ["SimulationService"]

log = logsetup.get_logger(__name__)


class SimulationService:
    """Long-running simulation back end with durable queueing.

    Parameters
    ----------
    db_path:
        SQLite job-store file (created with parents as needed).
    cache_dir:
        Result-cache directory; defaults to ``<db dir>/cache``.
    workers:
        Warm worker-process count (``0`` queues without executing).
    job_timeout_s / max_crash_retries:
        Forwarded to the :class:`WorkerSupervisor`.
    resident_bytes:
        Byte budget for the shared-memory resident dataset pool
        (``0`` / ``None`` = unbounded); forwarded to the supervisor's
        resident-set manager.
    """

    def __init__(self, db_path: Union[str, Path],
                 cache_dir: Optional[Union[str, Path]] = None,
                 workers: int = 2,
                 job_timeout_s: Optional[float] = None,
                 max_crash_retries: int = 2,
                 resident_bytes: Optional[int] = None) -> None:
        self.db_path = Path(db_path)
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        cache_dir = Path(cache_dir) if cache_dir is not None \
            else self.db_path.parent / "cache"
        self.cache = ResultCache(cache_dir)
        self.store = JobStore(self.db_path)
        self.supervisor = WorkerSupervisor(
            self.store, self.cache, workers=workers,
            cache_dir=str(cache_dir), job_timeout_s=job_timeout_s,
            max_crash_retries=max_crash_retries,
            resident_bytes=resident_bytes)
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._submissions = 0
        self._cache_served = 0
        #: How long one cache-inventory walk stays fresh for metrics
        #: polls.  Each walk stats every artifact on disk; a scraper
        #: polling at 1 Hz must not turn that into a per-second
        #: directory crawl.  Submissions and prunes happen at a far
        #: coarser grain than the TTL, so a ≤2 s-stale byte total is
        #: an honest answer for a monitoring endpoint.
        self.inventory_ttl_s = 2.0
        self._inventory_memo: Optional[Dict[str, object]] = None
        self._inventory_at = 0.0

    # ------------------------------------------------------------------
    def start(self) -> List[JobRecord]:
        """Recover the queue from the store and start the workers.

        Jobs the previous daemon left ``running`` are requeued (and
        returned, for logging); every ``queued`` row is re-offered to
        the priority queue.  Durable state drives the in-memory queue,
        never the other way round — that is the restart guarantee.
        """
        requeued = self.store.recover()
        for record in self.store.queued_records():
            self.supervisor.enqueue(record)
        self.supervisor.start()
        self._started_at = time.time()
        return requeued

    def stop(self, drain: bool = False,
             timeout: Optional[float] = None) -> None:
        """Stop the workers (finishing in-flight jobs; ``drain=True``
        empties the queue first) and close the store.

        If a ``timeout`` left a slot thread mid-job the store stays
        open — closing it under a live worker would drop its result;
        the daemon-thread slot dies with the process instead.  A clean
        stop also unlinks the resident shared-memory segments: the
        daemon leaves ``/dev/shm`` as it found it.
        """
        clean = self.supervisor.stop(drain=drain, timeout=timeout)
        if clean:
            self.store.close()
            self.supervisor.resident.shutdown()

    # ------------------------------------------------------------------
    def submit(self, entries: Union[Mapping, Sequence],
               defaults: Optional[Mapping] = None,
               priority: int = 0) -> List[Dict[str, object]]:
        """Submit one entry or a batch; one submission dict per entry.

        Each entry is a job-file dictionary (``defaults`` merged
        underneath, exactly like :func:`~repro.runtime.job.
        load_jobfile`) or a ready :class:`Job`.  Invalid entries raise
        :class:`JobError` before anything is recorded — a batch is
        accepted or rejected atomically.
        """
        if isinstance(entries, Mapping):
            entries = [entries]
        entries = list(entries)
        if not entries:
            raise JobError("no jobs submitted")
        jobs = [entry if isinstance(entry, Job)
                else Job.from_dict(entry, defaults)
                for entry in entries]
        out = []
        for job in jobs:
            with self._lock:
                self._submissions += 1
            served_from_cache = self.cache.get(job) is not None
            if served_from_cache:
                record, _ = self.store.submit(job, priority=priority,
                                              from_cache=True)
                with self._lock:
                    self._cache_served += 1
                created = False
            else:
                record, created = self.store.submit(job,
                                                    priority=priority)
                if not created and record.state == "done":
                    # The row is done but its result left the cache
                    # (pruned): the only way to honour the submission
                    # is to recompute.
                    if self.store.requeue(record.id):
                        record = self.store.get(record.id)
                        created = True
                if created and record.state == "queued":
                    self.supervisor.enqueue(record)
            out.append({
                "id": record.id,
                "key": record.content_key,
                "state": record.state,
                "from_cache": served_from_cache or record.from_cache,
                "created": created,
            })
        return out

    # ------------------------------------------------------------------
    def job_detail(self, job_id: str) -> Optional[Dict[str, object]]:
        """Full job row, plus its stats when ``done`` (``None`` for an
        unknown id).  ``stats`` is ``null`` if the cached result was
        pruned after completion — resubmitting the job recomputes it.
        """
        record = self.store.get(job_id)
        if record is None:
            return None
        payload = record.to_dict()
        if record.state == "done":
            # peek, not get: status polling must not skew the
            # hit-rate, which measures dedup.
            stats = self.cache.peek(record.job())
            payload["stats"] = stats.to_dict() if stats is not None \
                else None
        return payload

    def list_jobs(self, state: Optional[str] = None,
                  limit: Optional[int] = None
                  ) -> List[Dict[str, object]]:
        """Job rows (without stats), newest first."""
        return [record.to_dict()
                for record in self.store.list(state=state, limit=limit)]

    def cancel(self, job_id: str) -> Optional[bool]:
        """Cancel a queued job (see :meth:`JobStore.cancel`)."""
        return self.store.cancel(job_id)

    # ------------------------------------------------------------------
    def _cache_inventory(self) -> Dict[str, object]:
        """Counts and byte totals of the cache directory, memoised
        behind :attr:`inventory_ttl_s` so repeated metrics polls do not
        re-walk (and re-stat) every artifact on disk."""
        now = time.monotonic()
        with self._lock:
            memo = self._inventory_memo
            if memo is not None \
                    and now - self._inventory_at < self.inventory_ttl_s:
                return memo
        inventory = self.cache.entries()  # one walk for both numbers
        shards = self.cache.shard_entries()
        result_bytes = sum(entry.bytes for entry in inventory)
        shard_bytes = sum(entry.bytes for entry in shards)
        memo = {
            "entries": len(inventory),
            "result_bytes": result_bytes,
            "shard_count": len(shards),
            "shard_bytes": shard_bytes,
            "total_bytes": result_bytes + shard_bytes,
        }
        with self._lock:
            self._inventory_memo = memo
            self._inventory_at = now
        return memo

    def health(self) -> Dict[str, object]:
        """Liveness plus load: queue depth, busy/total workers and the
        supervisor's ``degraded`` flag (crash retries climbing)."""
        counts = self.store.counts()
        return {
            "status": ("degraded" if self.supervisor.degraded()
                       else "ok"),
            "degraded": self.supervisor.degraded(),
            "queue_depth": counts["queued"],
            "running": counts["running"],
            "workers": {
                "total": self.supervisor.workers,
                "busy": self.supervisor.busy_workers,
            },
            "recent_crashes": self.supervisor.recent_crashes(),
            "uptime_s": (time.time() - self._started_at
                         if self._started_at else 0.0),
        }

    def metrics(self) -> Dict[str, object]:
        """Live service metrics for ``GET /v1/metrics``."""
        counts = self.store.counts()
        now = time.time()
        with self._lock:
            submissions = self._submissions
            cache_served = self._cache_served
        done_last_minute = self.store.done_since(now - 60.0)
        inventory_memo = self._cache_inventory()
        completed, failed = self.supervisor.totals()
        return {
            "uptime_s": (now - self._started_at
                         if self._started_at else 0.0),
            "queue_depth": counts["queued"],
            "running": counts["running"],
            "counts": counts,
            "workers": {
                "total": self.supervisor.workers,
                "busy": self.supervisor.busy_workers,
                "utilisation": self.supervisor.utilisation(),
            },
            "jobs": {
                "submitted": submissions,
                "served_from_cache": cache_served,
                "completed": completed,
                "failed": failed,
                "done_last_minute": done_last_minute,
                "per_sec_1m": done_last_minute / 60.0,
            },
            # The memo's key order matches the old inline dict exactly,
            # keeping the JSON payload byte-compatible (resident
            # gauges appended).
            "cache": dict(self.cache.stats.as_dict(),
                          **inventory_memo,
                          **self.supervisor.resident.as_dict()),
        }

    def __repr__(self) -> str:
        return (f"SimulationService(db={str(self.db_path)!r}, "
                f"workers={self.supervisor.workers}, "
                f"jobs={len(self.store)})")
