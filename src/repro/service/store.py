"""Durable job store for the persistent simulation service.

One SQLite database (stdlib :mod:`sqlite3`, WAL journaling) records
every submitted job: its canonical spec, content key, state machine
(``queued → running → done|failed``, plus ``cancelled`` for queued
jobs), priority, timestamps, attempt count and error text.  The store
is the service's source of truth — the in-memory priority queue is
rebuilt from it on every daemon start, and jobs found ``running`` at
startup (the previous daemon died mid-execution) are requeued, so a
restart loses nothing.

Dedup lives here too: ``content_key`` is UNIQUE, so two clients
submitting the same canonical job — concurrently or days apart — share
one row and one execution.  Results are *not* stored in SQLite; a
``done`` row references its stats through the content key, which is
exactly the :class:`~repro.runtime.cache.ResultCache` file name.

All methods are thread-safe (one connection, one lock): the HTTP
handler threads and the worker-slot threads hit the same store.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import JobError
from repro.runtime.job import Job

__all__ = ["JobStore", "JobRecord", "JOB_STATES"]

#: The job state machine's vocabulary.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    content_key  TEXT NOT NULL UNIQUE,
    spec         TEXT NOT NULL,
    state        TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    attempts     INTEGER NOT NULL DEFAULT 0,
    error        TEXT,
    from_cache   INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
"""

_COLUMNS = ("id", "content_key", "spec", "state", "priority",
            "attempts", "error", "from_cache", "submitted_at",
            "started_at", "finished_at")


@dataclass(frozen=True)
class JobRecord:
    """One job row, decoded."""

    id: str
    content_key: str
    spec: Dict[str, object]
    state: str
    priority: int
    attempts: int
    error: Optional[str]
    from_cache: bool
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]

    def job(self) -> Job:
        """Reconstruct the canonical :class:`Job` from the stored
        spec."""
        return Job.from_dict(self.spec)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe row (the HTTP API's job representation)."""
        return {
            "id": self.id,
            "key": self.content_key,
            "spec": dict(self.spec),
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "error": self.error,
            "from_cache": self.from_cache,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def job_id_for_key(content_key: str) -> str:
    """Deterministic short id of a content key (dedup-friendly: the
    same canonical job always maps to the same id)."""
    return f"j{content_key[:16]}"


class JobStore:
    """SQLite-backed job table shared by the HTTP front end and the
    worker supervisor."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path),
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            content_key=row["content_key"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            priority=row["priority"],
            attempts=row["attempts"],
            error=row["error"],
            from_cache=bool(row["from_cache"]),
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
        )

    def _fetch(self, where: str, params: Tuple) -> Optional[JobRecord]:
        row = self._conn.execute(
            f"SELECT * FROM jobs WHERE {where}", params).fetchone()
        return self._record(row) if row is not None else None

    # ------------------------------------------------------------------
    def submit(self, job: Job, priority: int = 0,
               from_cache: bool = False) -> Tuple[JobRecord, bool]:
        """Record one submission; returns ``(record, created)``.

        ``created`` is ``True`` when this call put the job on the
        queue (a brand-new row, or a ``failed``/``cancelled`` row
        revived, or a queued row escalated to a higher priority) — the
        caller must enqueue exactly the submissions it created, which
        is what makes two racing clients share one execution.
        ``queued``/``running``/``done`` rows otherwise dedupe: the
        existing record comes back untouched.  With ``from_cache=True``
        the job is recorded as already ``done`` (the result was served
        straight from the result cache) and never queued.
        """
        key = job.content_key()
        job_id = job_id_for_key(key)
        now = time.time()
        state = "done" if from_cache else "queued"
        finished = now if from_cache else None
        with self._lock, self._conn:
            existing = self._fetch("content_key = ?", (key,))
            if existing is None:
                try:
                    self._conn.execute(
                        "INSERT INTO jobs (id, content_key, spec, "
                        "state, priority, attempts, from_cache, "
                        "submitted_at, finished_at) "
                        "VALUES (?, ?, ?, ?, ?, 0, ?, ?, ?)",
                        (job_id, key,
                         json.dumps(job.to_dict(), sort_keys=True),
                         state, int(priority), int(from_cache), now,
                         finished))
                except sqlite3.IntegrityError:
                    # Raced with another submitter between fetch and
                    # insert; their row wins.
                    existing = self._fetch("content_key = ?", (key,))
                else:
                    return self._fetch("id = ?", (job_id,)), \
                        not from_cache
            if existing.state == "queued" and not from_cache \
                    and int(priority) > existing.priority:
                # An urgent resubmission of a queued job escalates it:
                # the row keeps its identity but jumps the queue
                # (created=True so the caller re-enqueues; the stale
                # low-priority queue entry loses the claim race).
                self._conn.execute(
                    "UPDATE jobs SET priority = ? "
                    "WHERE id = ? AND state = 'queued'",
                    (int(priority), existing.id))
                return self._fetch("id = ?", (existing.id,)), True
            if existing.state in ("queued", "running", "done"):
                return existing, False
            # failed/cancelled: revive the row under the new submission.
            self._conn.execute(
                "UPDATE jobs SET state = ?, priority = ?, attempts = 0,"
                " error = NULL, from_cache = ?, submitted_at = ?, "
                "started_at = NULL, finished_at = ? WHERE id = ?",
                (state, int(priority), int(from_cache), now, finished,
                 existing.id))
            return self._fetch("id = ?", (existing.id,)), not from_cache

    def requeue(self, job_id: str) -> bool:
        """Put a terminal job back on the queue (e.g. its cached result
        was pruned); ``True`` if the row changed."""
        with self._lock, self._conn:
            cur = self._conn.execute(
                "UPDATE jobs SET state = 'queued', attempts = 0, "
                "error = NULL, from_cache = 0, submitted_at = ?, "
                "started_at = NULL, finished_at = NULL "
                "WHERE id = ? AND state IN ('done', 'failed', "
                "'cancelled')",
                (time.time(), job_id))
            return cur.rowcount == 1

    def claim(self, job_id: str) -> bool:
        """Atomically move one queued job to ``running``.

        The compare-and-swap is what lets several worker slots (and a
        duplicate priority-queue entry) pop the same id safely: exactly
        one claim succeeds.
        """
        with self._lock, self._conn:
            cur = self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ? "
                "WHERE id = ? AND state = 'queued'",
                (time.time(), job_id))
            return cur.rowcount == 1

    def bump_attempts(self, job_id: str) -> int:
        """Count one execution attempt; returns the new total."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET attempts = attempts + 1 WHERE id = ?",
                (job_id,))
            row = self._conn.execute(
                "SELECT attempts FROM jobs WHERE id = ?",
                (job_id,)).fetchone()
            if row is None:
                raise JobError(f"unknown job {job_id!r}")
            return row["attempts"]

    def finish(self, job_id: str, ok: bool,
               error: Optional[str] = None) -> bool:
        """Terminal transition of a running job; ``True`` on success."""
        with self._lock, self._conn:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, error = ?, finished_at = ? "
                "WHERE id = ? AND state = 'running'",
                ("done" if ok else "failed", error, time.time(),
                 job_id))
            return cur.rowcount == 1

    def cancel(self, job_id: str) -> Optional[bool]:
        """Cancel a queued job.

        ``None`` for an unknown id, ``False`` when the job exists but
        already left the queue, ``True`` when it was cancelled.
        """
        with self._lock, self._conn:
            if self._fetch("id = ?", (job_id,)) is None:
                return None
            cur = self._conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ? "
                "WHERE id = ? AND state = 'queued'",
                (time.time(), job_id))
            return cur.rowcount == 1

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        """One job by id."""
        with self._lock:
            return self._fetch("id = ?", (job_id,))

    def get_by_key(self, content_key: str) -> Optional[JobRecord]:
        """One job by content key."""
        with self._lock:
            return self._fetch("content_key = ?", (content_key,))

    def list(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[JobRecord]:
        """Jobs, newest submission first, optionally one state only."""
        if state is not None and state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}; available: "
                           f"{', '.join(JOB_STATES)}")
        sql = "SELECT * FROM jobs"
        params: Tuple = ()
        if state is not None:
            sql += " WHERE state = ?"
            params = (state,)
        sql += " ORDER BY submitted_at DESC, id"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._record(row) for row in rows]

    def queued_records(self) -> List[JobRecord]:
        """Queued jobs in dispatch order (priority, then submission)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued' "
                "ORDER BY priority DESC, submitted_at ASC, id"
            ).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Row count per state (states with no jobs report 0)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in JOB_STATES}
        out.update({row["state"]: row["n"] for row in rows})
        return out

    def done_since(self, since: float) -> int:
        """How many jobs finished successfully after ``since``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state = 'done' "
                "AND finished_at >= ?", (since,)).fetchone()
        return row["n"]

    # ------------------------------------------------------------------
    def recover(self) -> List[JobRecord]:
        """Requeue every job the previous daemon left ``running``.

        Call once at daemon startup, before workers start: jobs that
        were mid-execution when the process died go back to the queue
        (their attempt counts survive, so a crash-looping job still
        exhausts its retry budget across restarts).
        """
        with self._lock, self._conn:
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'running'"
            ).fetchall()
            ids = [row["id"] for row in rows]
            if ids:
                self._conn.execute(
                    "UPDATE jobs SET state = 'queued', "
                    "started_at = NULL WHERE state = 'running'")
        return [self.get(job_id) for job_id in ids]

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs").fetchone()
        return row["n"]

    def __repr__(self) -> str:
        return f"JobStore({str(self.path)!r}, jobs={len(self)})"
