"""Persistent simulation service: queue daemon, HTTP API, client.

The pieces, bottom to top:

* :class:`~repro.service.store.JobStore` — durable SQLite job table
  (states, priorities, timestamps, attempt counts) with content-key
  dedup and restart recovery.
* :class:`~repro.service.supervisor.WorkerSupervisor` — warm worker
  processes (on the scheduler's shared ``worker_loop``) draining a
  priority queue, with per-job timeout and bounded crash retries.
* :class:`~repro.service.daemon.SimulationService` — the daemon core:
  store + result cache + supervisor, transport-independent.
* :mod:`~repro.service.http` — stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /v1/jobs``, ``GET /v1/jobs/<id>``, ``GET /v1/metrics`` ...).
* :class:`~repro.service.client.ServiceClient` — ``urllib`` client and
  BatchRunner-compatible backend for sweeps and the harness.

``repro serve`` starts the daemon; ``repro submit`` / ``status`` /
``result`` talk to it.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import SimulationService
from repro.service.http import ServiceHTTPServer, serve_in_thread
from repro.service.store import JOB_STATES, JobRecord, JobStore
from repro.service.supervisor import WorkerSupervisor

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "ServiceClient",
    "ServiceHTTPServer",
    "SimulationService",
    "WorkerSupervisor",
    "serve_in_thread",
]
