"""Stdlib HTTP front end for the simulation service.

A thin JSON transport over :class:`~repro.service.daemon.
SimulationService` — no framework, just ``http.server``:

========  ======================  =====================================
Method    Path                    Meaning
========  ======================  =====================================
POST      ``/v1/jobs``            Submit one job entry, a bare list, or
                                  ``{"jobs": [...], "defaults": {...},
                                  "priority": N}`` (a job file's shape).
                                  Returns one submission per entry;
                                  identical content keys dedupe and
                                  cache-served submissions come back
                                  already ``done``.
GET       ``/v1/jobs/<id>``       Job status + stats when done.
GET       ``/v1/jobs?state=...``  Listing (optionally one state).
DELETE    ``/v1/jobs/<id>``       Cancel a *queued* job (409 once it
                                  left the queue).
GET       ``/v1/metrics``         Queue depth, worker utilisation,
                                  cache hit-rate, jobs/sec.  With
                                  ``?format=prometheus``: the telemetry
                                  registry in text exposition format
                                  for standard scrapers.
GET       ``/v1/health``          Liveness probe plus queue depth,
                                  busy/total workers and a ``degraded``
                                  flag when crash retries are climbing.
========  ======================  =====================================

Errors are JSON too: ``{"error": ...}`` with 400 for malformed
requests (:class:`~repro.errors.JobError`), 404/409 for state
conflicts, 500 for genuine bugs.  The server is a
``ThreadingHTTPServer``: each request runs on its own thread against
the thread-safe service, which is what makes concurrent submissions
race safely onto one execution.
"""

from __future__ import annotations

import json
import multiprocessing.util
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, RequestError
from repro.obs import metrics as obs_metrics
from repro.service.daemon import SimulationService

__all__ = ["ServiceHTTPServer", "ServiceHandler", "serve_in_thread"]


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` requests onto the owning server's service."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send(self, code: int, payload: object) -> None:
        body = json.dumps(payload, indent=2).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str,
                   content_type: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body")
        return json.loads(raw.decode())

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")

    def _route(self, method: str) -> None:
        service: SimulationService = self.server.service
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        started = time.perf_counter()
        try:
            return self._dispatch(method, service, parsed, parts)
        finally:
            endpoint = parts[1] if len(parts) > 1 else "other"
            if endpoint in ("health", "metrics", "jobs"):
                obs_metrics.get_registry().histogram(
                    f"repro_http_{endpoint}_request_seconds",
                    f"Request latency of the /v1/{endpoint} endpoint"
                ).observe(time.perf_counter() - started)

    def _dispatch(self, method: str, service: SimulationService,
                  parsed, parts) -> None:
        try:
            if method == "GET" and parts == ["v1", "health"]:
                # "ok" stays first for pre-existing liveness probes;
                # the load/degradation detail rides along.
                return self._send(200, dict({"ok": True},
                                            **service.health()))
            if method == "GET" and parts == ["v1", "metrics"]:
                query = parse_qs(parsed.query)
                wanted = query.get("format", ["json"])[0]
                if wanted == "prometheus":
                    return self._send_text(
                        200,
                        obs_metrics.get_registry().to_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8")
                if wanted != "json":
                    return self._send(400, {
                        "error": f"unknown metrics format {wanted!r}"})
                return self._send(200, service.metrics())
            if parts[:2] == ["v1", "jobs"]:
                if len(parts) == 2:
                    if method == "POST":
                        return self._submit(service)
                    if method == "GET":
                        query = parse_qs(parsed.query)
                        state = query.get("state", [None])[0]
                        limit = query.get("limit", [None])[0]
                        return self._send(200, {
                            "jobs": service.list_jobs(
                                state=state,
                                limit=(int(limit) if limit else None)),
                        })
                elif len(parts) == 3:
                    job_id = parts[2]
                    if method == "GET":
                        detail = service.job_detail(job_id)
                        if detail is None:
                            return self._send(404, {
                                "error": f"unknown job {job_id!r}"})
                        return self._send(200, detail)
                    if method == "DELETE":
                        cancelled = service.cancel(job_id)
                        if cancelled is None:
                            return self._send(404, {
                                "error": f"unknown job {job_id!r}"})
                        if not cancelled:
                            return self._send(409, {
                                "error": "only queued jobs can be "
                                         "cancelled"})
                        return self._send(200, {"id": job_id,
                                                "cancelled": True})
            return self._send(404, {
                "error": f"no route {method} {parsed.path}"})
        except ReproError as exc:
            return self._send(400, {"error": str(exc)})
        except (ValueError, TypeError, KeyError) as exc:
            return self._send(400, {"error": f"bad request: {exc}"})
        except Exception as exc:  # noqa: BLE001 - keep the daemon up
            return self._send(500, {"error": f"internal error: {exc}"})

    def _submit(self, service: SimulationService) -> None:
        body = self._read_json()
        defaults = None
        priority = 0
        if isinstance(body, list):
            entries = body
        elif isinstance(body, dict) and "jobs" in body:
            entries = body["jobs"]
            defaults = body.get("defaults")
            priority = int(body.get("priority", 0))
        elif isinstance(body, dict):
            entries = [body]
        else:
            raise RequestError("body must be a job entry, a list of "
                               "entries, or a {'jobs': [...]} object")
        submissions = service.submit(entries, defaults=defaults,
                                     priority=priority)
        self._send(202, {"submissions": submissions})


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: SimulationService,
                 verbose: bool = False) -> None:
        super().__init__(address, ServiceHandler)
        self.service = service
        self.verbose = verbose
        # Worker processes fork *after* the socket is bound and would
        # inherit the listening fd — an orphaned worker (daemon killed
        # with SIGKILL mid-job) would then hold the port and block the
        # restarted daemon's bind.  Close the inherited copy in every
        # forked child.
        multiprocessing.util.register_after_fork(
            self, ServiceHTTPServer._close_inherited_socket)

    @staticmethod
    def _close_inherited_socket(server: "ServiceHTTPServer") -> None:
        try:
            server.socket.close()
        except OSError:
            pass

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_in_thread(service: SimulationService,
                    host: str = "127.0.0.1", port: int = 0,
                    verbose: bool = False) -> ServiceHTTPServer:
    """Start the API on a background thread; returns the bound server.

    With ``port=0`` the OS picks a free port — read it back from
    ``server.url``.  Call ``server.shutdown()`` to stop serving (the
    service itself is stopped separately).
    """
    server = ServiceHTTPServer((host, port), service, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-http", daemon=True)
    thread.start()
    return server
