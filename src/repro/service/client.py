"""HTTP client for the simulation service.

:class:`ServiceClient` is both the CLI's transport (``repro submit`` /
``status`` / ``result``) and a drop-in *sweep backend*: it exposes the
same ``make_job`` / ``run_jobs`` / ``run`` surface as
:class:`~repro.runtime.runner.BatchRunner`, so the sweep utilities and
the experiment harness can execute their grids against a running
daemon instead of a private process pool:

>>> from repro.experiments.sweeps import geometry_sweep
>>> client = ServiceClient("http://127.0.0.1:8750")
>>> points = geometry_sweep("WV", runner=client)   # doctest: +SKIP

Everything speaks stdlib ``urllib`` — no extra dependencies — and all
transport or protocol failures surface as
:class:`~repro.errors.JobError`, the runtime's existing error
contract.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.errors import JobError
from repro.hw.stats import RunStats
from repro.runtime.job import Job
from repro.runtime.scheduler import JobResult

__all__ = ["ServiceClient", "TERMINAL_STATES"]

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceClient:
    """Talk to a ``repro serve`` daemon over its JSON API.

    Parameters
    ----------
    base_url:
        The daemon's root, e.g. ``"http://127.0.0.1:8750"``.
    timeout_s:
        Socket timeout per request.
    poll_interval_s:
        Sleep between polls while waiting on jobs.
    config:
        Default GraphR configuration :meth:`make_job` stamps on jobs
        without one (mirrors :class:`BatchRunner`).
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0,
                 poll_interval_s: float = 0.2,
                 config: Optional[GraphRConfig] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.poll_interval_s = poll_interval_s
        self.config = config or GraphRConfig(mode="analytic")

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[object] = None) -> Dict[str, object]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, method=method,
                                         headers=headers)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                body = response.read().decode()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error")
            except Exception:  # noqa: BLE001 - body is best-effort
                detail = None
            message = f"service {method} {path} failed: HTTP {exc.code}"
            if detail:
                message += f" ({detail})"
            raise JobError(message) from exc
        except urllib.error.URLError as exc:
            raise JobError(f"cannot reach service at {self.base_url}: "
                           f"{exc.reason}") from exc
        try:
            return json.loads(body) if body else {}
        except ValueError as exc:
            raise JobError(
                f"service returned non-JSON from {path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def health(self) -> bool:
        """Whether the daemon answers its liveness probe."""
        try:
            return bool(self._request("GET", "/v1/health").get("ok"))
        except JobError:
            return False

    def submit(self, jobs: Union[Job, Mapping, Sequence],
               defaults: Optional[Mapping] = None,
               priority: int = 0) -> List[Dict[str, object]]:
        """Submit one job (or entry dict) or a batch; returns the
        submission dicts (``id``, ``key``, ``state``,
        ``from_cache``)."""
        if isinstance(jobs, (Job, Mapping)):
            jobs = [jobs]
        entries = [job.to_dict() if isinstance(job, Job) else dict(job)
                   for job in jobs]
        payload: Dict[str, object] = {"jobs": entries}
        if defaults:
            payload["defaults"] = dict(defaults)
        if priority:
            payload["priority"] = int(priority)
        reply = self._request("POST", "/v1/jobs", payload)
        return list(reply.get("submissions", []))

    def job(self, job_id: str) -> Dict[str, object]:
        """Status (and stats, when done) of one job."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict[str, object]]:
        """List jobs, optionally one state only."""
        query = []
        if state is not None:
            query.append(f"state={state}")
        if limit is not None:
            query.append(f"limit={int(limit)}")
        path = "/v1/jobs" + (f"?{'&'.join(query)}" if query else "")
        return list(self._request("GET", path).get("jobs", []))

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job (:class:`JobError` once it left the
        queue)."""
        reply = self._request("DELETE", f"/v1/jobs/{job_id}")
        return bool(reply.get("cancelled"))

    def metrics(self) -> Dict[str, object]:
        """The daemon's live metrics."""
        return self._request("GET", "/v1/metrics")

    def wait_for(self, job_ids: Sequence[str],
                 timeout_s: Optional[float] = None
                 ) -> List[Dict[str, object]]:
        """Poll until every id is terminal; details in input order.

        Duplicate ids (deduped submissions) are polled once.  Raises
        :class:`JobError` when ``timeout_s`` elapses first.
        """
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        details: Dict[str, Dict[str, object]] = {}
        while True:
            for job_id in job_ids:
                if job_id in details:
                    continue
                detail = self.job(job_id)
                if detail.get("state") in TERMINAL_STATES:
                    details[job_id] = detail
            if len(details) == len(set(job_ids)):
                return [details[job_id] for job_id in job_ids]
            if deadline is not None and time.monotonic() >= deadline:
                waiting = sorted(set(job_ids) - set(details))
                raise JobError(
                    f"timed out after {timeout_s:.1f}s waiting for "
                    f"job(s): {', '.join(waiting)}")
            time.sleep(self.poll_interval_s)

    # ------------------------------------------------------------------
    # BatchRunner-compatible backend surface (sweeps / harness).
    def make_job(self, algorithm: str, dataset: str,
                 platform: str = "graphr",
                 config: Optional[GraphRConfig] = None,
                 deployment: Optional[DeploymentSpec] = None,
                 **run_kwargs) -> Job:
        """Build a job carrying this client's default configuration
        (mirrors :meth:`BatchRunner.make_job`)."""
        return Job(
            algorithm=algorithm,
            dataset=dataset,
            platform=platform,
            config=(config or self.config) if platform == "graphr"
            else None,
            deployment=deployment,
            run_kwargs=run_kwargs,
        )

    def run_jobs(self, jobs: Sequence[Job],
                 timeout_s: Optional[float] = None
                 ) -> List[JobResult]:
        """Submit a batch and block until it drains.

        The returned list matches ``jobs`` in length and order with
        either stats or a captured error per job — the
        :meth:`BatchRunner.run_jobs` contract, served remotely.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        submissions = self.submit(jobs)
        details = self.wait_for([sub["id"] for sub in submissions],
                                timeout_s=timeout_s)
        results = []
        for job, submission, detail in zip(jobs, submissions, details):
            attempts = int(detail.get("attempts") or 1)
            from_cache = bool(submission.get("from_cache"))
            if detail.get("state") == "done" and detail.get("stats"):
                results.append(JobResult(
                    job=job,
                    stats=RunStats.from_dict(detail["stats"]),
                    from_cache=from_cache,
                    attempts=attempts))
            else:
                error = detail.get("error") or (
                    f"job {detail.get('id')} ended in state "
                    f"{detail.get('state')!r} with no stats")
                results.append(JobResult(job=job, error=error,
                                         attempts=attempts))
        return results

    def run(self, algorithm: str, dataset: str,
            platform: str = "graphr",
            config: Optional[GraphRConfig] = None,
            deployment: Optional[DeploymentSpec] = None,
            **run_kwargs) -> RunStats:
        """One-job convenience: submit, wait, unwrap."""
        job = self.make_job(algorithm, dataset, platform=platform,
                            config=config, deployment=deployment,
                            **run_kwargs)
        return self.run_jobs([job])[0].unwrap()

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r})"
