"""Per-line suppression comments: ``# repro: noqa REP101 - reason``.

A finding is suppressed when its physical source line — or a line
directly above it holding only a comment — carries a ``repro: noqa``
marker naming the finding's rule (or naming no rule at all, which
suppresses every rule on that line).  The free-text reason after
``-`` is encouraged but not enforced; it is what makes a suppression
reviewable.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Set

__all__ = ["suppressed_rules_on_line", "is_suppressed"]

#: Matches ``# repro: noqa``, optionally followed by a comma-separated
#: rule list and an optional ``- reason`` tail.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s+(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
    r"(?:\s*-\s*(?P<reason>.*))?\s*$")

_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def suppressed_rules_on_line(line: str) -> Optional[Set[str]]:
    """The rules a source line's noqa marker names.

    ``None`` means no marker; an empty set means a bare marker that
    suppresses everything on the line.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if not rules:
        return set()
    return {code.strip() for code in rules.split(",")}


def is_suppressed(source_lines: Sequence[str], line: int,
                  rule: str) -> bool:
    """Whether ``rule`` is suppressed at 1-indexed ``line``.

    Checks the line itself, then one comment-only line directly above
    it — the codebase wraps at ~72 columns, so suppressions often
    cannot fit on the flagged statement.
    """
    candidates: List[str] = []
    if 1 <= line <= len(source_lines):
        candidates.append(source_lines[line - 1])
    if line >= 2 and _COMMENT_ONLY_RE.match(source_lines[line - 2]):
        candidates.append(source_lines[line - 2])
    for text in candidates:
        rules = suppressed_rules_on_line(text)
        if rules is not None and (not rules or rule in rules):
            return True
    return False
