"""REP204 — no blocking work while a modeled lock is held.

A lock held across ``sleep``, pipe/socket traffic, or recursive tree
I/O turns every other thread that needs the lock into a queue behind
that I/O — the classic convoy, and (with two locks) half of a
deadlock.  Using the held-lock dataflow
(:func:`repro.analysis.locks.held_lock_map`), the rule flags, in any
function of a lock-owning class or lock-owning module:

- direct calls to blocking names (``sleep``, ``recv``, ``send``,
  ``rmtree``, ``urlopen``, ...) while a modeled lock is held;
- typed blocking calls (``queue.get``/``thread.join``/``event.wait``,
  matched by the receiver's inferred type) while a lock is held;
- one level of same-class indirection: ``self.helper()`` under the
  lock where ``helper``'s body makes a blocking call.

SQLite ``execute`` is deliberately *not* in the default blocking set:
the job store's design holds its lock across its own transactions
(WAL, local disk) — what the rule polices is I/O with unbounded
latency (network, pipes, sleeps, directory trees).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.locks import (class_lock_attrs, held_lock_map,
                                  module_lock_globals)
from repro.analysis.model import (FunctionInfo, ModuleInfo,
                                  ProjectModel, call_name)
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _blocking_name(call: ast.Call, model: ProjectModel,
                   info: FunctionInfo,
                   policy: LintPolicy) -> Optional[str]:
    """The blocking operation a call performs, if any."""
    name = call_name(call)
    if name is None:
        return None
    if name in policy.lock_blocking_callees:
        return name
    types = policy.typed_blocking_receivers(name)
    if types and isinstance(call.func, ast.Attribute):
        rtype = model.receiver_type(info, call.func.value)
        if rtype in types:
            return f"{rtype}.{name}"
    return None


@register
class BlockingUnderLockChecker:
    rule = "REP204"
    summary = ("no sleeps, pipe/socket traffic or tree I/O while a "
               "modeled lock is held")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        for module in model.modules_sorted():
            if self.rule in policy.skipped_rules(module.name):
                continue
            mod_locks = module_lock_globals(module, policy)
            for info in model.functions():
                if info.module != module.name:
                    continue
                yield from self._check_function(model, module, info,
                                               mod_locks, policy)

    def _check_function(self, model: ProjectModel,
                        module: ModuleInfo, info: FunctionInfo,
                        mod_locks, policy: LintPolicy
                        ) -> Iterator[Finding]:
        cls = model.class_of(info)
        lock_exprs = set(mod_locks)
        if cls is not None:
            lock_exprs |= {f"self.{name}"
                           for name in class_lock_attrs(cls, policy)}
        if not lock_exprs:
            return
        held = held_lock_map(info.node, lock_exprs)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            if module.enclosing_function(node) is not info.node:
                continue
            locks_held = held.get(id(node))
            if not locks_held:
                continue
            pretty = "/".join(sorted(locks_held))
            blocking = _blocking_name(node, model, info, policy)
            if blocking is not None:
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"{blocking}() while holding {pretty}; "
                             f"move the blocking work outside the "
                             f"lock (snapshot state under the lock, "
                             f"do I/O after)"),
                    module=module.name)
                continue
            # One level of same-class indirection.
            if cls is not None and \
                    isinstance(node.func, ast.Attribute) and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id in ("self", "cls") and \
                    node.func.attr in cls.methods:
                callee = cls.methods[node.func.attr]
                callee_info = model.functions_by_id().get(id(callee))
                if callee_info is None:
                    continue
                for sub in ast.walk(callee):
                    if not isinstance(sub, ast.Call):
                        continue
                    blocking = _blocking_name(sub, model,
                                              callee_info, policy)
                    if blocking is not None:
                        yield Finding(
                            path=str(module.path), line=node.lineno,
                            col=node.col_offset, rule=self.rule,
                            message=(f"self.{node.func.attr}() is "
                                     f"called while holding {pretty} "
                                     f"and performs blocking "
                                     f"{blocking}(); move the I/O "
                                     f"outside the lock"),
                            module=module.name)
                        break
