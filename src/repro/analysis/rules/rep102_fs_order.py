"""REP102 — filesystem iteration order.

``Path.glob``/``Path.iterdir``/``os.listdir``/``os.scandir`` return
entries in directory order, which differs across filesystems and even
across runs.  Any consumption of their results by ordering-sensitive
code (loops that mutate state, list builds, eviction scans) must wrap
the call in ``sorted(...)``.  Consumers that are provably
order-insensitive — aggregations like ``sum``/``len``/``max``, or
collection into a ``set`` — are allowed unsorted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo, ProjectModel, call_name
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register

#: Attribute/function names that enumerate a directory.
_FS_ITER_NAMES = frozenset(
    {"glob", "rglob", "iterdir", "listdir", "scandir"})

#: Enclosing calls under which ordering cannot matter.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "max", "min", "sum", "any", "all", "len", "set",
     "frozenset", "Counter"})


def _is_fs_iteration(node: ast.Call) -> bool:
    name = call_name(node)
    if name not in _FS_ITER_NAMES:
        return False
    if name in ("listdir", "scandir"):
        # os.listdir / os.scandir — attribute form only, so a local
        # helper coincidentally named listdir() is not flagged.
        return isinstance(node.func, ast.Attribute)
    return isinstance(node.func, ast.Attribute)


def _order_safe(module: ModuleInfo, node: ast.Call) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Call):
            name = call_name(ancestor)
            if name in _ORDER_INSENSITIVE:
                return True
        if isinstance(ancestor, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            break
    return False


@register
class FsOrderChecker:
    rule = "REP102"
    summary = ("directory scans feeding order-sensitive code must be "
               "sorted(...)")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        for module in model.modules_sorted():
            if self.rule in policy.skipped_rules(module.name):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_fs_iteration(node):
                    continue
                if _order_safe(module, node):
                    continue
                name = call_name(node)
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"{name}() result consumed without "
                             f"sorted(); directory order is "
                             f"filesystem-dependent"),
                    module=module.name)
