"""REP206 — the shm claim protocol releases on every path.

The residency layer serialises segment builds with a filesystem-level
claim: ``lock = _claim_build(name)`` creates a ``.lck`` segment
(``None`` means someone else holds it) and ``_release_claim(lock)``
removes it.  A claim leaked on an exception or early ``return``
stalls *every other process* for the full stale-claim grace period —
this is REP104's unlink obligation generalised into a state machine.

For every function that binds the result of an acquire call
(``LintPolicy.claim_acquire_callees``, plus forwarders that directly
``return`` an acquire — ``_steal_stale_claim``-style), a small
abstract interpreter tracks the claim variable through the lattice
``{NONE, HELD, RELEASED}``:

- an acquire yields ``{NONE, HELD}`` (claims are contended);
- ``if lock is None`` / ``is not None`` / truthiness tests refine
  the state per branch;
- a ``try`` whose ``finally`` (or handler) calls the release
  protects everything inside it, including ``return``;
- a ``return`` (or bare ``raise``) while ``HELD`` outside protection
  leaks the claim — finding;
- any call while ``HELD`` outside protection can raise past the
  release — finding ("no release on the exception path");
- falling off the end while ``HELD`` — finding.

Loops are evaluated once (a claim acquired per-iteration and leaked
would still show inside the body); the approximation is conservative
in the reporting direction only where branch refinement applies.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import (FunctionInfo, ModuleInfo,
                                  ProjectModel, call_name)
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register

NONE = "none"
HELD = "held"
RELEASED = "released"

_FULL = frozenset({NONE, HELD})


def _acquire_names(model: ProjectModel,
                   policy: LintPolicy) -> FrozenSet[str]:
    """Configured acquire callees plus direct-return forwarders."""
    names: Set[str] = set(policy.claim_acquire_callees)
    changed = True
    while changed:
        changed = False
        for info in model.functions():
            if info.node.name in names:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Return) and \
                        isinstance(node.value, ast.Call) and \
                        call_name(node.value) in names:
                    names.add(info.node.name)
                    changed = True
                    break
    return frozenset(names)


def _released_vars(node: ast.AST, release: FrozenSet[str]
                   ) -> Set[str]:
    """Claim variables a statement passes to a release call."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and \
                call_name(sub) in release:
            out.update(arg.id for arg in sub.args
                       if isinstance(arg, ast.Name))
    return out


def _contains_call(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Call) for sub in ast.walk(node))


class _Interp:
    """One function's claim-state walk; collects findings."""

    def __init__(self, module: ModuleInfo, fn: ast.FunctionDef,
                 rule: str, acquire: FrozenSet[str],
                 release: FrozenSet[str]) -> None:
        self.module = module
        self.fn = fn
        self.rule = rule
        self.acquire = acquire
        self.release = release
        self.findings: List[Finding] = []
        self.reported: Set[Tuple[str, str]] = set()

    # -- helpers -------------------------------------------------------
    def _report(self, var: str, kind: str, line: int, col: int,
                message: str) -> None:
        if (var, kind) in self.reported:
            return
        self.reported.add((var, kind))
        self.findings.append(Finding(
            path=str(self.module.path), line=line, col=col,
            rule=self.rule, message=message,
            module=self.module.name))

    @staticmethod
    def _refine(env: Dict[str, FrozenSet[str]], test: ast.expr
                ) -> Tuple[Dict[str, FrozenSet[str]],
                           Dict[str, FrozenSet[str]]]:
        """(then-env, else-env) after an ``is None``-style test."""
        then_env = dict(env)
        else_env = dict(env)
        var = None
        none_in_then = None
        if isinstance(test, ast.Compare) and \
                isinstance(test.left, ast.Name) and \
                len(test.ops) == 1 and \
                isinstance(test.comparators[0], ast.Constant) and \
                test.comparators[0].value is None:
            var = test.left.id
            if isinstance(test.ops[0], ast.Is):
                none_in_then = True
            elif isinstance(test.ops[0], ast.IsNot):
                none_in_then = False
        elif isinstance(test, ast.Name):
            var = test.id
            none_in_then = False
        elif isinstance(test, ast.UnaryOp) and \
                isinstance(test.op, ast.Not) and \
                isinstance(test.operand, ast.Name):
            var = test.operand.id
            none_in_then = True
        if var is not None and var in env and \
                none_in_then is not None:
            states = env[var]
            if none_in_then:
                then_env[var] = states & frozenset({NONE})
                else_env[var] = states - frozenset({NONE})
            else:
                then_env[var] = states - frozenset({NONE})
                else_env[var] = states & frozenset({NONE})
        return then_env, else_env

    # -- the walk ------------------------------------------------------
    def run(self) -> List[Finding]:
        env, _ = self.block(self.fn.body, {}, frozenset())
        for var, states in env.items():
            if HELD in states:
                self._report(
                    var, "fallthrough", self.fn.lineno,
                    self.fn.col_offset,
                    f"claim {var!r} may reach the end of "
                    f"{self.fn.name}() without a release")
        return self.findings

    def block(self, stmts: List[ast.stmt],
              env: Dict[str, FrozenSet[str]],
              protected: FrozenSet[str]
              ) -> Tuple[Dict[str, FrozenSet[str]], bool]:
        """Returns (env-after, falls-through)."""
        env = dict(env)
        for stmt in stmts:
            if isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                var = stmt.targets[0].id
                is_acquire = isinstance(stmt.value, ast.Call) and \
                    call_name(stmt.value) in self.acquire
                if HELD in env.get(var, frozenset()) and \
                        var not in protected:
                    self._report(
                        var, "overwrite", stmt.lineno,
                        stmt.col_offset,
                        f"claim {var!r} is reassigned while "
                        f"possibly held; release it first")
                if is_acquire:
                    env[var] = _FULL
                    continue
                env.pop(var, None)
                if _contains_call(stmt):
                    self._may_raise(stmt, env, protected)
                continue
            if isinstance(stmt, ast.Return):
                self._leak_check(stmt, env, protected,
                                 "early return leaks claim")
                return env, False
            if isinstance(stmt, ast.Raise):
                self._leak_check(stmt, env, protected,
                                 "raise leaks claim")
                return env, False
            if isinstance(stmt, ast.If):
                then_env, else_env = self._refine(env, stmt.test)
                out1, ft1 = self.block(stmt.body, then_env,
                                       protected)
                out2, ft2 = self.block(stmt.orelse, else_env,
                                       protected)
                env = self._join(out1, ft1, out2, ft2)
                if not (ft1 or ft2):
                    return env, False
                continue
            if isinstance(stmt, ast.Try):
                protecting = set()
                for release_stmt in stmt.finalbody:
                    protecting |= _released_vars(release_stmt,
                                                 self.release)
                for handler in stmt.handlers:
                    for release_stmt in handler.body:
                        protecting |= _released_vars(release_stmt,
                                                     self.release)
                inner = frozenset(protected | protecting)
                env, ft = self.block(stmt.body, env, inner)
                for handler in stmt.handlers:
                    self.block(handler.body, env, inner)
                env, ft_orelse = self.block(stmt.orelse, env, inner)
                ft = ft and ft_orelse
                env, ft_final = self.block(stmt.finalbody, env,
                                           protected)
                for var in protecting:
                    if var in env:
                        env[var] = (env[var] - {HELD}) | {RELEASED}
                if not (ft and ft_final):
                    return env, False
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                env, ft = self.block(stmt.body, env, protected)
                if not ft:
                    return env, False
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                body_env, _ = self.block(stmt.body, env, protected)
                orelse_env, _ = self.block(stmt.orelse, body_env,
                                           protected)
                env = self._join(env, True, orelse_env, True)
                continue
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            # Simple statement: releases apply first, then the
            # may-raise obligation for still-held claims.
            released = _released_vars(stmt, self.release)
            for var in released:
                if var in env:
                    env[var] = (env[var] - {HELD}) | {RELEASED}
            if released:
                continue
            if _contains_call(stmt):
                self._may_raise(stmt, env, protected)
        return env, True

    def _may_raise(self, stmt: ast.stmt,
                   env: Dict[str, FrozenSet[str]],
                   protected: FrozenSet[str]) -> None:
        for var, states in env.items():
            if HELD in states and var not in protected:
                self._report(
                    var, "exception", stmt.lineno, stmt.col_offset,
                    f"call while claim {var!r} is held and no "
                    f"release on the exception path; wrap in "
                    f"try/finally with "
                    f"{'/'.join(sorted(self.release))}")

    def _leak_check(self, stmt: ast.stmt,
                    env: Dict[str, FrozenSet[str]],
                    protected: FrozenSet[str], what: str) -> None:
        for var, states in env.items():
            if HELD in states and var not in protected:
                self._report(
                    var, "return", stmt.lineno, stmt.col_offset,
                    f"{what} {var!r}; release it before leaving "
                    f"the function")

    @staticmethod
    def _join(env1: Dict[str, FrozenSet[str]], ft1: bool,
              env2: Dict[str, FrozenSet[str]], ft2: bool
              ) -> Dict[str, FrozenSet[str]]:
        if ft1 and not ft2:
            return env1
        if ft2 and not ft1:
            return env2
        joined: Dict[str, FrozenSet[str]] = {}
        for var in set(env1) | set(env2):
            joined[var] = env1.get(var, frozenset()) | \
                env2.get(var, frozenset())
        return joined


@register
class ClaimProtocolChecker:
    rule = "REP206"
    summary = ("every claim acquire is released on all exception "
               "and return paths")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        if not policy.claim_acquire_callees:
            return
        acquire = _acquire_names(model, policy)
        release = frozenset(policy.claim_release_callees)
        for info in model.functions():
            if self.rule in policy.skipped_rules(info.module):
                continue
            if not self._binds_claim(info, acquire):
                continue
            module = model.modules[info.module]
            interp = _Interp(module, info.node, self.rule, acquire,
                             release)
            yield from interp.run()

    @staticmethod
    def _binds_claim(info: FunctionInfo,
                     acquire: FrozenSet[str]) -> bool:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call) and \
                    call_name(node.value) in acquire:
                return True
        return False
