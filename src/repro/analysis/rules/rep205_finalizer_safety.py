"""REP205 — finalizer contexts stay on the reentrant-safe allowlist.

Code registered with ``atexit.register``, ``weakref.finalize``,
``multiprocessing.util.Finalize`` or an after-fork hook runs at the
worst possible moments: interpreter teardown (modules half-cleared,
daemon threads killed mid-statement) or immediately post-fork (every
lock another thread held is locked forever, with no thread left to
release it).  Logging-handler mutation, lock acquisition, metric
registration — all can deadlock or throw there, and the traceback is
swallowed.

The rule walks every function tagged ``finalizer`` by the context
model and requires each call to either resolve to project code (which
carries the tag itself and is checked recursively) or appear in the
``LintPolicy.finalizer_allowed_calls`` allowlist — the small closure
of operations that are safe without locks or imports:
``os.getpid``, ``shutil.rmtree``, ``.close()``/``.unlink()``, and
fresh lock *construction* (the after-fork reset idiom).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.contexts import TAG_FINALIZER, context_map
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, call_name
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


@register
class FinalizerSafetyChecker:
    rule = "REP205"
    summary = ("atexit/finalizer contexts only call the policy's "
               "reentrant-safe allowlist")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        contexts = context_map(model, policy)
        stop_names = policy.call_graph_stop_names
        for info in model.functions():
            if self.rule in policy.skipped_rules(info.module):
                continue
            if TAG_FINALIZER not in contexts.tags_of(info.node):
                continue
            module = model.modules[info.module]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if module.enclosing_function(node) is not info.node:
                    continue
                name = call_name(node)
                if name is None:
                    continue
                if model.call_targets(info, node, stop_names):
                    # Resolves to project code: that function carries
                    # the finalizer tag and is checked itself.
                    continue
                if name in policy.finalizer_allowed_calls:
                    continue
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"{name}() called from a finalizer "
                             f"context (atexit/weakref/after-fork) "
                             f"but not on the reentrant-safe "
                             f"allowlist; finalizers run with locks "
                             f"possibly held forever and modules "
                             f"half-torn-down"),
                    module=module.name)
