"""REP106 — error taxonomy.

The service layer maps :class:`repro.errors.ReproError` subclasses to
HTTP 400s and the CLI maps them to clean exit codes; a bare
``ValueError`` raised from runtime or service code escapes both nets
as a traceback.  Modules under the policy's error-scope prefixes must
raise classes from the project taxonomy.  Genuine argument-validation
errors that *should* surface as ``ValueError`` (library-style API
contracts in ``algorithms/``) carry a ``# repro: noqa REP106``
suppression with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, dotted_name
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if exc is None:  # bare re-raise
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = dotted_name(exc)
    if name is None:
        return None
    return name.split(".")[-1]


@register
class ErrorTaxonomyChecker:
    rule = "REP106"
    summary = ("runtime/service/algorithm layers raise typed errors "
               "from repro.errors, not bare builtins")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        for module in model.modules_sorted():
            if not policy.in_error_scope(module.name):
                continue
            if self.rule in policy.skipped_rules(module.name):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise):
                    continue
                name = _raised_name(node)
                if name is None or \
                        name not in policy.error_bare_names:
                    continue
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"bare {name} raised in an error-scoped "
                             f"layer; raise a repro.errors class so "
                             f"the service maps it to HTTP 400 and "
                             f"the CLI to a clean exit"),
                    module=module.name)
