"""REP101 — determinism of compute-reachable modules.

A simulated result must be a pure function of the job's content key.
Any module in the import closure of the compute roots therefore may
not read entropy or wall clocks: no unseeded ``default_rng()``, no
global-state ``numpy.random``/stdlib-``random`` calls, no
``time.time()`` or ``datetime.now()``.  Modules whose wall-clock use
is observational (telemetry, cache aging) are exempted by the policy
map, each with a recorded reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo, ProjectModel, dotted_name
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register

#: numpy.random module-level functions driven by hidden global state.
_NUMPY_GLOBAL_FNS = frozenset(
    {"rand", "randn", "randint", "random", "random_sample", "shuffle",
     "permutation", "choice", "normal", "uniform", "seed"})

#: Wall-clock reads (suffix match on the resolved dotted name).
_CLOCK_CALLS = frozenset(
    {"time.time", "time.time_ns", "datetime.datetime.now",
     "datetime.datetime.utcnow", "datetime.datetime.today",
     "datetime.date.today"})


def _alias_map(module: ModuleInfo) -> Dict[str, str]:
    """Local name -> the absolute dotted thing it refers to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else \
                    alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def _resolve(aliases: Dict[str, str],
             dotted: str) -> str:
    head, sep, rest = dotted.partition(".")
    resolved_head = aliases.get(head, head)
    return resolved_head + sep + rest if sep else resolved_head


def _violation(resolved: str,
               node: ast.Call) -> Optional[Tuple[str, str]]:
    """``(kind, message)`` when the resolved call is nondeterministic."""
    parts = resolved.split(".")
    if parts[-1] == "default_rng" and not node.args \
            and not node.keywords:
        return ("rng", "unseeded default_rng(): pass an explicit "
                       "seed derived from the job content key")
    if resolved.startswith("numpy.random.") \
            and parts[-1] in _NUMPY_GLOBAL_FNS:
        return ("rng", f"numpy.random.{parts[-1]} uses hidden global "
                       f"RNG state; use a seeded Generator")
    if resolved == "random" or resolved.startswith("random."):
        if parts[-1] == "Random" and (node.args or node.keywords):
            return None  # explicitly seeded instance
        return ("rng", f"stdlib random.{parts[-1]} uses global RNG "
                       f"state; use a seeded Generator")
    if resolved in _CLOCK_CALLS:
        return ("clock", f"{resolved}() reads the wall clock inside "
                         f"compute-reachable code")
    return None


@register
class DeterminismChecker:
    rule = "REP101"
    summary = ("no unseeded RNGs or wall-clock reads in "
               "compute-reachable modules")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        if not policy.compute_roots:
            return
        reachable = model.reachable(policy.compute_roots)
        for module in model.modules_sorted():
            if module.name not in reachable:
                continue
            if self.rule in policy.skipped_rules(module.name):
                continue
            aliases = _alias_map(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                hit = _violation(_resolve(aliases, dotted), node)
                if hit is None:
                    continue
                _kind, message = hit
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=message, module=module.name)
