"""REP105 — telemetry purity.

Observability must be free when disabled and invisible to identity
always.  Two obligations:

1. **Hot-path gating** — inside the name-matched call closure of the
   vertex-program scan loops, every telemetry call (``span``,
   ``counter``, registry lookups...) must sit under a conditional
   whose test is ``metrics.enabled()`` or a local variable assigned
   from it (the ``observing = metrics.enabled()`` idiom).  Ungated
   instrumentation inside the MAC/AddOp inner loops costs more than
   the simulated arithmetic it measures.
2. **Identity separation** — volatile trace keys (``extra["trace"]``)
   must never appear in a content-hash serializer closure, and every
   class the policy names in ``identity_contracts`` must strip its
   declared volatile-key constant, which in turn must cover all the
   policy's volatile keys.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Finding
from repro.analysis.model import (ClassInfo, ModuleInfo, ProjectModel,
                                  call_name)
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _gate_variables(func: ast.FunctionDef,
                    gate_names: frozenset) -> Set[str]:
    """Local names assigned from a gate call (``observing =
    metrics.enabled()``)."""
    gated: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call) and \
                call_name(node.value) in gate_names:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    gated.add(target.id)
    return gated


def _test_is_gate(test: ast.AST, gate_names: frozenset,
                  gate_vars: Set[str]) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and \
                call_name(node) in gate_names:
            return True
        if isinstance(node, ast.Name) and node.id in gate_vars:
            return True
    return False


def _is_gated(module: ModuleInfo, call: ast.Call,
              func: ast.FunctionDef, gate_names: frozenset,
              gate_vars: Set[str]) -> bool:
    for ancestor in module.ancestors(call):
        if ancestor is func:
            break
        if isinstance(ancestor, ast.If) and \
                _test_is_gate(ancestor.test, gate_names, gate_vars):
            return True
        if isinstance(ancestor, ast.IfExp) and \
                _test_is_gate(ancestor.test, gate_names, gate_vars):
            return True
    return False


@register
class TelemetryPurityChecker:
    rule = "REP105"
    summary = ("hot-path telemetry gated on metrics.enabled(); "
               "volatile trace keys never reach content hashes")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        yield from self._check_hot_path(model, policy)
        yield from self._check_identity(model, policy)

    # ------------------------------------------------------------------
    def _check_hot_path(self, model: ProjectModel,
                        policy: LintPolicy) -> Iterator[Finding]:
        if not policy.hot_roots:
            return
        hot = model.hot_functions(policy.hot_roots,
                                  policy.call_graph_stop_names)
        for module in model.modules_sorted():
            if self.rule in policy.skipped_rules(module.name):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if id(node) not in hot:
                    continue
                gate_vars = _gate_variables(node,
                                            policy.obs_gate_names)
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call) or \
                            call_name(call) not in \
                            policy.obs_call_names:
                        continue
                    if _is_gated(module, call, node,
                                 policy.obs_gate_names, gate_vars):
                        continue
                    yield Finding(
                        path=str(module.path), line=call.lineno,
                        col=call.col_offset, rule=self.rule,
                        message=(f"ungated {call_name(call)}() on the "
                                 f"engine hot path ({node.name} is "
                                 f"reachable from "
                                 f"{'/'.join(policy.hot_roots)}); "
                                 f"gate on metrics.enabled()"),
                        module=module.name)

    # ------------------------------------------------------------------
    def _check_identity(self, model: ProjectModel,
                        policy: LintPolicy) -> Iterator[Finding]:
        volatile = set(policy.volatile_extra_keys)
        for module_name in sorted(model.modules):
            if self.rule in policy.skipped_rules(module_name):
                continue
            module = model.modules[module_name]
            for cls in model.classes()[module_name]:
                yield from self._check_hash_keys(module, cls, model,
                                                 policy, volatile)
                contract = policy.identity_contracts.get(cls.name)
                if contract is not None:
                    yield from self._check_contract(module, cls,
                                                    contract, volatile)

    def _check_hash_keys(self, module: ModuleInfo, cls: ClassInfo,
                         model: ProjectModel, policy: LintPolicy,
                         volatile: Set[str]) -> Iterator[Finding]:
        roots = [name for name in sorted(policy.hash_method_names)
                 if name in cls.methods]
        extra = policy.extra_hash_classes.get(cls.name)
        if extra is not None and extra in cls.methods:
            roots.append(extra)
        for root in roots:
            closure = model.method_closure(cls, root)
            for key, lineno, method in closure.str_keys:
                if key in volatile:
                    yield Finding(
                        path=str(module.path), line=lineno, col=0,
                        rule=self.rule,
                        message=(f"volatile key {key!r} appears in "
                                 f"{cls.name}.{method}, which feeds "
                                 f"the content hash; telemetry must "
                                 f"not perturb identity"),
                        module=module.name)

    def _check_contract(self, module: ModuleInfo, cls: ClassInfo,
                        contract, volatile: Set[str]
                        ) -> Iterator[Finding]:
        method_name, constant = contract
        method = cls.methods.get(method_name)
        if method is None:
            yield Finding(
                path=str(module.path), line=cls.node.lineno,
                col=cls.node.col_offset, rule=self.rule,
                message=(f"{cls.name} must define {method_name}() "
                         f"stripping {constant} (policy identity "
                         f"contract)"),
                module=module.name)
            return
        if not any(isinstance(node, ast.Name) and node.id == constant
                   or isinstance(node, ast.Attribute)
                   and node.attr == constant
                   for node in ast.walk(method)):
            yield Finding(
                path=str(module.path), line=method.lineno,
                col=method.col_offset, rule=self.rule,
                message=(f"{cls.name}.{method_name} does not "
                         f"reference {constant}; volatile keys would "
                         f"leak into identity"),
                module=module.name)
        declared = self._constant_strings(module, constant)
        missing = sorted(volatile - declared)
        if missing:
            yield Finding(
                path=str(module.path), line=cls.node.lineno,
                col=cls.node.col_offset, rule=self.rule,
                message=(f"{constant} does not cover volatile key(s) "
                         f"{', '.join(missing)}"),
                module=module.name)

    @staticmethod
    def _constant_strings(module: ModuleInfo,
                          constant: str) -> Set[str]:
        values: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == constant
                       for t in node.targets):
                continue
            for child in ast.walk(node.value):
                if isinstance(child, ast.Constant) and \
                        isinstance(child.value, str):
                    values.add(child.value)
        return values
