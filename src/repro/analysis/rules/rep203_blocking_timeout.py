"""REP203 — blocking calls in concurrent contexts carry a timeout.

A supervisor slot thread stuck in ``queue.get()`` can never observe
the stop event; a daemon thread stuck in ``pipe.recv()`` survives the
worker it was reading from; a ``thread.join()`` without a timeout
turns shutdown into a hang.  In any tagged execution context (thread,
HTTP handler, worker process, finalizer — see
:mod:`repro.analysis.contexts`) the rule requires that:

- bare blocking names (``recv``, ``recv_bytes``, ``accept``) either
  pass a ``timeout=`` or sit under a ``poll(...)`` guard (the
  ``if conn.poll(step): conn.recv()`` idiom — ``poll`` carries the
  timeout, making the subsequent ``recv`` non-blocking);
- typed blocking calls (``queue.get``, ``thread.join``,
  ``event.wait`` — matched only when the receiver's inferred type
  says so, keeping ``dict.get`` and ``str.join`` out of scope) pass a
  timeout argument.

A function that *must* block forever by design (the worker's request
pipe) is not silenced inline: it gets a
``LintPolicy.blocking_wait_allowed`` entry with a recorded reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.contexts import context_map
from repro.analysis.findings import Finding
from repro.analysis.model import (FunctionInfo, ModuleInfo,
                                  ProjectModel, call_name)
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _has_timeout(call: ast.Call) -> bool:
    return any(kw.arg in ("timeout", "block") for kw in call.keywords)


def _poll_guarded(call: ast.Call, fn: ast.AST,
                  module: ModuleInfo) -> bool:
    """Whether an enclosing ``if``/``while`` test polls first."""
    for ancestor in module.ancestors(call):
        if ancestor is fn:
            break
        if isinstance(ancestor, (ast.If, ast.While)):
            for node in ast.walk(ancestor.test):
                if isinstance(node, ast.Call) and \
                        call_name(node) == "poll" and \
                        (node.args or node.keywords):
                    return True
    return False


@register
class BlockingTimeoutChecker:
    rule = "REP203"
    summary = ("blocking calls reachable from concurrent contexts "
               "carry a timeout or a poll guard")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        contexts = context_map(model, policy)
        for info in model.functions():
            if self.rule in policy.skipped_rules(info.module):
                continue
            tags = contexts.tags_of(info.node)
            if not tags:
                continue
            if policy.blocking_wait_reason(info.qualname) is not None:
                continue  # deliberate, recorded in the policy
            module = model.modules[info.module]
            yield from self._check_function(model, module, info,
                                            tags, policy)

    def _check_function(self, model: ProjectModel,
                        module: ModuleInfo, info: FunctionInfo,
                        tags, policy: LintPolicy
                        ) -> Iterator[Finding]:
        pretty_tags = "/".join(sorted(tags))
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            if module.enclosing_function(node) is not info.node:
                continue  # nested defs are checked as themselves
            name = call_name(node)
            if name in policy.blocking_bare_calls:
                if _has_timeout(node) or \
                        _poll_guarded(node, info.node, module):
                    continue
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"{name}() in a {pretty_tags} context "
                             f"blocks indefinitely; add a timeout "
                             f"or guard it with poll(timeout)"),
                    module=module.name)
                continue
            types = policy.typed_blocking_receivers(name or "")
            if not types or not isinstance(node.func, ast.Attribute):
                continue
            rtype = model.receiver_type(info, node.func.value)
            if rtype not in types:
                continue
            if node.args or _has_timeout(node):
                continue
            yield Finding(
                path=str(module.path), line=node.lineno,
                col=node.col_offset, rule=self.rule,
                message=(f"{rtype}.{name}() without a timeout in a "
                         f"{pretty_tags} context can hang shutdown; "
                         f"pass timeout="),
                module=module.name)
