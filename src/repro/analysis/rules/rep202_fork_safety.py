"""REP202 — fork safety of pre-fork resources.

``fork()`` copies the parent's heap but not its threads: a lock some
parent thread held at fork time is copied *locked forever*; a sqlite3
connection or socket shares its file descriptor and kernel state with
the parent; a ``SharedMemory`` handle's resource-tracker registration
double-unlinks on child exit.  The rule therefore bans *using* (not
merely inheriting) such pre-fork objects in worker-process contexts:

- module-level globals assigned a fork-unsafe constructor
  (``threading.Lock()``, ``sqlite3.connect``, ``socket.socket``,
  ``SharedMemory``) must not be referenced in a function tagged
  ``process`` (see :mod:`repro.analysis.contexts`);
- ``self.X`` attributes created by such constructors outside the
  process context must not be touched from it.

Two idioms are recognised as the *fix* rather than the bug and stay
allowed: calling ``.close()`` on the inherited object (shedding the
parent's descriptor is exactly what an after-fork callback is for),
and globals reassigned by a callback registered via
``os.register_at_fork(after_in_child=...)`` or
``multiprocessing.util.register_after_fork`` — the stdlib
``logging``-style reset that makes a pre-fork lock safe again.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.contexts import TAG_PROCESS, context_map
from repro.analysis.findings import Finding
from repro.analysis.model import (ModuleInfo, ProjectModel, call_name,
                                  dotted_name)
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Local import bindings to full dotted names (``shared_memory``
    -> ``multiprocessing.shared_memory``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                aliases[bound] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def _unsafe_ctor(value: ast.expr, aliases: Dict[str, str],
                 policy: LintPolicy) -> Optional[str]:
    """The resolved fork-unsafe constructor a value calls, if any."""
    if not isinstance(value, ast.Call):
        return None
    dotted = dotted_name(value.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head, head)
    full = f"{resolved}.{rest}" if rest else resolved
    if full in policy.fork_unsafe_factories:
        return full
    return None


def _fork_reset_names(module: ModuleInfo,
                      model: ProjectModel) -> Set[str]:
    """Global names reassigned by registered after-fork callbacks."""
    callbacks: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        targets = []
        if name == "register_at_fork":
            targets = [kw.value for kw in node.keywords
                       if kw.arg == "after_in_child"]
        elif name == "register_after_fork" and len(node.args) >= 2:
            targets = [node.args[1]]
        for target in targets:
            if isinstance(target, ast.Name):
                callbacks.add(target.id)
            elif isinstance(target, ast.Attribute):
                callbacks.add(target.attr)
    reset: Set[str] = set()
    for info in model.functions():
        if info.module != module.name or \
                info.node.name not in callbacks:
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                reset.update(node.names)
            elif isinstance(node, ast.Assign):
                reset.update(target.id for target in node.targets
                             if isinstance(target, ast.Name))
    return reset


def _is_close_use(node: ast.AST,
                  parents: Dict[int, ast.AST]) -> bool:
    """Whether the reference is only closed (``conn.close()``)."""
    parent = parents.get(id(node))
    while isinstance(parent, ast.Attribute):
        if parent.attr == "close":
            grand = parents.get(id(parent))
            return isinstance(grand, ast.Call) and \
                grand.func is parent
        node = parent
        parent = parents.get(id(node))
    return False


@register
class ForkSafetyChecker:
    rule = "REP202"
    summary = ("locks, connections, sockets and shm handles created "
               "pre-fork are not used in worker-process contexts")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        contexts = context_map(model, policy)
        for module in model.modules_sorted():
            if self.rule in policy.skipped_rules(module.name):
                continue
            aliases = _alias_map(module.tree)
            yield from self._check_globals(model, module, aliases,
                                           policy, contexts)
            yield from self._check_attrs(model, module, aliases,
                                         policy, contexts)

    # ------------------------------------------------------------------
    def _check_globals(self, model: ProjectModel, module: ModuleInfo,
                       aliases: Dict[str, str], policy: LintPolicy,
                       contexts) -> Iterator[Finding]:
        tracked: Dict[str, str] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                ctor = _unsafe_ctor(stmt.value, aliases, policy)
                if ctor is not None:
                    tracked[stmt.targets[0].id] = ctor
        if not tracked:
            return
        reset = _fork_reset_names(module, model)
        parents = module.parent_map()
        for info in model.functions():
            if info.module != module.name:
                continue
            if TAG_PROCESS not in contexts.tags_of(info.node):
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Name) or \
                        not isinstance(node.ctx, ast.Load) or \
                        node.id not in tracked:
                    continue
                if node.id in reset:
                    continue  # an after-fork callback recreates it
                if _is_close_use(node, parents):
                    continue
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"{node.id} is a module-level "
                             f"{tracked[node.id]} created before "
                             f"fork but used in a worker-process "
                             f"context; recreate it via "
                             f"os.register_at_fork(after_in_child="
                             f"...) or construct it post-fork"),
                    module=module.name)

    # ------------------------------------------------------------------
    def _check_attrs(self, model: ProjectModel, module: ModuleInfo,
                     aliases: Dict[str, str], policy: LintPolicy,
                     contexts) -> Iterator[Finding]:
        parents = module.parent_map()
        for cls in model.classes().get(module.name, ()):
            tracked: Dict[str, str] = {}
            for mname, fn in cls.methods.items():
                if TAG_PROCESS in contexts.tags_of(fn):
                    continue  # created post-fork: fine to use there
                for node in ast.walk(fn):
                    if isinstance(node, ast.Assign) and \
                            len(node.targets) == 1 and \
                            isinstance(node.targets[0],
                                       ast.Attribute) and \
                            isinstance(node.targets[0].value,
                                       ast.Name) and \
                            node.targets[0].value.id in ("self",
                                                         "cls"):
                        ctor = _unsafe_ctor(node.value, aliases,
                                            policy)
                        if ctor is not None:
                            tracked[node.targets[0].attr] = ctor
            if not tracked:
                continue
            for mname, fn in cls.methods.items():
                if TAG_PROCESS not in contexts.tags_of(fn):
                    continue
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Attribute) or \
                            not isinstance(node.value, ast.Name) or \
                            node.value.id not in ("self", "cls") or \
                            node.attr not in tracked or \
                            not isinstance(node.ctx, ast.Load):
                        continue
                    if _is_close_use(node, parents):
                        continue
                    yield Finding(
                        path=str(module.path), line=node.lineno,
                        col=node.col_offset, rule=self.rule,
                        message=(f"self.{node.attr} "
                                 f"({tracked[node.attr]}) is created "
                                 f"pre-fork but used in a "
                                 f"worker-process context; close it "
                                 f"in an after-fork callback and "
                                 f"recreate it in the child"),
                        module=module.name)
