"""Rule modules; importing this package registers every checker."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401
    rep101_determinism,
    rep102_fs_order,
    rep103_content_key,
    rep104_shm_lifecycle,
    rep105_telemetry_purity,
    rep106_error_taxonomy,
    rep201_lock_discipline,
    rep202_fork_safety,
    rep203_blocking_timeout,
    rep204_blocking_under_lock,
    rep205_finalizer_safety,
    rep206_claim_protocol,
)
