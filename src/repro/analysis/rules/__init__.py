"""Rule modules; importing this package registers every checker."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401
    rep101_determinism,
    rep102_fs_order,
    rep103_content_key,
    rep104_shm_lifecycle,
    rep105_telemetry_purity,
    rep106_error_taxonomy,
)
