"""REP104 — shared-memory lifecycle.

POSIX shared memory has no owner process: a segment created with
``create=True`` outlives whoever made it, so an exception between
creation and hand-off leaks the name (and on ``/dev/shm``, the bytes)
until reboot.  Three obligations, all mechanical:

1. Only the designated residency module touches ``SharedMemory``
   directly; everyone else goes through its helpers.
2. Every ``SharedMemory(create=True)`` site sits in a function with
   an exception path that unlinks (``unlink_segment`` and friends).
3. Every ``SharedMemory`` handle is detached from the multiprocessing
   resource tracker (``_untrack``) in the same function — the tracker
   would otherwise unlink shared segments when *any* process exits.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo, ProjectModel, call_name
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _is_create(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            return True
    return False


def _function_calls(node: Optional[ast.AST],
                    names: frozenset) -> bool:
    if node is None:
        return False
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and \
                call_name(child) in names:
            return True
    return False


def _except_path_calls(node: Optional[ast.AST],
                       names: frozenset) -> bool:
    """Whether any exception handler under ``node`` calls one of
    ``names`` — the 'unlink on the way out' obligation."""
    if node is None:
        return False
    for child in ast.walk(node):
        if isinstance(child, ast.ExceptHandler) and \
                _function_calls(child, names):
            return True
        if isinstance(child, ast.Try) and child.finalbody:
            for stmt in child.finalbody:
                if _function_calls(stmt, names):
                    return True
    return False


@register
class ShmLifecycleChecker:
    rule = "REP104"
    summary = ("SharedMemory stays inside the residency owner; "
               "created segments unlink on exception paths")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        for module in model.modules_sorted():
            if self.rule in policy.skipped_rules(module.name):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or \
                        call_name(node) != "SharedMemory":
                    continue
                yield from self._check_call(module, node, policy)

    def _check_call(self, module: ModuleInfo, node: ast.Call,
                    policy: LintPolicy) -> Iterator[Finding]:
        if not policy.is_shm_owner(module.name):
            owners = ", ".join(policy.shm_owner_modules) or \
                "the residency module"
            yield Finding(
                path=str(module.path), line=node.lineno,
                col=node.col_offset, rule=self.rule,
                message=(f"direct SharedMemory use outside {owners}; "
                         f"go through its publish/attach helpers"),
                module=module.name)
            return
        func = module.enclosing_function(node)
        if not _function_calls(func, policy.shm_untrack_callees):
            yield Finding(
                path=str(module.path), line=node.lineno,
                col=node.col_offset, rule=self.rule,
                message=("SharedMemory handle never detached from the "
                         "resource tracker (no "
                         f"{'/'.join(sorted(policy.shm_untrack_callees))}"
                         " call in this function)"),
                module=module.name)
        if _is_create(node) and \
                not _except_path_calls(func, policy.shm_unlink_callees):
            yield Finding(
                path=str(module.path), line=node.lineno,
                col=node.col_offset, rule=self.rule,
                message=("segment created with create=True has no "
                         "exception path that unlinks it; a failure "
                         "here leaks the name until reboot"),
                module=module.name)
