"""REP103 — content-key completeness.

The cache, the residency layer, and cross-platform equivalence all
key on SHA-256 content hashes of dataclass state.  A dataclass field
that never reaches the canonical serializer silently aliases distinct
configurations onto one cache entry — the worst kind of wrong answer.

For every dataclass that defines a content-hash method (or that the
policy names as feeding one), this rule computes the transitive
``self.*`` closure of the serializer and demands every field appear
in it.  Serializers that iterate ``dataclasses.fields(self)`` are
complete by construction.  Deliberately excluded fields must be
declared in the policy's ``hash_volatile_fields`` map — and a declared
exclusion that nevertheless reaches the hash is itself an error.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.model import ClassInfo, ProjectModel
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _serializer_roots(cls: ClassInfo,
                      policy: LintPolicy) -> List[str]:
    roots = [name for name in sorted(policy.hash_method_names)
             if name in cls.methods]
    extra = policy.extra_hash_classes.get(cls.name)
    if extra is not None and extra in cls.methods:
        roots.append(extra)
    return roots


@register
class ContentKeyChecker:
    rule = "REP103"
    summary = ("every dataclass field of a content-hashed class must "
               "reach its canonical serializer")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        for module_name in sorted(model.modules):
            if self.rule in policy.skipped_rules(module_name):
                continue
            module = model.modules[module_name]
            for cls in model.classes()[module_name]:
                if not cls.is_dataclass:
                    continue
                roots = _serializer_roots(cls, policy)
                if not roots:
                    continue
                yield from self._check_class(module.path, cls, roots,
                                             model, policy)

    def _check_class(self, path, cls: ClassInfo, roots: List[str],
                     model: ProjectModel,
                     policy: LintPolicy) -> Iterator[Finding]:
        attrs = set()
        iterates_fields = False
        for root in roots:
            closure = model.method_closure(cls, root)
            attrs |= closure.attrs
            iterates_fields = iterates_fields or \
                closure.iterates_fields
        declared_volatile = frozenset(
            policy.hash_volatile_fields.get(cls.name, ()))
        unknown = declared_volatile - {name for name, _ in cls.fields}
        for name in sorted(unknown):
            yield Finding(
                path=str(path), line=cls.node.lineno,
                col=cls.node.col_offset, rule=self.rule,
                message=(f"policy declares volatile field "
                         f"{cls.name}.{name} which does not exist"),
                module=cls.module)
        for name, lineno in cls.fields:
            reached = iterates_fields or name in attrs
            if name in declared_volatile:
                if reached and not iterates_fields:
                    yield Finding(
                        path=str(path), line=lineno, col=0,
                        rule=self.rule,
                        message=(f"{cls.name}.{name} is declared "
                                 f"hash-volatile but reaches the "
                                 f"serializer {'/'.join(roots)}"),
                        module=cls.module)
                continue
            if not reached:
                yield Finding(
                    path=str(path), line=lineno, col=0,
                    rule=self.rule,
                    message=(f"{cls.name}.{name} never reaches the "
                             f"content-key serializer "
                             f"{'/'.join(roots)}; distinct values "
                             f"would collide on one cache key"),
                    module=cls.module)
