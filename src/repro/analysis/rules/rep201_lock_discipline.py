"""REP201 — lock discipline for shared mutable state.

A class that owns a ``threading.Lock`` has declared which of its
state is shared; the lock is only worth its cost if every write that
can race actually holds it.  The rule checks, for each lock-owning
class:

1. **In-owner writes** — an instance field written from a concurrent
   execution context (thread / HTTP handler / finalizer — see
   :mod:`repro.analysis.contexts`) must happen under one of the
   class's own locks.  ``__init__`` is exempt (no second thread can
   hold a reference yet), as are fields whose inferred type carries
   its own synchronisation (queues, events).  A private method whose
   every same-class call site already holds a lock is treated as
   running locked (``_adopt``-style helpers).
2. **Cross-class reads** — a concurrent method reading
   ``self.other.field`` where ``field`` is *guarded* (written under
   the owner's lock somewhere in the owning class) bypasses the
   owner's synchronisation; the fix is a locked accessor on the
   owner.

Classes without a modeled lock are out of scope — this rule audits
the discipline of classes that opted into locking, it does not decree
that every class must lock.  In-owner *reads* are likewise unchecked
(torn multi-field reads are what the cross-class check catches at the
consumer side); both bounds are documented in ``docs/lint-rules.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.analysis.contexts import ContextMap, context_map
from repro.analysis.findings import Finding
from repro.analysis.locks import class_lock_attrs, held_lock_map
from repro.analysis.model import ClassInfo, ModuleInfo, ProjectModel
from repro.analysis.policy import LintPolicy
from repro.analysis.registry import register


def _written_field(target: ast.expr) -> Iterator[str]:
    """Field names a store target writes through ``self``."""
    if isinstance(target, ast.Tuple):
        for elt in target.elts:
            yield from _written_field(elt)
        return
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and \
            isinstance(target.value, ast.Name) and \
            target.value.id in ("self", "cls"):
        yield target.attr


def _self_writes(fn: ast.FunctionDef, module: ModuleInfo,
                 policy: LintPolicy
                 ) -> Iterator[Tuple[str, ast.stmt]]:
    """``(field, statement)`` for every ``self.X`` write in ``fn``
    (assignments, augmented assigns, deletes, and mutator calls like
    ``self._busy.add(...)``)."""
    for node in ast.walk(fn):
        if module.enclosing_function(node) is not fn:
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for field in _written_field(target):
                    yield field, node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            for field in _written_field(node.target):
                yield field, node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                for field in _written_field(target):
                    yield field, node
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in policy.mutator_call_names:
            receiver = node.func.value
            while isinstance(receiver, ast.Subscript):
                receiver = receiver.value
            if isinstance(receiver, ast.Attribute) and \
                    isinstance(receiver.value, ast.Name) and \
                    receiver.value.id in ("self", "cls"):
                yield receiver.attr, node


@register
class LockDisciplineChecker:
    rule = "REP201"
    summary = ("fields of lock-owning classes are written (and read "
               "across classes) under the owning lock in concurrent "
               "contexts")

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]:
        contexts = context_map(model, policy)
        # class name -> fields written under the owner's lock; built
        # for every lock-owning class (even skipped modules) so the
        # cross-class pass knows what is guarded.
        guarded: Dict[str, FrozenSet[str]] = {}
        deferred: List[Finding] = []
        for module in model.modules_sorted():
            skip = self.rule in policy.skipped_rules(module.name)
            for cls in model.classes().get(module.name, ()):
                locks = class_lock_attrs(cls, policy)
                if not locks:
                    continue
                findings, fields = self._check_class(
                    model, module, cls, locks, policy, contexts)
                previous = guarded.get(cls.name, frozenset())
                guarded[cls.name] = previous | fields
                if not skip:
                    deferred.extend(findings)
        yield from deferred
        yield from self._cross_class_reads(model, policy, contexts,
                                           guarded)

    # ------------------------------------------------------------------
    def _check_class(self, model: ProjectModel, module: ModuleInfo,
                     cls: ClassInfo, locks: FrozenSet[str],
                     policy: LintPolicy, contexts: ContextMap
                     ) -> Tuple[List[Finding], FrozenSet[str]]:
        lock_exprs = frozenset(f"self.{name}" for name in locks)
        attr_types = model.attr_types(cls)
        held_maps = {name: held_lock_map(fn, lock_exprs)
                     for name, fn in cls.methods.items()}
        guarded: Set[str] = set()
        candidates: Dict[str, List[Tuple[str, ast.stmt]]] = {}
        for mname, fn in cls.methods.items():
            held = held_maps[mname]
            for field, stmt in _self_writes(fn, module, policy):
                if field in locks:
                    continue
                if attr_types.get(field) in policy.threadsafe_field_types:
                    continue
                if held.get(id(stmt)):
                    guarded.add(field)
                    continue
                if mname == "__init__":
                    continue
                if not contexts.is_concurrent(fn):
                    continue
                candidates.setdefault(mname, []).append((field, stmt))
        findings: List[Finding] = []
        for mname, items in candidates.items():
            if self._all_callers_hold_lock(module, cls, mname,
                                           held_maps):
                # The method is only ever entered with a lock held —
                # its writes are guarded at the call sites.
                guarded.update(field for field, _ in items)
                continue
            fn = cls.methods[mname]
            tags = "/".join(sorted(contexts.tags_of(fn)))
            pretty = " or ".join(f"self.{name}"
                                 for name in sorted(locks))
            for field, stmt in items:
                findings.append(Finding(
                    path=str(module.path), line=stmt.lineno,
                    col=stmt.col_offset, rule=self.rule,
                    message=(f"self.{field} is written from a {tags} "
                             f"context without holding {pretty}; "
                             f"{cls.name} guards its shared state "
                             f"with that lock"),
                    module=module.name))
        return findings, frozenset(guarded)

    @staticmethod
    def _all_callers_hold_lock(module: ModuleInfo, cls: ClassInfo,
                               method: str,
                               held_maps: Dict[str, Dict[int,
                                               FrozenSet[str]]]
                               ) -> bool:
        sites: List[FrozenSet[str]] = []
        for other, fn in cls.methods.items():
            if other == method:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr == method and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in ("self", "cls"):
                    sites.append(held_maps[other].get(id(node),
                                                      frozenset()))
        return bool(sites) and all(sites)

    # ------------------------------------------------------------------
    def _cross_class_reads(self, model: ProjectModel,
                           policy: LintPolicy, contexts: ContextMap,
                           guarded: Dict[str, FrozenSet[str]]
                           ) -> Iterator[Finding]:
        if not guarded:
            return
        for info in model.functions():
            if self.rule in policy.skipped_rules(info.module):
                continue
            if not contexts.is_concurrent(info.node):
                continue
            cls = model.class_of(info)
            if cls is None:
                continue
            attr_types = model.attr_types(cls)
            module = model.modules[info.module]
            parents = module.parent_map()
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Attribute) or \
                        not isinstance(node.ctx, ast.Load):
                    continue
                receiver = node.value
                if not (isinstance(receiver, ast.Attribute) and
                        isinstance(receiver.value, ast.Name) and
                        receiver.value.id in ("self", "cls")):
                    continue
                rtype = attr_types.get(receiver.attr)
                if rtype is None or rtype == cls.name:
                    continue
                fields = guarded.get(rtype)
                if not fields or node.attr not in fields:
                    continue
                parent = parents.get(id(node))
                if isinstance(parent, ast.Call) and \
                        parent.func is node:
                    continue  # a method call, not a state read
                yield Finding(
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(f"unlocked read of {rtype}.{node.attr}, "
                             f"which {rtype} writes under its own "
                             f"lock; add a locked accessor on "
                             f"{rtype} instead of reaching into its "
                             f"state"),
                    module=module.name)
