"""The lint driver: paths in, suppressed-filtered findings out."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.policy import LintPolicy, default_policy
from repro.analysis.registry import checker_for, resolve_rules
from repro.analysis.suppressions import is_suppressed
from repro.errors import LintError

__all__ = ["LintResult", "find_package_root", "run_lint"]


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]
    rules: Tuple[str, ...]
    files_scanned: int
    suppressed: int
    restricted_to: Tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.findings

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def find_package_root(path: Path) -> Path:
    """Ascend from ``path`` to the outermost directory that is still a
    package (has ``__init__.py``)."""
    current = path.resolve()
    if current.is_file():
        current = current.parent
    if not (current / "__init__.py").is_file():
        raise LintError(
            f"{path} is not inside a python package "
            f"(no __init__.py found)")
    while (current.parent / "__init__.py").is_file():
        current = current.parent
    return current


def _normalize_paths(paths: Sequence[Path]
                     ) -> Tuple[List[Path], Set[Path]]:
    """``(package roots, file restrictions)`` for the given paths.

    A directory lints the whole package it belongs to; a single file
    also loads its whole package (cross-file rules need the full
    import graph) but restricts *reported* findings to that file.
    """
    roots: List[Path] = []
    restrict: Set[Path] = set()
    for raw in paths:
        path = Path(raw).resolve()
        if not path.exists():
            raise LintError(f"no such path: {raw}")
        if path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a python file: {raw}")
            restrict.add(path)
        root = find_package_root(path)
        if root not in roots:
            roots.append(root)
    return sorted(roots), restrict


def run_lint(paths: Sequence[Path],
             select: Iterable[str] = (),
             ignore: Iterable[str] = (),
             policy: Optional[LintPolicy] = None) -> LintResult:
    """Lint the packages containing ``paths``.

    Builds one :class:`ProjectModel`, runs the selected rules, drops
    findings carrying a ``# repro: noqa`` marker, and returns the rest
    sorted by location.  ``policy=None`` uses this repository's
    :func:`~repro.analysis.policy.default_policy`.
    """
    if not paths:
        raise LintError("repro lint needs at least one path")
    active_policy = policy if policy is not None else default_policy()
    roots, restrict = _normalize_paths(list(paths))
    model = ProjectModel(roots)
    rules = resolve_rules(select=select, ignore=ignore)

    raw: List[Finding] = []
    for rule in rules:
        raw.extend(checker_for(rule).check(model, active_policy))

    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        module = model.modules.get(finding.module)
        lines = module.source_lines if module is not None else []
        if is_suppressed(lines, finding.line, finding.rule):
            suppressed += 1
            continue
        if restrict and Path(finding.path) not in restrict:
            continue
        kept.append(finding)

    return LintResult(
        findings=tuple(sorted(set(kept))),
        rules=tuple(rules),
        files_scanned=len(model.modules),
        suppressed=suppressed,
        restricted_to=tuple(sorted(str(p) for p in restrict)))
