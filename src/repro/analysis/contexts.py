"""Execution-context classification for the REP2xx rules.

Every function in the project is classified into the execution
contexts it can run in:

- ``thread`` — reachable from a ``threading.Thread(target=...)`` (or
  ``Timer``) spawn site: the supervisor's ``_slot_loop`` slots, the
  HTTP server's ``serve_forever`` thread.
- ``http`` — reachable from a ``do_*`` method of a request-handler
  class (``BaseHTTPRequestHandler`` subclasses): one thread per
  request under ``ThreadingHTTPServer``.
- ``process`` — reachable from a ``Process(target=...)`` spawn site
  or an after-fork callback: runs in a forked child with copied (not
  shared) memory.
- ``finalizer`` — reachable from an ``atexit.register`` /
  ``weakref.finalize`` / ``multiprocessing.util.Finalize`` /
  ``register_after_fork`` / ``os.register_at_fork`` registration:
  runs at interpreter teardown or immediately post-fork, where
  arbitrary locks may be held by threads that no longer exist.

Functions in none of those sets run only on the main thread
(``main``).  Reachability follows the receiver-typed call graph
(:meth:`ProjectModel.resolved_calls`): ``self.x()`` and typed
attribute calls resolve precisely; only unknown receivers fall back
to name matching bounded by the policy stop-name list.  The model is
conservative in the over-approximating direction — a function tagged
``thread`` *may* run there; untagged functions provably (up to the
call-graph approximation) do not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.model import (FunctionInfo, ModuleInfo,
                                  ProjectModel, call_name)
from repro.analysis.policy import LintPolicy

__all__ = ["CONCURRENT_TAGS", "TAG_FINALIZER", "TAG_HTTP",
           "TAG_MAIN", "TAG_PROCESS", "TAG_THREAD", "ContextMap",
           "SpawnSite", "context_map"]

TAG_THREAD = "thread"
TAG_HTTP = "http"
TAG_PROCESS = "process"
TAG_FINALIZER = "finalizer"
TAG_MAIN = "main"

#: Contexts that share the owning process's memory with other live
#: execution — where unsynchronised writes are races.  ``process`` is
#: deliberately absent: a forked child has its *own* copy of the
#: parent's heap, so cross-context writes there are fork-safety
#: questions (REP202), not data races.
CONCURRENT_TAGS = frozenset({TAG_THREAD, TAG_HTTP, TAG_FINALIZER})


@dataclass(frozen=True)
class SpawnSite:
    """One detected context root: where, what tag, which function."""

    tag: str
    module: str
    line: int
    target_qualname: str


class ContextMap:
    """Per-function execution tags plus the spawn sites behind them."""

    def __init__(self, tags: Dict[int, FrozenSet[str]],
                 sites: List[SpawnSite]) -> None:
        self._tags = tags
        self.sites = tuple(sites)

    def tags_of(self, node: ast.AST) -> FrozenSet[str]:
        """Concurrency tags of a function node (empty = main only)."""
        return self._tags.get(id(node), frozenset())

    def contexts_of(self, node: ast.AST) -> FrozenSet[str]:
        """Tags, with ``main`` for untagged functions."""
        tags = self.tags_of(node)
        return tags if tags else frozenset({TAG_MAIN})

    def is_concurrent(self, node: ast.AST) -> bool:
        """Whether the function runs in a shared-memory context that
        races with other execution."""
        return bool(self.tags_of(node) & CONCURRENT_TAGS)


def _registration_targets(call: ast.Call,
                          policy: LintPolicy
                          ) -> List[Tuple[str, ast.expr]]:
    """``(tag, callable expr)`` pairs a call registers, if any."""
    name = call_name(call)
    if name is None:
        return []
    out: List[Tuple[str, ast.expr]] = []
    target_kw = next((kw.value for kw in call.keywords
                      if kw.arg == "target"), None)
    if name in policy.thread_spawn_callees and target_kw is not None:
        out.append((TAG_THREAD, target_kw))
    if name in policy.process_spawn_callees and target_kw is not None:
        out.append((TAG_PROCESS, target_kw))
    if name == "register" and call.args:
        # ``atexit.register(f, ...)`` — only the atexit spelling; a
        # bare ``register`` without the module prefix stays untagged.
        dotted = ast.unparse(call.func) if isinstance(
            call.func, ast.Attribute) else None
        if dotted is not None and dotted.endswith("atexit.register"):
            out.append((TAG_FINALIZER, call.args[0]))
    if name == "finalize" and len(call.args) >= 2:
        out.append((TAG_FINALIZER, call.args[1]))
    if name == "Finalize" and len(call.args) >= 2:
        out.append((TAG_FINALIZER, call.args[1]))
    if name == "register_after_fork" and len(call.args) >= 2:
        out.append((TAG_PROCESS, call.args[1]))
        out.append((TAG_FINALIZER, call.args[1]))
    if name == "register_at_fork":
        for kw in call.keywords:
            if kw.arg == "after_in_child":
                out.append((TAG_PROCESS, kw.value))
                out.append((TAG_FINALIZER, kw.value))
    return out


def _resolve_target(model: ProjectModel, module: ModuleInfo,
                    expr: ast.expr) -> List[FunctionInfo]:
    """The function definitions a spawn-target expression names."""
    by_id = model.functions_by_id()
    index = model.class_index()
    if isinstance(expr, ast.Name):
        same_module = [info for info
                       in model.functions_by_name(expr.id)
                       if info.module == module.name]
        return same_module or list(model.functions_by_name(expr.id))
    if isinstance(expr, ast.Attribute):
        # ``self._slot_loop`` — the enclosing class's method.
        if isinstance(expr.value, ast.Name) and \
                expr.value.id in ("self", "cls"):
            for ancestor in module.ancestors(expr):
                if isinstance(ancestor, ast.ClassDef):
                    for cls in index.get(ancestor.name, ()):
                        method = cls.methods.get(expr.attr)
                        if method is not None and \
                                id(method) in by_id:
                            return [by_id[id(method)]]
                    break
            return []
        # ``WorkerProcess._close_parent_end`` — a class attribute.
        if isinstance(expr.value, ast.Name) and \
                expr.value.id in index:
            out = []
            for cls in index[expr.value.id]:
                method = cls.methods.get(expr.attr)
                if method is not None and id(method) in by_id:
                    out.append(by_id[id(method)])
            return out
        # ``server.serve_forever`` and friends: try a name match so a
        # project-defined method still roots its context.
        return list(model.functions_by_name(expr.attr))
    return []


def _spawn_sites(model: ProjectModel,
                 policy: LintPolicy
                 ) -> List[Tuple[str, FunctionInfo, SpawnSite]]:
    """Every detected context root as ``(tag, function, site)``."""
    roots: List[Tuple[str, FunctionInfo, SpawnSite]] = []
    by_id = model.functions_by_id()
    for module in model.modules_sorted():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = {base.id if isinstance(base, ast.Name)
                         else base.attr
                         for base in node.bases
                         if isinstance(base, (ast.Name, ast.Attribute))}
                if bases & policy.http_handler_bases:
                    for stmt in node.body:
                        if isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)) \
                                and stmt.name.startswith("do_") and \
                                id(stmt) in by_id:
                            info = by_id[id(stmt)]
                            roots.append((TAG_HTTP, info, SpawnSite(
                                tag=TAG_HTTP, module=module.name,
                                line=stmt.lineno,
                                target_qualname=info.qualname)))
                continue
            if not isinstance(node, ast.Call):
                continue
            for tag, expr in _registration_targets(node, policy):
                for info in _resolve_target(model, module, expr):
                    roots.append((tag, info, SpawnSite(
                        tag=tag, module=module.name, line=node.lineno,
                        target_qualname=info.qualname)))
    return roots


def context_map(model: ProjectModel, policy: LintPolicy) -> ContextMap:
    """Classify every project function into its execution contexts.

    Cached on the model instance — the six REP2xx rules share one
    classification per lint run.
    """
    cached = getattr(model, "_context_map_cache", None)
    if cached is not None:
        return cached
    model.functions()
    tags: Dict[int, Set[str]] = {}
    sites: List[SpawnSite] = []
    roots = _spawn_sites(model, policy)
    sites.extend(site for _, _, site in roots)
    stop_names = policy.call_graph_stop_names
    for tag in (TAG_THREAD, TAG_HTTP, TAG_PROCESS, TAG_FINALIZER):
        frontier = [info for root_tag, info, _ in roots
                    if root_tag == tag]
        seen: Set[int] = set()
        while frontier:
            info = frontier.pop()
            if id(info.node) in seen:
                continue
            seen.add(id(info.node))
            tags.setdefault(id(info.node), set()).add(tag)
            frontier.extend(model.resolved_calls(info, stop_names))
    frozen = {node_id: frozenset(found)
              for node_id, found in tags.items()}
    result = ContextMap(frozen, sites)
    model._context_map_cache = result
    return result
