"""Held-lock modeling for the REP2xx rules.

Which locks exist (``self._lock = threading.Lock()`` attributes,
module-level ``_registry_lock = threading.Lock()`` globals) and — per
statement inside one function — which of them are held.  The dataflow
is intraprocedural and structural:

- ``with self._lock:`` (including multi-item and nested ``with``)
  adds the lock for the body;
- a local alias ``lock = self._lock`` followed by ``with lock:``
  counts as the same lock;
- bare ``.acquire()`` / ``.release()`` calls are tracked linearly
  within a statement list (an approximation: a ``release`` inside
  only one branch of an ``if`` still ends the region — documented in
  ``docs/lint-rules.md``).

Lock names are dotted receiver strings (``self._lock``,
``_registry_lock``): two methods of the same class naming
``self._lock`` model the same lock; distinct instances are not
distinguished (conservative for REP201, whose question is "was *the
owning* lock held", not "which instance").
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Set

from repro.analysis.model import ClassInfo, ModuleInfo, dotted_name
from repro.analysis.policy import LintPolicy

__all__ = ["class_lock_attrs", "held_lock_map", "module_lock_globals"]


def _is_lock_factory(value: ast.expr, policy: LintPolicy) -> bool:
    """Whether an assigned expression constructs a modeled lock
    (including the ``lock or threading.Lock()`` default idiom)."""
    if isinstance(value, ast.BoolOp):
        return any(_is_lock_factory(operand, policy)
                   for operand in value.values)
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    return name in policy.lock_factory_callees


def class_lock_attrs(cls: ClassInfo, policy: LintPolicy
                     ) -> FrozenSet[str]:
    """``self.X`` attributes assigned a lock constructor anywhere in
    the class."""
    found: Set[str] = set()
    for method in cls.methods.values():
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and \
                    node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id in ("self", "cls") and \
                    _is_lock_factory(value, policy):
                found.add(target.attr)
    return frozenset(found)


def module_lock_globals(module: ModuleInfo, policy: LintPolicy
                        ) -> FrozenSet[str]:
    """Module-level names assigned a lock constructor."""
    found: Set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) and \
                _is_lock_factory(stmt.value, policy):
            found.add(stmt.targets[0].id)
    return frozenset(found)


def _acquire_release(stmt: ast.stmt,
                     lock_exprs: Set[str]) -> "tuple[Set[str], Set[str]]":
    """Locks a simple statement acquires/releases via method calls."""
    acquired: Set[str] = set()
    released: Set[str] = set()
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute):
            continue
        receiver = dotted_name(node.func.value)
        if receiver is None or receiver not in lock_exprs:
            continue
        if node.func.attr == "acquire":
            acquired.add(receiver)
        elif node.func.attr == "release":
            released.add(receiver)
    return acquired, released


def held_lock_map(func: ast.FunctionDef,
                  lock_exprs: Iterable[str]
                  ) -> Dict[int, FrozenSet[str]]:
    """``id(node) -> held locks`` for every node in one function.

    ``lock_exprs`` are the dotted lock names in scope for the
    function (``self._lock``, module globals); local aliases of them
    are folded in by a pre-pass.
    """
    exprs: Set[str] = set(lock_exprs)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            source = dotted_name(node.value)
            if source in exprs:
                exprs.add(node.targets[0].id)
    held: Dict[int, FrozenSet[str]] = {}

    def mark(node: ast.AST, current: FrozenSet[str]) -> None:
        for sub in ast.walk(node):
            held[id(sub)] = current

    def visit_block(stmts: List[ast.stmt],
                    incoming: FrozenSet[str]) -> None:
        linear: Set[str] = set()
        for stmt in stmts:
            current = frozenset(incoming | linear)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                held[id(stmt)] = current
                newly: Set[str] = set()
                for item in stmt.items:
                    mark(item.context_expr, current)
                    if item.optional_vars is not None:
                        mark(item.optional_vars, current)
                    name = dotted_name(item.context_expr)
                    if name in exprs:
                        newly.add(name)
                visit_block(stmt.body, frozenset(current | newly))
            elif isinstance(stmt, (ast.If, ast.While)):
                held[id(stmt)] = current
                mark(stmt.test, current)
                visit_block(stmt.body, current)
                visit_block(stmt.orelse, current)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                held[id(stmt)] = current
                mark(stmt.iter, current)
                mark(stmt.target, current)
                visit_block(stmt.body, current)
                visit_block(stmt.orelse, current)
            elif isinstance(stmt, ast.Try):
                held[id(stmt)] = current
                visit_block(stmt.body, current)
                for handler in stmt.handlers:
                    held[id(handler)] = current
                    if handler.type is not None:
                        mark(handler.type, current)
                    visit_block(handler.body, current)
                visit_block(stmt.orelse, current)
                visit_block(stmt.finalbody, current)
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                # A nested def's *body* runs later, in whatever
                # context calls it — not under the current lock.
                mark(stmt, frozenset())
                held[id(stmt)] = current
            else:
                mark(stmt, current)
                acquired, released = _acquire_release(stmt, exprs)
                linear |= acquired
                linear -= released

    visit_block(func.body, frozenset())
    return held
