"""The module policy map: where each invariant applies and why not
elsewhere.

Checkers are generic AST machinery; everything repository-specific —
which modules are compute-reachable, which module owns shared memory,
which layers must raise typed errors, which dataclass fields are
deliberately volatile — lives in one :class:`LintPolicy` value.  Tests
construct bespoke policies around fixture packages; the shipped
default (:func:`default_policy`) encodes this repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Set, Tuple

__all__ = ["LintPolicy", "default_policy"]


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@dataclass(frozen=True)
class LintPolicy:
    """Repository-specific scoping of the REP1xx rules.

    Attributes
    ----------
    compute_roots:
        Modules whose import closure defines "compute-reachable" for
        REP101 — anything a simulated result can depend on.
    module_rule_skips:
        ``(module-prefix, rules, reason)`` triples: the named rules do
        not apply under the prefix.  The reason string is documentation
        — every hole in an invariant should say why it is safe.
    shm_owner_modules:
        The only modules allowed to call ``SharedMemory`` directly
        (REP104); everyone else must use their helpers.
    shm_unlink_callees:
        Call names that count as releasing a created segment on an
        exception path.
    shm_untrack_callees:
        Call names that count as detaching a handle from the resource
        tracker.
    hot_roots:
        Function names whose call closure is the engine hot path for
        REP105 (the vertex-program scan loops).
    obs_call_names:
        Telemetry entry points that must be gated on the hot path.
    obs_gate_names:
        Call names whose truth gates telemetry (``metrics.enabled``).
    error_scope_prefixes:
        Module prefixes where REP106 demands typed errors.
    error_bare_names:
        The builtin exception names REP106 rejects.
    hash_method_names:
        Method names that mark a dataclass as content-hashed (REP103
        starts its serializer closure there).
    hash_volatile_fields:
        Per-class fields deliberately excluded from the content hash
        (none today — the map exists so an exclusion must be spelled
        out here, reviewed, rather than silently omitted).
    extra_hash_classes:
        ``class name -> serializer method`` for dataclasses without
        their own hash method whose serializer still feeds another
        class's content key (e.g. ``DeploymentSpec.to_dict`` inside
        ``Job.canonical_dict``).
    volatile_extra_keys:
        ``RunStats.extra`` keys carrying wall-clock telemetry; REP105
        forbids them anywhere in a content-hash closure.
    identity_contracts:
        ``class -> (method, constant)``: the method must strip the
        named volatile-keys constant, and the constant must cover
        ``volatile_extra_keys``.
    """

    compute_roots: Tuple[str, ...] = ()
    module_rule_skips: Tuple[Tuple[str, Tuple[str, ...], str], ...] = ()
    shm_owner_modules: Tuple[str, ...] = ()
    shm_unlink_callees: FrozenSet[str] = frozenset(
        {"unlink", "unlink_segment", "cleanup_segments",
         "_release_claim"})
    shm_untrack_callees: FrozenSet[str] = frozenset({"_untrack"})
    hot_roots: Tuple[str, ...] = ()
    obs_call_names: FrozenSet[str] = frozenset(
        {"span", "counter", "gauge", "histogram", "get_registry"})
    obs_gate_names: FrozenSet[str] = frozenset({"enabled"})
    #: Call names too generic to follow when expanding the hot-path
    #: call closure — ``events.get(...)`` must not drag every project
    #: ``def get`` (e.g. ``ResultCache.get``) onto the engine hot path.
    call_graph_stop_names: FrozenSet[str] = frozenset(
        {"get", "items", "keys", "values", "pop", "append", "update",
         "copy", "close", "add", "set", "put", "run", "join", "read",
         "write", "extend", "clear", "sort", "index"})
    error_scope_prefixes: Tuple[str, ...] = ()
    error_bare_names: FrozenSet[str] = frozenset(
        {"ValueError", "RuntimeError", "KeyError", "Exception"})
    hash_method_names: FrozenSet[str] = frozenset(
        {"content_hash", "content_key"})
    hash_volatile_fields: Mapping[str, FrozenSet[str]] = \
        field(default_factory=dict)
    extra_hash_classes: Mapping[str, str] = field(default_factory=dict)
    volatile_extra_keys: Tuple[str, ...] = ("trace",)
    identity_contracts: Mapping[str, Tuple[str, str]] = \
        field(default_factory=dict)

    # ------------------------------------------------------------------
    def skipped_rules(self, module: str) -> Set[str]:
        """Rules the policy map switches off for ``module``."""
        skipped: Set[str] = set()
        for prefix, rules, _reason in self.module_rule_skips:
            if _prefix_match(module, prefix):
                skipped.update(rules)
        return skipped

    def skip_reasons(self) -> Dict[str, Tuple[Tuple[str, ...], str]]:
        """``prefix -> (rules, reason)`` for documentation output."""
        return {prefix: (rules, reason)
                for prefix, rules, reason in self.module_rule_skips}

    def in_error_scope(self, module: str) -> bool:
        return any(_prefix_match(module, prefix)
                   for prefix in self.error_scope_prefixes)

    def is_shm_owner(self, module: str) -> bool:
        return module in self.shm_owner_modules


def default_policy() -> LintPolicy:
    """The policy of *this* repository."""
    return LintPolicy(
        # A simulated result is produced by the mapper/engine stack and
        # delivered through the batch runner; everything either imports
        # is compute-reachable and must stay deterministic.
        compute_roots=(
            "repro.core.mac_mapper",
            "repro.core.addop_mapper",
            "repro.runtime.runner",
        ),
        module_rule_skips=(
            ("repro.obs", ("REP101", "REP105"),
             "telemetry implementation: owns wall-clock timestamps "
             "and is itself the instrumentation REP105 gates"),
            ("repro.service", ("REP101",),
             "daemon bookkeeping (uptime, queue timestamps) is "
             "observational and never feeds simulated results"),
            ("repro.runtime.cache", ("REP101",),
             "scratch-directory aging needs wall-clock time; eviction "
             "is size-bounding, never correctness-affecting"),
            ("repro.runtime.residency", ("REP101",),
             "stale-claim aging needs wall-clock time; segment "
             "contents stay content-keyed and deterministic"),
        ),
        shm_owner_modules=("repro.runtime.residency",),
        hot_roots=("run_mac_scan", "run_addop_scan"),
        error_scope_prefixes=("repro.runtime", "repro.service",
                              "repro.algorithms"),
        hash_volatile_fields={},
        extra_hash_classes={"DeploymentSpec": "to_dict"},
        volatile_extra_keys=("trace",),
        identity_contracts={
            "RunStats": ("identity_dict", "VOLATILE_EXTRA_KEYS"),
        },
    )
