"""The module policy map: where each invariant applies and why not
elsewhere.

Checkers are generic AST machinery; everything repository-specific —
which modules are compute-reachable, which module owns shared memory,
which layers must raise typed errors, which dataclass fields are
deliberately volatile — lives in one :class:`LintPolicy` value.  Tests
construct bespoke policies around fixture packages; the shipped
default (:func:`default_policy`) encodes this repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

__all__ = ["LintPolicy", "default_policy"]


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@dataclass(frozen=True)
class LintPolicy:
    """Repository-specific scoping of the REP1xx rules.

    Attributes
    ----------
    compute_roots:
        Modules whose import closure defines "compute-reachable" for
        REP101 — anything a simulated result can depend on.
    module_rule_skips:
        ``(module-prefix, rules, reason)`` triples: the named rules do
        not apply under the prefix.  The reason string is documentation
        — every hole in an invariant should say why it is safe.
    shm_owner_modules:
        The only modules allowed to call ``SharedMemory`` directly
        (REP104); everyone else must use their helpers.
    shm_unlink_callees:
        Call names that count as releasing a created segment on an
        exception path.
    shm_untrack_callees:
        Call names that count as detaching a handle from the resource
        tracker.
    hot_roots:
        Function names whose call closure is the engine hot path for
        REP105 (the vertex-program scan loops).
    obs_call_names:
        Telemetry entry points that must be gated on the hot path.
    obs_gate_names:
        Call names whose truth gates telemetry (``metrics.enabled``).
    error_scope_prefixes:
        Module prefixes where REP106 demands typed errors.
    error_bare_names:
        The builtin exception names REP106 rejects.
    hash_method_names:
        Method names that mark a dataclass as content-hashed (REP103
        starts its serializer closure there).
    hash_volatile_fields:
        Per-class fields deliberately excluded from the content hash
        (none today — the map exists so an exclusion must be spelled
        out here, reviewed, rather than silently omitted).
    extra_hash_classes:
        ``class name -> serializer method`` for dataclasses without
        their own hash method whose serializer still feeds another
        class's content key (e.g. ``DeploymentSpec.to_dict`` inside
        ``Job.canonical_dict``).
    volatile_extra_keys:
        ``RunStats.extra`` keys carrying wall-clock telemetry; REP105
        forbids them anywhere in a content-hash closure.
    identity_contracts:
        ``class -> (method, constant)``: the method must strip the
        named volatile-keys constant, and the constant must cover
        ``volatile_extra_keys``.
    thread_spawn_callees / process_spawn_callees:
        Constructor names whose ``target=`` argument roots a thread /
        worker-process execution context (REP2xx context model).
    http_handler_bases:
        Base-class names whose ``do_*`` methods root the HTTP handler
        thread context.
    lock_factory_callees:
        Constructor names that make a ``self.X`` attribute (or module
        global) a modeled lock for REP201/REP204.
    threadsafe_field_types:
        Attribute types whose own synchronisation REP201 trusts
        (queues, events): writes through them need no owning lock.
    mutator_call_names:
        Method names that count as writing the receiver attribute
        (``self._busy.add(...)`` mutates ``_busy``).
    fork_unsafe_factories:
        Dotted constructor names whose pre-fork products (locks,
        sqlite connections, sockets, shm handles) REP202 bans from
        worker-process contexts.
    blocking_bare_calls:
        Call names that block indefinitely without a timeout argument
        or a ``poll(...)`` guard (REP203), matched by bare name.
    blocking_typed_calls:
        ``(method name, receiver types)`` pairs REP203/REP204 treat as
        blocking only when the receiver's inferred type matches —
        keeps ``dict.get`` and ``str.join`` out of scope.
    blocking_wait_allowed:
        ``(function qualname-prefix, reason)`` pairs: REP203 findings
        inside matching functions are deliberate design, recorded
        here rather than suppressed inline.
    lock_blocking_callees:
        Call names REP204 refuses to see under a held modeled lock
        (sleeps, pipe/socket traffic, recursive tree I/O).
    finalizer_allowed_calls:
        The reentrant-safe closure: the only unresolved call names an
        atexit/finalizer context may make (REP205).
    claim_acquire_callees / claim_release_callees:
        The shm claim protocol's acquire/release function names;
        REP206 checks every acquire is released on all paths.
    """

    compute_roots: Tuple[str, ...] = ()
    module_rule_skips: Tuple[Tuple[str, Tuple[str, ...], str], ...] = ()
    shm_owner_modules: Tuple[str, ...] = ()
    shm_unlink_callees: FrozenSet[str] = frozenset(
        {"unlink", "unlink_segment", "cleanup_segments",
         "_release_claim"})
    shm_untrack_callees: FrozenSet[str] = frozenset({"_untrack"})
    hot_roots: Tuple[str, ...] = ()
    obs_call_names: FrozenSet[str] = frozenset(
        {"span", "counter", "gauge", "histogram", "get_registry"})
    obs_gate_names: FrozenSet[str] = frozenset({"enabled"})
    #: Call names too generic to follow when expanding the hot-path
    #: call closure — ``events.get(...)`` must not drag every project
    #: ``def get`` (e.g. ``ResultCache.get``) onto the engine hot path.
    call_graph_stop_names: FrozenSet[str] = frozenset(
        {"get", "items", "keys", "values", "pop", "append", "update",
         "copy", "close", "add", "set", "put", "run", "join", "read",
         "write", "extend", "clear", "sort", "index", "start",
         "finish", "stop"})
    error_scope_prefixes: Tuple[str, ...] = ()
    error_bare_names: FrozenSet[str] = frozenset(
        {"ValueError", "RuntimeError", "KeyError", "Exception"})
    hash_method_names: FrozenSet[str] = frozenset(
        {"content_hash", "content_key"})
    hash_volatile_fields: Mapping[str, FrozenSet[str]] = \
        field(default_factory=dict)
    extra_hash_classes: Mapping[str, str] = field(default_factory=dict)
    volatile_extra_keys: Tuple[str, ...] = ("trace",)
    identity_contracts: Mapping[str, Tuple[str, str]] = \
        field(default_factory=dict)
    # ---- REP2xx concurrency model ------------------------------------
    thread_spawn_callees: FrozenSet[str] = frozenset(
        {"Thread", "Timer"})
    process_spawn_callees: FrozenSet[str] = frozenset({"Process"})
    http_handler_bases: FrozenSet[str] = frozenset(
        {"BaseHTTPRequestHandler"})
    lock_factory_callees: FrozenSet[str] = frozenset(
        {"Lock", "RLock", "Condition"})
    threadsafe_field_types: FrozenSet[str] = frozenset(
        {"Queue", "PriorityQueue", "LifoQueue", "SimpleQueue",
         "JoinableQueue", "Event", "Semaphore", "BoundedSemaphore",
         "Barrier", "Lock", "RLock", "Condition"})
    mutator_call_names: FrozenSet[str] = frozenset(
        {"append", "appendleft", "add", "remove", "discard", "clear",
         "pop", "popleft", "popitem", "extend", "update", "insert",
         "setdefault", "move_to_end", "sort"})
    fork_unsafe_factories: FrozenSet[str] = frozenset(
        {"threading.Lock", "threading.RLock", "threading.Condition",
         "threading.Semaphore", "threading.BoundedSemaphore",
         "sqlite3.connect", "socket.socket",
         "multiprocessing.shared_memory.SharedMemory",
         "shared_memory.SharedMemory"})
    blocking_bare_calls: FrozenSet[str] = frozenset(
        {"recv", "recv_bytes", "accept"})
    blocking_typed_calls: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("get", ("Queue", "PriorityQueue", "LifoQueue", "SimpleQueue",
                 "JoinableQueue")),
        ("join", ("Thread", "Process")),
        ("wait", ("Event", "Condition")),
    )
    blocking_wait_allowed: Tuple[Tuple[str, str], ...] = ()
    lock_blocking_callees: FrozenSet[str] = frozenset(
        {"sleep", "recv", "recv_bytes", "send", "send_bytes",
         "rmtree", "copytree", "urlopen", "accept", "connect"})
    finalizer_allowed_calls: FrozenSet[str] = frozenset(
        {"getpid", "rmtree", "close", "unlink", "exists", "is_dir",
         "isdir", "Lock", "RLock", "len", "str", "repr"})
    claim_acquire_callees: FrozenSet[str] = frozenset()
    claim_release_callees: FrozenSet[str] = frozenset()

    # ------------------------------------------------------------------
    def skipped_rules(self, module: str) -> Set[str]:
        """Rules the policy map switches off for ``module``."""
        skipped: Set[str] = set()
        for prefix, rules, _reason in self.module_rule_skips:
            if _prefix_match(module, prefix):
                skipped.update(rules)
        return skipped

    def skip_reasons(self) -> Dict[str, Tuple[Tuple[str, ...], str]]:
        """``prefix -> (rules, reason)`` for documentation output."""
        return {prefix: (rules, reason)
                for prefix, rules, reason in self.module_rule_skips}

    def in_error_scope(self, module: str) -> bool:
        return any(_prefix_match(module, prefix)
                   for prefix in self.error_scope_prefixes)

    def is_shm_owner(self, module: str) -> bool:
        return module in self.shm_owner_modules

    def blocking_wait_reason(self, qualname: str) -> Optional[str]:
        """The recorded reason a function may block without a
        timeout, or ``None`` if it may not."""
        for prefix, reason in self.blocking_wait_allowed:
            if qualname == prefix or qualname.startswith(prefix + "."):
                return reason
        return None

    def typed_blocking_receivers(self, name: str) -> Tuple[str, ...]:
        """Receiver types for which ``name`` is a blocking call."""
        for method, types in self.blocking_typed_calls:
            if method == name:
                return types
        return ()


def default_policy() -> LintPolicy:
    """The policy of *this* repository."""
    return LintPolicy(
        # A simulated result is produced by the mapper/engine stack and
        # delivered through the batch runner; everything either imports
        # is compute-reachable and must stay deterministic.
        compute_roots=(
            "repro.core.mac_mapper",
            "repro.core.addop_mapper",
            "repro.runtime.runner",
        ),
        module_rule_skips=(
            ("repro.obs", ("REP101", "REP105"),
             "telemetry implementation: owns wall-clock timestamps "
             "and is itself the instrumentation REP105 gates"),
            ("repro.service", ("REP101",),
             "daemon bookkeeping (uptime, queue timestamps) is "
             "observational and never feeds simulated results"),
            ("repro.runtime.cache", ("REP101",),
             "scratch-directory aging needs wall-clock time; eviction "
             "is size-bounding, never correctness-affecting"),
            ("repro.runtime.residency", ("REP101",),
             "stale-claim aging needs wall-clock time; segment "
             "contents stay content-keyed and deterministic"),
        ),
        shm_owner_modules=("repro.runtime.residency",),
        hot_roots=("run_mac_scan", "run_addop_scan"),
        error_scope_prefixes=("repro.runtime", "repro.service",
                              "repro.algorithms"),
        hash_volatile_fields={},
        extra_hash_classes={"DeploymentSpec": "to_dict"},
        volatile_extra_keys=("trace",),
        identity_contracts={
            "RunStats": ("identity_dict", "VOLATILE_EXTRA_KEYS"),
        },
        blocking_wait_allowed=(
            ("repro.runtime.scheduler:worker_loop",
             "the worker's request pipe blocks forever by design: the "
             "parent ends a worker with a shutdown sentinel or by "
             "closing the pipe (EOFError), so a timeout would only "
             "add an idle wake-up loop"),
        ),
        claim_acquire_callees=frozenset({"_claim_build"}),
        claim_release_callees=frozenset({"_release_claim"}),
    )
