"""The project model cross-file checkers query.

One :class:`ProjectModel` is built per lint run from the package
directories under analysis.  It offers four views the rules share:

- **modules** — every ``*.py`` file, parsed once, with a parent map so
  checkers can walk *up* from a node (enclosing statement, function).
- **import graph** — project-internal edges only, with relative
  imports resolved, powering "compute-reachable" scoping (REP101).
- **class tables** — dataclass fields and per-class method ASTs, plus
  the transitive ``self.*`` closure of any method, powering the
  content-key completeness and volatile-key purity checks (REP103,
  REP105).
- **call closure** — a name-matched function reachability set from
  the vertex-program scan loops, powering hot-path telemetry gating
  (REP105).

Everything is stdlib ``ast``; name-matched call edges are
approximate by design (documented in ``docs/lint-rules.md``) and
bounded by the policy's stop-name list.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import LintError

__all__ = ["ClassInfo", "ClosureInfo", "FunctionInfo", "ModuleInfo",
           "ProjectModel", "call_name", "dotted_name"]


def call_name(node: ast.Call) -> Optional[str]:
    """The bare name a call resolves through (``f()`` and ``o.f()``
    are both ``"f"``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    tree: ast.Module
    source_lines: List[str]
    is_package: bool
    _parents: Optional[Dict[int, ast.AST]] = field(default=None,
                                                   repr=False)

    def parent_map(self) -> Dict[int, ast.AST]:
        """``id(child) -> parent`` over the whole tree (built once)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        parents = self.parent_map()
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def enclosing_function(self, node: ast.AST
                           ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return ancestor
        return None


@dataclass
class FunctionInfo:
    """One function/method definition, indexed for the call graph."""

    module: str
    qualname: str
    node: ast.FunctionDef


@dataclass
class ClassInfo:
    """One class definition with its dataclass field table."""

    module: str
    name: str
    node: ast.ClassDef
    is_dataclass: bool
    #: ``(field name, lineno)`` of every dataclass field, in order.
    fields: List[Tuple[str, int]]
    methods: Dict[str, ast.FunctionDef]


@dataclass
class ClosureInfo:
    """Transitive ``self.*`` usage of a method within its class."""

    #: Every ``self.<attr>`` referenced (fields, methods, properties).
    attrs: Set[str]
    #: Class methods the closure walked through.
    methods_visited: Set[str]
    #: Whether ``dataclasses.fields(self)`` is iterated anywhere —
    #: which covers every field by construction.
    iterates_fields: bool
    #: ``(literal, lineno, method)`` for every string used as a dict
    #: key or subscript index inside the closure.
    str_keys: List[Tuple[str, int, str]]


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    found: List[Tuple[str, int]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or \
                not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        found.append((stmt.target.id, stmt.lineno))
    return found


class _MethodScan(ast.NodeVisitor):
    """Collects one method's self-attribute reads, ``fields(self)``
    iteration, and string keys."""

    def __init__(self) -> None:
        self.attrs: Set[str] = set()
        self.iterates_fields = False
        self.str_keys: List[Tuple[str, int]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:  # noqa: N802
        if isinstance(node.value, ast.Name) and \
                node.value.id in ("self", "cls"):
            self.attrs.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        if call_name(node) == "fields" and any(
                isinstance(arg, ast.Name) and arg.id in ("self", "cls")
                for arg in node.args):
            self.iterates_fields = True
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:  # noqa: N802
        for key in node.keys:
            if isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                self.str_keys.append((key.value, key.lineno))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:  # noqa: N802
        index = node.slice
        if isinstance(index, ast.Constant) and \
                isinstance(index.value, str):
            self.str_keys.append((index.value, index.lineno))
        self.generic_visit(node)


class ProjectModel:
    """Parsed view of one or more top-level packages."""

    def __init__(self, package_dirs: Iterable[Path]) -> None:
        self.package_dirs = sorted(Path(p).resolve()
                                   for p in package_dirs)
        self.modules: Dict[str, ModuleInfo] = {}
        for pkg_dir in self.package_dirs:
            if not (pkg_dir / "__init__.py").is_file():
                raise LintError(
                    f"{pkg_dir} is not a package (no __init__.py); "
                    f"repro lint analyses package trees")
            self._load_package(pkg_dir)
        self._import_graph: Optional[Dict[str, Set[str]]] = None
        self._functions: Optional[List[FunctionInfo]] = None
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes: Optional[Dict[str, List[ClassInfo]]] = None
        self._closures: Dict[Tuple[int, str], ClosureInfo] = {}
        self._reachable_cache: Dict[Tuple[str, ...], FrozenSet[str]] = {}
        self._hot_cache: Dict[Tuple[Tuple[str, ...], FrozenSet[str]],
                              FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Discovery and parsing
    # ------------------------------------------------------------------
    def _load_package(self, pkg_dir: Path) -> None:
        base = pkg_dir.parent
        for path in sorted(pkg_dir.rglob("*.py")):
            rel = path.relative_to(base)
            parts = list(rel.parts)
            is_package = parts[-1] == "__init__.py"
            if is_package:
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][:-3]
            name = ".".join(parts)
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                raise LintError(f"cannot parse {path}: {exc}") from exc
            self.modules[name] = ModuleInfo(
                name=name, path=path, tree=tree,
                source_lines=source.splitlines(),
                is_package=is_package)

    def modules_sorted(self) -> List[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]

    # ------------------------------------------------------------------
    # Import graph and reachability
    # ------------------------------------------------------------------
    def _resolve_import_base(self, module: ModuleInfo,
                             node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        anchor = module.name if module.is_package else \
            module.name.rpartition(".")[0]
        for _ in range(node.level - 1):
            anchor = anchor.rpartition(".")[0]
        if node.module:
            return f"{anchor}.{node.module}" if anchor else node.module
        return anchor

    def _known_target(self, name: str) -> Optional[str]:
        """The longest project module ``name`` (or a prefix) names."""
        while name:
            if name in self.modules:
                return name
            name = name.rpartition(".")[0]
        return None

    def import_graph(self) -> Dict[str, Set[str]]:
        """Project-internal import edges, ``module -> imported``."""
        if self._import_graph is not None:
            return self._import_graph
        graph: Dict[str, Set[str]] = {name: set()
                                      for name in self.modules}
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        target = self._known_target(alias.name)
                        if target:
                            graph[module.name].add(target)
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_import_base(module, node)
                    for alias in node.names:
                        full = f"{base}.{alias.name}" if base \
                            else alias.name
                        target = self._known_target(full)
                        if target:
                            graph[module.name].add(target)
        self._import_graph = graph
        return graph

    def reachable(self, roots: Tuple[str, ...]) -> FrozenSet[str]:
        """Modules reachable from ``roots`` through project imports
        (roots included).

        A root whose top-level package *is* under analysis but which
        names no module is an error — a stale policy (module renamed
        away) must fail loudly, not silently stop checking.  Roots
        from packages not being linted at all are skipped, so the
        default policy works on foreign trees (fixtures, other
        projects) where its rules simply have nothing in scope.
        """
        key = tuple(sorted(roots))
        cached = self._reachable_cache.get(key)
        if cached is not None:
            return cached
        graph = self.import_graph()
        top_levels = {name.split(".")[0] for name in self.modules}
        missing = [root for root in roots
                   if root not in self.modules
                   and root.split(".")[0] in top_levels]
        if missing:
            raise LintError(
                f"policy compute root(s) not in the analysed tree: "
                f"{', '.join(missing)}")
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.modules]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(graph.get(current, ()))
        result = frozenset(seen)
        self._reachable_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Class tables and serializer closures
    # ------------------------------------------------------------------
    def classes(self) -> Dict[str, List[ClassInfo]]:
        """``module name -> class infos`` for every class definition."""
        if self._classes is not None:
            return self._classes
        table: Dict[str, List[ClassInfo]] = {}
        for module in self.modules.values():
            infos: List[ClassInfo] = []
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name: stmt for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
                infos.append(ClassInfo(
                    module=module.name, name=node.name, node=node,
                    is_dataclass=_is_dataclass_decorated(node),
                    fields=_dataclass_fields(node),
                    methods=methods))
            table[module.name] = infos
        self._classes = table
        return table

    def method_closure(self, cls: ClassInfo,
                       method: str) -> ClosureInfo:
        """Transitive self-usage of ``cls.method``.

        Follows ``self.x`` references that name *other methods or
        properties of the same class* (``self.canonical_dict()``,
        ``self.resolved_weighted``) so derived accessors count as
        reaching the fields they read.  Cross-class calls
        (``self.config.to_dict()``) are not followed — those classes
        declare their own contracts.
        """
        cache_key = (id(cls.node), method)
        cached = self._closures.get(cache_key)
        if cached is not None:
            return cached
        attrs: Set[str] = set()
        visited: Set[str] = set()
        iterates_fields = False
        str_keys: List[Tuple[str, int, str]] = []
        queue = [method]
        while queue:
            name = queue.pop()
            if name in visited or name not in cls.methods:
                continue
            visited.add(name)
            scan = _MethodScan()
            scan.visit(cls.methods[name])
            iterates_fields = iterates_fields or scan.iterates_fields
            str_keys.extend((value, line, name)
                            for value, line in scan.str_keys)
            attrs.update(scan.attrs)
            queue.extend(attr for attr in scan.attrs
                         if attr in cls.methods)
        info = ClosureInfo(attrs=attrs, methods_visited=visited,
                           iterates_fields=iterates_fields,
                           str_keys=str_keys)
        self._closures[cache_key] = info
        return info

    # ------------------------------------------------------------------
    # Function index and hot-path call closure
    # ------------------------------------------------------------------
    def functions(self) -> List[FunctionInfo]:
        if self._functions is not None:
            return self._functions
        found: List[FunctionInfo] = []
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qual = self._qualname(module, node)
                    info = FunctionInfo(module=module.name,
                                        qualname=qual, node=node)
                    found.append(info)
                    self._functions_by_name.setdefault(
                        node.name, []).append(info)
        self._functions = found
        return found

    def _qualname(self, module: ModuleInfo,
                  node: ast.FunctionDef) -> str:
        parts = [node.name]
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.ClassDef, ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                parts.append(ancestor.name)
        return f"{module.name}:" + ".".join(reversed(parts))

    @staticmethod
    def _called_names(node: ast.FunctionDef) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = call_name(child)
                if name is not None:
                    names.add(name)
        return names

    def hot_functions(self, roots: Tuple[str, ...],
                      stop_names: FrozenSet[str]) -> FrozenSet[int]:
        """``id(node)`` of every function in the name-matched call
        closure of the ``roots`` function names.

        Name matching is approximate: a call ``o.f(...)`` links to
        *every* project ``def f``.  ``stop_names`` keeps container
        idioms (``.get``, ``.items``...) from dragging unrelated code
        onto the hot path; the checker's job is gating, so an
        over-approximation only ever *adds* scrutiny.
        """
        key = (tuple(sorted(roots)), stop_names)
        cached = self._hot_cache.get(key)
        if cached is not None:
            return cached
        self.functions()
        seen: Set[int] = set()
        frontier: List[FunctionInfo] = []
        for root in roots:
            frontier.extend(self._functions_by_name.get(root, ()))
        while frontier:
            info = frontier.pop()
            if id(info.node) in seen:
                continue
            seen.add(id(info.node))
            for name in self._called_names(info.node):
                if name in stop_names or name.startswith("__"):
                    continue
                frontier.extend(
                    candidate for candidate
                    in self._functions_by_name.get(name, ())
                    if id(candidate.node) not in seen)
        result = frozenset(seen)
        self._hot_cache[key] = result
        return result
