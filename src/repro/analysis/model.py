"""The project model cross-file checkers query.

One :class:`ProjectModel` is built per lint run from the package
directories under analysis.  It offers four views the rules share:

- **modules** — every ``*.py`` file, parsed once, with a parent map so
  checkers can walk *up* from a node (enclosing statement, function).
- **import graph** — project-internal edges only, with relative
  imports resolved, powering "compute-reachable" scoping (REP101).
- **class tables** — dataclass fields and per-class method ASTs, plus
  the transitive ``self.*`` closure of any method, powering the
  content-key completeness and volatile-key purity checks (REP103,
  REP105).
- **call closure** — a name-matched function reachability set from
  the vertex-program scan loops, powering hot-path telemetry gating
  (REP105).
- **resolved call graph** — receiver-typed call edges
  (:meth:`ProjectModel.resolved_calls`): ``self.x()`` resolves inside
  the defining class, ``self.store.claim()`` resolves through the
  attribute's inferred class (constructor assignments and parameter /
  variable annotations), and ``module.f()`` resolves through import
  aliases.  Only calls whose receiver stays unknown fall back to name
  matching, bounded by the stop-name list — this is what keeps the
  REP2xx execution-context closure from dragging every ``def stop``
  in the project into every thread.

Everything is stdlib ``ast``; name-matched call edges are
approximate by design (documented in ``docs/lint-rules.md``) and
bounded by the policy's stop-name list.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import LintError

__all__ = ["ClassInfo", "ClosureInfo", "FunctionInfo", "ModuleInfo",
           "ProjectModel", "call_name", "dotted_name"]

#: Typing constructs and primitives skipped when a type name is read
#: out of an annotation — ``Optional[JobStore]`` types as ``JobStore``
#: and ``List[threading.Thread]`` as ``Thread`` (the element type; for
#: receiver typing that collapse is deliberate and documented).
_TYPE_NOISE = frozenset({
    "Optional", "List", "Dict", "Tuple", "Set", "FrozenSet", "Union",
    "Iterable", "Iterator", "Sequence", "Mapping", "MutableMapping",
    "Callable", "Any", "Type", "ClassVar", "Deque", "Generator",
    "str", "int", "float", "bool", "bytes", "object", "None", "none",
})


def _type_candidates(node: Optional[ast.AST]) -> Iterable[str]:
    """Bare type-name candidates in an annotation, outermost first.

    ``Optional["queue.PriorityQueue"]`` yields ``Optional`` then
    ``PriorityQueue``; callers filter through :data:`_TYPE_NOISE`.
    """
    if node is None:
        return
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Subscript):
        yield from _type_candidates(node.value)
        yield from _type_candidates(node.slice)
    elif isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _type_candidates(elt)
    elif isinstance(node, ast.BinOp):  # PEP 604 ``X | None``
        yield from _type_candidates(node.left)
        yield from _type_candidates(node.right)
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
        yield from _type_candidates(parsed)


def call_name(node: ast.Call) -> Optional[str]:
    """The bare name a call resolves through (``f()`` and ``o.f()``
    are both ``"f"``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    tree: ast.Module
    source_lines: List[str]
    is_package: bool
    _parents: Optional[Dict[int, ast.AST]] = field(default=None,
                                                   repr=False)

    def parent_map(self) -> Dict[int, ast.AST]:
        """``id(child) -> parent`` over the whole tree (built once)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        parents = self.parent_map()
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def enclosing_function(self, node: ast.AST
                           ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return ancestor
        return None


@dataclass
class FunctionInfo:
    """One function/method definition, indexed for the call graph."""

    module: str
    qualname: str
    node: ast.FunctionDef
    #: Name of the immediately enclosing class, ``None`` for
    #: module-level (and nested-in-function) definitions.
    cls_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition with its dataclass field table."""

    module: str
    name: str
    node: ast.ClassDef
    is_dataclass: bool
    #: ``(field name, lineno)`` of every dataclass field, in order.
    fields: List[Tuple[str, int]]
    methods: Dict[str, ast.FunctionDef]


@dataclass
class ClosureInfo:
    """Transitive ``self.*`` usage of a method within its class."""

    #: Every ``self.<attr>`` referenced (fields, methods, properties).
    attrs: Set[str]
    #: Class methods the closure walked through.
    methods_visited: Set[str]
    #: Whether ``dataclasses.fields(self)`` is iterated anywhere —
    #: which covers every field by construction.
    iterates_fields: bool
    #: ``(literal, lineno, method)`` for every string used as a dict
    #: key or subscript index inside the closure.
    str_keys: List[Tuple[str, int, str]]


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    found: List[Tuple[str, int]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or \
                not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        found.append((stmt.target.id, stmt.lineno))
    return found


class _MethodScan(ast.NodeVisitor):
    """Collects one method's self-attribute reads, ``fields(self)``
    iteration, and string keys."""

    def __init__(self) -> None:
        self.attrs: Set[str] = set()
        self.iterates_fields = False
        self.str_keys: List[Tuple[str, int]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:  # noqa: N802
        if isinstance(node.value, ast.Name) and \
                node.value.id in ("self", "cls"):
            self.attrs.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        if call_name(node) == "fields" and any(
                isinstance(arg, ast.Name) and arg.id in ("self", "cls")
                for arg in node.args):
            self.iterates_fields = True
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:  # noqa: N802
        for key in node.keys:
            if isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                self.str_keys.append((key.value, key.lineno))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:  # noqa: N802
        index = node.slice
        if isinstance(index, ast.Constant) and \
                isinstance(index.value, str):
            self.str_keys.append((index.value, index.lineno))
        self.generic_visit(node)


class ProjectModel:
    """Parsed view of one or more top-level packages."""

    def __init__(self, package_dirs: Iterable[Path]) -> None:
        self.package_dirs = sorted(Path(p).resolve()
                                   for p in package_dirs)
        self.modules: Dict[str, ModuleInfo] = {}
        for pkg_dir in self.package_dirs:
            if not (pkg_dir / "__init__.py").is_file():
                raise LintError(
                    f"{pkg_dir} is not a package (no __init__.py); "
                    f"repro lint analyses package trees")
            self._load_package(pkg_dir)
        self._import_graph: Optional[Dict[str, Set[str]]] = None
        self._functions: Optional[List[FunctionInfo]] = None
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes: Optional[Dict[str, List[ClassInfo]]] = None
        self._closures: Dict[Tuple[int, str], ClosureInfo] = {}
        self._reachable_cache: Dict[Tuple[str, ...], FrozenSet[str]] = {}
        self._hot_cache: Dict[Tuple[Tuple[str, ...], FrozenSet[str]],
                              FrozenSet[int]] = {}
        self._class_index: Optional[Dict[str, List[ClassInfo]]] = None
        self._functions_by_id: Optional[Dict[int, FunctionInfo]] = None
        self._alias_cache: Dict[str, Dict[str, str]] = {}
        self._attr_type_cache: Dict[int, Dict[str, str]] = {}
        self._local_type_cache: Dict[int, Dict[str, str]] = {}
        self._resolved_cache: Dict[Tuple[int, FrozenSet[str]],
                                   List[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # Discovery and parsing
    # ------------------------------------------------------------------
    def _load_package(self, pkg_dir: Path) -> None:
        base = pkg_dir.parent
        for path in sorted(pkg_dir.rglob("*.py")):
            rel = path.relative_to(base)
            parts = list(rel.parts)
            is_package = parts[-1] == "__init__.py"
            if is_package:
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][:-3]
            name = ".".join(parts)
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                raise LintError(f"cannot parse {path}: {exc}") from exc
            self.modules[name] = ModuleInfo(
                name=name, path=path, tree=tree,
                source_lines=source.splitlines(),
                is_package=is_package)

    def modules_sorted(self) -> List[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]

    # ------------------------------------------------------------------
    # Import graph and reachability
    # ------------------------------------------------------------------
    def _resolve_import_base(self, module: ModuleInfo,
                             node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        anchor = module.name if module.is_package else \
            module.name.rpartition(".")[0]
        for _ in range(node.level - 1):
            anchor = anchor.rpartition(".")[0]
        if node.module:
            return f"{anchor}.{node.module}" if anchor else node.module
        return anchor

    def _known_target(self, name: str) -> Optional[str]:
        """The longest project module ``name`` (or a prefix) names."""
        while name:
            if name in self.modules:
                return name
            name = name.rpartition(".")[0]
        return None

    def import_graph(self) -> Dict[str, Set[str]]:
        """Project-internal import edges, ``module -> imported``."""
        if self._import_graph is not None:
            return self._import_graph
        graph: Dict[str, Set[str]] = {name: set()
                                      for name in self.modules}
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        target = self._known_target(alias.name)
                        if target:
                            graph[module.name].add(target)
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_import_base(module, node)
                    for alias in node.names:
                        full = f"{base}.{alias.name}" if base \
                            else alias.name
                        target = self._known_target(full)
                        if target:
                            graph[module.name].add(target)
        self._import_graph = graph
        return graph

    def reachable(self, roots: Tuple[str, ...]) -> FrozenSet[str]:
        """Modules reachable from ``roots`` through project imports
        (roots included).

        A root whose top-level package *is* under analysis but which
        names no module is an error — a stale policy (module renamed
        away) must fail loudly, not silently stop checking.  Roots
        from packages not being linted at all are skipped, so the
        default policy works on foreign trees (fixtures, other
        projects) where its rules simply have nothing in scope.
        """
        key = tuple(sorted(roots))
        cached = self._reachable_cache.get(key)
        if cached is not None:
            return cached
        graph = self.import_graph()
        top_levels = {name.split(".")[0] for name in self.modules}
        missing = [root for root in roots
                   if root not in self.modules
                   and root.split(".")[0] in top_levels]
        if missing:
            raise LintError(
                f"policy compute root(s) not in the analysed tree: "
                f"{', '.join(missing)}")
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.modules]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(graph.get(current, ()))
        result = frozenset(seen)
        self._reachable_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Class tables and serializer closures
    # ------------------------------------------------------------------
    def classes(self) -> Dict[str, List[ClassInfo]]:
        """``module name -> class infos`` for every class definition."""
        if self._classes is not None:
            return self._classes
        table: Dict[str, List[ClassInfo]] = {}
        for module in self.modules.values():
            infos: List[ClassInfo] = []
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name: stmt for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
                infos.append(ClassInfo(
                    module=module.name, name=node.name, node=node,
                    is_dataclass=_is_dataclass_decorated(node),
                    fields=_dataclass_fields(node),
                    methods=methods))
            table[module.name] = infos
        self._classes = table
        return table

    def method_closure(self, cls: ClassInfo,
                       method: str) -> ClosureInfo:
        """Transitive self-usage of ``cls.method``.

        Follows ``self.x`` references that name *other methods or
        properties of the same class* (``self.canonical_dict()``,
        ``self.resolved_weighted``) so derived accessors count as
        reaching the fields they read.  Cross-class calls
        (``self.config.to_dict()``) are not followed — those classes
        declare their own contracts.
        """
        cache_key = (id(cls.node), method)
        cached = self._closures.get(cache_key)
        if cached is not None:
            return cached
        attrs: Set[str] = set()
        visited: Set[str] = set()
        iterates_fields = False
        str_keys: List[Tuple[str, int, str]] = []
        queue = [method]
        while queue:
            name = queue.pop()
            if name in visited or name not in cls.methods:
                continue
            visited.add(name)
            scan = _MethodScan()
            scan.visit(cls.methods[name])
            iterates_fields = iterates_fields or scan.iterates_fields
            str_keys.extend((value, line, name)
                            for value, line in scan.str_keys)
            attrs.update(scan.attrs)
            queue.extend(attr for attr in scan.attrs
                         if attr in cls.methods)
        info = ClosureInfo(attrs=attrs, methods_visited=visited,
                           iterates_fields=iterates_fields,
                           str_keys=str_keys)
        self._closures[cache_key] = info
        return info

    # ------------------------------------------------------------------
    # Function index and hot-path call closure
    # ------------------------------------------------------------------
    def functions(self) -> List[FunctionInfo]:
        if self._functions is not None:
            return self._functions
        found: List[FunctionInfo] = []
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qual = self._qualname(module, node)
                    cls_name: Optional[str] = None
                    for ancestor in module.ancestors(node):
                        if isinstance(ancestor, (ast.FunctionDef,
                                                 ast.AsyncFunctionDef)):
                            break
                        if isinstance(ancestor, ast.ClassDef):
                            cls_name = ancestor.name
                            break
                    info = FunctionInfo(module=module.name,
                                        qualname=qual, node=node,
                                        cls_name=cls_name)
                    found.append(info)
                    self._functions_by_name.setdefault(
                        node.name, []).append(info)
        self._functions = found
        return found

    def _qualname(self, module: ModuleInfo,
                  node: ast.FunctionDef) -> str:
        parts = [node.name]
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.ClassDef, ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                parts.append(ancestor.name)
        return f"{module.name}:" + ".".join(reversed(parts))

    @staticmethod
    def _called_names(node: ast.FunctionDef) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = call_name(child)
                if name is not None:
                    names.add(name)
        return names

    def hot_functions(self, roots: Tuple[str, ...],
                      stop_names: FrozenSet[str]) -> FrozenSet[int]:
        """``id(node)`` of every function in the name-matched call
        closure of the ``roots`` function names.

        Name matching is approximate: a call ``o.f(...)`` links to
        *every* project ``def f``.  ``stop_names`` keeps container
        idioms (``.get``, ``.items``...) from dragging unrelated code
        onto the hot path; the checker's job is gating, so an
        over-approximation only ever *adds* scrutiny.
        """
        key = (tuple(sorted(roots)), stop_names)
        cached = self._hot_cache.get(key)
        if cached is not None:
            return cached
        self.functions()
        seen: Set[int] = set()
        frontier: List[FunctionInfo] = []
        for root in roots:
            frontier.extend(self._functions_by_name.get(root, ()))
        while frontier:
            info = frontier.pop()
            if id(info.node) in seen:
                continue
            seen.add(id(info.node))
            for name in self._called_names(info.node):
                if name in stop_names or name.startswith("__"):
                    continue
                frontier.extend(
                    candidate for candidate
                    in self._functions_by_name.get(name, ())
                    if id(candidate.node) not in seen)
        result = frozenset(seen)
        self._hot_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Receiver-typed call resolution (REP2xx execution contexts)
    # ------------------------------------------------------------------
    def class_index(self) -> Dict[str, List[ClassInfo]]:
        """``bare class name -> definitions`` across every module."""
        if self._class_index is None:
            index: Dict[str, List[ClassInfo]] = {}
            for infos in self.classes().values():
                for info in infos:
                    index.setdefault(info.name, []).append(info)
            self._class_index = index
        return self._class_index

    def functions_by_id(self) -> Dict[int, FunctionInfo]:
        """``id(node) -> FunctionInfo`` for every definition."""
        if self._functions_by_id is None:
            self._functions_by_id = {id(info.node): info
                                     for info in self.functions()}
        return self._functions_by_id

    def functions_by_name(self, name: str) -> List[FunctionInfo]:
        """Every project definition with the given bare name."""
        self.functions()
        return list(self._functions_by_name.get(name, ()))

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a method belongs to, else ``None``."""
        if info.cls_name is None:
            return None
        for cls in self.classes().get(info.module, ()):
            if cls.name == info.cls_name and \
                    info.node.name in cls.methods and \
                    cls.methods[info.node.name] is info.node:
                return cls
        return None

    def module_aliases(self, module: ModuleInfo) -> Dict[str, str]:
        """Local names bound to *project modules* by imports.

        ``from repro.obs import metrics as m`` maps ``m`` to
        ``repro.obs.metrics``; ``import repro.obs.metrics`` maps the
        full dotted string (receivers are matched by their dotted
        form, so both spellings resolve).
        """
        cached = self._alias_cache.get(module.name)
        if cached is not None:
            return cached
        aliases: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._known_target(alias.name)
                    if target is None:
                        continue
                    aliases[alias.asname or alias.name] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_base(module, node)
                for alias in node.names:
                    full = f"{base}.{alias.name}" if base \
                        else alias.name
                    if full in self.modules:
                        aliases[alias.asname or alias.name] = full
        self._alias_cache[module.name] = aliases
        return aliases

    def annotation_type(self, node: Optional[ast.AST]
                        ) -> Optional[str]:
        """The bare type name an annotation pins down, if any.

        Prefers a name that matches a project class; otherwise the
        first non-typing candidate (``threading.Lock`` -> ``Lock``).
        """
        names = [name for name in _type_candidates(node)
                 if name not in _TYPE_NOISE]
        if not names:
            return None
        index = self.class_index()
        for name in names:
            if name in index:
                return name
        return names[0]

    def _value_type(self, value: ast.expr,
                    known: Dict[str, str],
                    cls: Optional[ClassInfo]) -> Optional[str]:
        """Type of an assigned expression: constructor calls, typed
        names, ``self.method()`` / project-function return
        annotations, and ``a or Default()`` fallbacks."""
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                inferred = self._value_type(operand, known, cls)
                if inferred is not None:
                    return inferred
            return None
        if isinstance(value, ast.Name):
            return known.get(value.id)
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        index = self.class_index()
        if isinstance(func, ast.Name):
            if func.id in index:
                return func.id
            for candidate in self._functions_by_name.get(func.id, ()):
                if candidate.cls_name is None:
                    return self.annotation_type(candidate.node.returns)
            return func.id if func.id[:1].isupper() else None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and \
                    func.value.id in ("self", "cls") and \
                    cls is not None and func.attr in cls.methods:
                return self.annotation_type(
                    cls.methods[func.attr].returns)
            if isinstance(func.value, ast.Name):
                # ``registry.histogram(...)`` — a typed receiver's
                # method return annotation types the result.
                for recv_cls in index.get(
                        known.get(func.value.id, ""), ()):
                    if func.attr in recv_cls.methods:
                        return self.annotation_type(
                            recv_cls.methods[func.attr].returns)
            return func.attr if func.attr[:1].isupper() else None
        return None

    def attr_types(self, cls: ClassInfo) -> Dict[str, str]:
        """``self.X`` attribute types inferred from constructor
        assignments, annotations, and annotated parameters
        (``__init__`` scanned first; first assignment wins)."""
        cached = self._attr_type_cache.get(id(cls.node))
        if cached is not None:
            return cached
        self.functions()
        types: Dict[str, str] = {}
        # Dataclass-style fields: class-body annotations.
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                inferred = self.annotation_type(stmt.annotation)
                if inferred is not None:
                    types.setdefault(stmt.target.id, inferred)
        ordered = sorted(cls.methods.items(),
                         key=lambda item: item[0] != "__init__")
        for _, method in ordered:
            params: Dict[str, str] = {}
            args = method.args
            for arg in [*args.posonlyargs, *args.args,
                        *args.kwonlyargs]:
                inferred = self.annotation_type(arg.annotation)
                if inferred is not None:
                    params[arg.arg] = inferred
            for node in ast.walk(method):
                target: Optional[ast.expr] = None
                inferred = None
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    inferred = self.annotation_type(node.annotation)
                elif isinstance(node, ast.Assign) and \
                        len(node.targets) == 1:
                    target = node.targets[0]
                    inferred = self._value_type(node.value, params,
                                                cls)
                if inferred is None or \
                        not isinstance(target, ast.Attribute) or \
                        not isinstance(target.value, ast.Name) or \
                        target.value.id not in ("self", "cls"):
                    continue
                types.setdefault(target.attr, inferred)
        self._attr_type_cache[id(cls.node)] = types
        return types

    def local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Local-variable types inside one function: annotated
        parameters, ``AnnAssign``, constructor / typed-call
        assignments, and ``for``-loops over typed attributes."""
        cached = self._local_type_cache.get(id(info.node))
        if cached is not None:
            return cached
        self.functions()
        cls = self.class_of(info)
        types: Dict[str, str] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            inferred = self.annotation_type(arg.annotation)
            if inferred is not None and arg.arg not in ("self", "cls"):
                types[arg.arg] = inferred
        for node in ast.walk(info.node):
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                inferred = self.annotation_type(node.annotation)
                if inferred is not None:
                    types.setdefault(node.target.id, inferred)
            elif isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                inferred = self._value_type(node.value, types, cls)
                if inferred is not None:
                    types.setdefault(node.targets[0].id, inferred)
            elif isinstance(node, ast.For) and \
                    isinstance(node.target, ast.Name):
                inferred = None
                if isinstance(node.iter, ast.Attribute) and \
                        isinstance(node.iter.value, ast.Name) and \
                        node.iter.value.id in ("self", "cls") and \
                        cls is not None:
                    inferred = self.attr_types(cls).get(node.iter.attr)
                elif isinstance(node.iter, ast.Name):
                    inferred = types.get(node.iter.id)
                if inferred is not None:
                    types.setdefault(node.target.id, inferred)
        self._local_type_cache[id(info.node)] = types
        return types

    def receiver_type(self, info: FunctionInfo,
                      recv: ast.expr) -> Optional[str]:
        """What ``recv.method()`` dispatches through.

        Returns ``"<self>"`` for ``self``/``cls``, ``"<module:M>"``
        for a project-module alias, a bare type name when inference
        pins one down (project class or known external like
        ``Thread``), or ``None`` when the receiver stays unknown.
        """
        if isinstance(recv, ast.Name):
            if recv.id in ("self", "cls"):
                return "<self>"
            local = self.local_types(info).get(recv.id)
            if local is not None:
                return local
            if recv.id in self.class_index():
                return recv.id
            alias = self.module_aliases(
                self.modules[info.module]).get(recv.id)
            if alias is not None:
                return f"<module:{alias}>"
            return None
        dotted = dotted_name(recv)
        if dotted is not None:
            alias = self.module_aliases(
                self.modules[info.module]).get(dotted)
            if alias is not None:
                return f"<module:{alias}>"
        if isinstance(recv, ast.Attribute) and \
                isinstance(recv.value, ast.Name) and \
                recv.value.id in ("self", "cls"):
            cls = self.class_of(info)
            if cls is not None:
                return self.attr_types(cls).get(recv.attr)
        if isinstance(recv, ast.Call):
            # ``histogram(...).observe(x)`` — the ctor / factory
            # return type pins the receiver down.
            return self._value_type(recv, self.local_types(info),
                                    self.class_of(info))
        return None

    def _call_targets(self, info: FunctionInfo, call: ast.Call,
                      stop_names: FrozenSet[str]
                      ) -> List[FunctionInfo]:
        name = call_name(call)
        if name is None:
            return []
        by_id = self.functions_by_id()
        if isinstance(call.func, ast.Name):
            classes = self.class_index().get(name)
            if classes:
                return [by_id[id(cls.methods["__init__"])]
                        for cls in classes if "__init__" in cls.methods
                        and id(cls.methods["__init__"]) in by_id]
            if hasattr(builtins, name):
                # ``list(...)`` must not match every project ``list``.
                return []
            return list(self._functions_by_name.get(name, ()))
        rtype = self.receiver_type(info, call.func.value)
        if rtype == "<self>":
            cls = self.class_of(info)
            if cls is not None and name in cls.methods and \
                    id(cls.methods[name]) in by_id:
                return [by_id[id(cls.methods[name])]]
            return []  # inherited / dynamic — no name-match fallback
        if rtype is not None and rtype.startswith("<module:"):
            target_module = rtype[len("<module:"):-1]
            return [candidate for candidate
                    in self._functions_by_name.get(name, ())
                    if candidate.module == target_module
                    and candidate.cls_name is None]
        if rtype is not None:
            classes = self.class_index().get(rtype)
            if classes:
                return [by_id[id(cls.methods[name])]
                        for cls in classes if name in cls.methods
                        and id(cls.methods[name]) in by_id]
            return []  # typed external receiver — no fallback
        if name in stop_names or name.startswith("__"):
            return []
        return list(self._functions_by_name.get(name, ()))

    def call_targets(self, info: FunctionInfo, call: ast.Call,
                     stop_names: FrozenSet[str]
                     ) -> List[FunctionInfo]:
        """Project definitions one call site may dispatch to (empty
        for stdlib/external calls and typed non-project receivers)."""
        self.functions()
        return self._call_targets(info, call, stop_names)

    def resolved_calls(self, info: FunctionInfo,
                       stop_names: FrozenSet[str]
                       ) -> List[FunctionInfo]:
        """Project functions one definition may call, with receiver
        types resolved where inference allows and name matching
        (bounded by ``stop_names``) only for unknown receivers."""
        key = (id(info.node), stop_names)
        cached = self._resolved_cache.get(key)
        if cached is not None:
            return cached
        self.functions()
        seen: Set[int] = set()
        out: List[FunctionInfo] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            for target in self._call_targets(info, node, stop_names):
                if id(target.node) not in seen:
                    seen.add(id(target.node))
                    out.append(target)
        self._resolved_cache[key] = out
        return out
