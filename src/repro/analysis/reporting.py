"""Text and JSON reporters over a lint run."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.runner import LintResult

__all__ = ["render_json", "render_text"]

#: Schema version of the ``--json`` report; CI parses this.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Compiler-style finding lines plus a one-line summary."""
    lines: List[str] = [finding.render()
                        for finding in result.findings]
    counts = result.rule_counts()
    if result.findings:
        per_rule = ", ".join(f"{rule}: {count}"
                             for rule, count in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding(s) "
            f"[{per_rule}] in {result.files_scanned} file(s); "
            f"{result.suppressed} suppressed")
    else:
        lines.append(
            f"clean: {result.files_scanned} file(s), "
            f"{len(result.rules)} rule(s), "
            f"{result.suppressed} suppressed finding(s)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (sorted keys, sorted findings)."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro lint",
        "rules": list(result.rules),
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "rule_counts": result.rule_counts(),
        "findings": [finding.as_dict()
                     for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
