"""Text, JSON and SARIF reporters over a lint run."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.analysis.runner import LintResult

__all__ = ["render_json", "render_sarif", "render_text"]

#: Schema version of the ``--json`` report; CI parses this.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Compiler-style finding lines plus a one-line summary."""
    lines: List[str] = [finding.render()
                        for finding in result.findings]
    counts = result.rule_counts()
    if result.findings:
        per_rule = ", ".join(f"{rule}: {count}"
                             for rule, count in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding(s) "
            f"[{per_rule}] in {result.files_scanned} file(s); "
            f"{result.suppressed} suppressed")
    else:
        lines.append(
            f"clean: {result.files_scanned} file(s), "
            f"{len(result.rules)} rule(s), "
            f"{result.suppressed} suppressed finding(s)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (sorted keys, sorted findings)."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro lint",
        "rules": list(result.rules),
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "rule_counts": result.rule_counts(),
        "findings": [finding.as_dict()
                     for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _artifact_uri(path: str) -> str:
    """Repo-relative POSIX URI when possible, absolute otherwise."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report for GitHub code scanning upload."""
    from repro.analysis.registry import list_rules

    summaries: Dict[str, str] = {entry["rule"]: entry["summary"]
                                 for entry in list_rules()}
    rules = [{
        "id": rule,
        "shortDescription": {"text": summaries.get(rule, rule)},
    } for rule in result.rules]
    results = [{
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": _artifact_uri(finding.path),
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    } for finding in result.findings]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro lint",
                    "version": str(REPORT_VERSION),
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
