"""``repro lint`` — AST-based invariant checkers for this repository.

Every guarantee the reproduction makes — bit-identical results across
deployments, cache correctness keyed by SHA-256 content hashes,
leak-free shared-memory residency — is an invariant *of the source
code* that equivalence tests only catch after the fact.  This package
turns those invariants into machine-checked rules that run in seconds
on every change, before any simulation executes:

========  ==========================================================
Rule      Invariant
========  ==========================================================
REP101    Determinism: no unseeded RNGs or wall-clock reads in
          compute-reachable modules.
REP102    Filesystem iteration order: ``glob``/``iterdir``/
          ``os.listdir`` results feeding order-sensitive code must be
          ``sorted(...)``.
REP103    Content-key completeness: every dataclass field of a
          content-hashed class must reach its canonical serializer.
REP104    Shared-memory lifecycle: segments created with
          ``create=True`` must unlink on exception paths; all shm use
          goes through :mod:`repro.runtime.residency`.
REP105    Telemetry purity: no obs calls on the engine hot path
          unless gated on ``metrics.enabled()``; volatile trace keys
          never flow into content hashes.
REP106    Error taxonomy: runtime/service/algorithm layers raise
          typed classes from :mod:`repro.errors`, not bare builtins.
REP201    Lock discipline: fields of lock-owning classes are written
          under the owning lock in concurrent execution contexts;
          cross-class reads of guarded state go through locked
          accessors.
REP202    Fork safety: locks, sqlite connections, sockets and shm
          handles created pre-fork are not used in worker-process
          contexts (close-in-child and after-fork resets allowed).
REP203    Blocking timeout: pipe ``recv``, ``queue.get``,
          ``thread.join`` and friends reachable from concurrent
          contexts carry a timeout or a ``poll`` guard.
REP204    No blocking under lock: no sleeps, pipe/socket traffic or
          tree I/O while a modeled lock is held.
REP205    Finalizer safety: atexit/weakref/after-fork contexts only
          call the policy's reentrant-safe allowlist.
REP206    Claim protocol: every ``_claim_build``-style acquire is
          released on all exception and return paths.
========  ==========================================================

The REP2xx family is powered by an execution-context model
(:mod:`repro.analysis.contexts`) classifying every function into the
thread / HTTP-handler / worker-process / finalizer contexts it can
run in, and a held-lock dataflow (:mod:`repro.analysis.locks`).

Stdlib-``ast`` only — no third-party dependencies.  Findings are
suppressable per line with ``# repro: noqa REPxxx - reason``.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.policy import LintPolicy, default_policy
from repro.analysis.registry import all_checkers, checker_for, list_rules
from repro.analysis.runner import LintResult, run_lint

__all__ = [
    "Finding",
    "LintPolicy",
    "LintResult",
    "all_checkers",
    "checker_for",
    "default_policy",
    "list_rules",
    "run_lint",
]
