"""Checker registry: rule IDs to checker classes.

A checker is any object with a ``rule`` ID, a one-line ``summary``,
and a ``check(model, policy)`` generator of findings over the whole
:class:`~repro.analysis.model.ProjectModel`.  Registration happens by
decorating the class; the registry orders rules by ID so every report
and every ``--list-rules`` listing is stable.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Protocol, Type

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.policy import LintPolicy
from repro.errors import LintError

__all__ = ["Checker", "all_checkers", "checker_for", "list_rules",
           "register", "resolve_rules"]

_RULE_RE = re.compile(r"^[A-Z]+\d+$")


class Checker(Protocol):
    rule: str
    summary: str

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]: ...


_REGISTRY: Dict[str, Type] = {}


def register(cls: Type) -> Type:
    """Class decorator adding a checker to the registry."""
    rule = getattr(cls, "rule", None)
    if not rule or not _RULE_RE.match(rule):
        raise LintError(f"checker {cls.__name__!r} has no valid rule ID")
    if rule in _REGISTRY:
        raise LintError(f"duplicate checker for rule {rule}")
    _REGISTRY[rule] = cls
    return cls


def _ensure_loaded() -> None:
    # Rule modules self-register on import; importing the package here
    # keeps the registry lazy without checkers needing a manifest.
    from repro.analysis import rules  # noqa: F401


def all_checkers() -> List[Checker]:
    """One instance of every registered checker, ordered by rule ID."""
    _ensure_loaded()
    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]


def checker_for(rule: str) -> Checker:
    _ensure_loaded()
    try:
        return _REGISTRY[rule]()
    except KeyError:
        raise LintError(f"unknown lint rule: {rule}") from None


def list_rules() -> List[Dict[str, str]]:
    """``[{"rule": ..., "summary": ...}, ...]`` in rule order."""
    _ensure_loaded()
    return [{"rule": rule, "summary": _REGISTRY[rule].summary}
            for rule in sorted(_REGISTRY)]


def _expand(tokens: Iterable[str],
            known: List[str]) -> "tuple[List[str], List[str]]":
    """Expand exact IDs and family prefixes (``REP2`` -> REP201...);
    returns ``(expanded, unknown)``."""
    expanded: List[str] = []
    unknown: List[str] = []
    for token in tokens:
        if token in _REGISTRY:
            expanded.append(token)
            continue
        matches = [rule for rule in known
                   if rule.startswith(token)] if token else []
        if matches:
            expanded.extend(matches)
        else:
            unknown.append(token)
    return expanded, unknown


def resolve_rules(select: Iterable[str] = (),
                  ignore: Iterable[str] = ()) -> List[str]:
    """The rule IDs a run should execute after --select/--ignore.

    Both lists accept exact IDs (``REP104``) and family prefixes
    (``REP2`` selects every REP2xx rule); anything matching neither
    is an error — a stale selection must fail loudly.
    """
    _ensure_loaded()
    known = sorted(_REGISTRY)
    chosen, unknown_select = _expand(select, known)
    ignored, unknown_ignore = _expand(ignore, known)
    unknown = unknown_select + unknown_ignore
    if unknown:
        raise LintError(
            f"unknown lint rule(s): {', '.join(sorted(set(unknown)))}")
    chosen = chosen or known
    ignored_set = set(ignored)
    return [rule for rule in known
            if rule in chosen and rule not in ignored_set]
