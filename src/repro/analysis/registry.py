"""Checker registry: rule IDs to checker classes.

A checker is any object with a ``rule`` ID, a one-line ``summary``,
and a ``check(model, policy)`` generator of findings over the whole
:class:`~repro.analysis.model.ProjectModel`.  Registration happens by
decorating the class; the registry orders rules by ID so every report
and every ``--list-rules`` listing is stable.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Protocol, Type

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.policy import LintPolicy
from repro.errors import LintError

__all__ = ["Checker", "all_checkers", "checker_for", "list_rules",
           "register", "resolve_rules"]

_RULE_RE = re.compile(r"^[A-Z]+\d+$")


class Checker(Protocol):
    rule: str
    summary: str

    def check(self, model: ProjectModel,
              policy: LintPolicy) -> Iterator[Finding]: ...


_REGISTRY: Dict[str, Type] = {}


def register(cls: Type) -> Type:
    """Class decorator adding a checker to the registry."""
    rule = getattr(cls, "rule", None)
    if not rule or not _RULE_RE.match(rule):
        raise LintError(f"checker {cls.__name__!r} has no valid rule ID")
    if rule in _REGISTRY:
        raise LintError(f"duplicate checker for rule {rule}")
    _REGISTRY[rule] = cls
    return cls


def _ensure_loaded() -> None:
    # Rule modules self-register on import; importing the package here
    # keeps the registry lazy without checkers needing a manifest.
    from repro.analysis import rules  # noqa: F401


def all_checkers() -> List[Checker]:
    """One instance of every registered checker, ordered by rule ID."""
    _ensure_loaded()
    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]


def checker_for(rule: str) -> Checker:
    _ensure_loaded()
    try:
        return _REGISTRY[rule]()
    except KeyError:
        raise LintError(f"unknown lint rule: {rule}") from None


def list_rules() -> List[Dict[str, str]]:
    """``[{"rule": ..., "summary": ...}, ...]`` in rule order."""
    _ensure_loaded()
    return [{"rule": rule, "summary": _REGISTRY[rule].summary}
            for rule in sorted(_REGISTRY)]


def resolve_rules(select: Iterable[str] = (),
                  ignore: Iterable[str] = ()) -> List[str]:
    """The rule IDs a run should execute after --select/--ignore."""
    _ensure_loaded()
    known = sorted(_REGISTRY)
    chosen = list(select) or known
    unknown = [rule for rule in [*chosen, *ignore]
               if rule not in _REGISTRY]
    if unknown:
        raise LintError(
            f"unknown lint rule(s): {', '.join(sorted(set(unknown)))}")
    ignored = set(ignore)
    return [rule for rule in known
            if rule in chosen and rule not in ignored]
