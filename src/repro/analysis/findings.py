"""The one value every checker produces: a located rule violation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source location.

    Orders by ``(path, line, col, rule)`` so reports are stable across
    runs and filesystems — the lint must itself obey the determinism
    it enforces.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    module: str = ""

    def render(self) -> str:
        """The classic one-line compiler format (clickable in most
        editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe row for the ``--json`` report."""
        return {"rule": self.rule, "path": self.path,
                "module": self.module, "line": self.line,
                "col": self.col, "message": self.message}
