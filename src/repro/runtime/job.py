"""Canonical job specification for the parallel simulation runtime.

A :class:`Job` pins down everything that determines a simulated run's
outcome — (platform, algorithm, dataset, configuration, seeds, run
parameters) — in one immutable value with a stable content key.  Two
jobs that would produce the same :class:`~repro.hw.stats.RunStats`
hash identically in every process, which is what lets the result
cache survive restarts and lets workers recompute only what is new.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.algorithms.registry import list_algorithms, weighted_algorithms
from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.errors import ConfigError, JobError
from repro.graph.datasets import PAPER_DATASETS

__all__ = ["Job", "PLATFORMS", "ALGORITHMS", "load_jobfile"]

#: Platforms a job may target (``graphr`` plus the three baselines).
PLATFORMS: Tuple[str, ...] = ("graphr", "cpu", "gpu", "pim")

#: Algorithms a job may run — always the registry's inventory, so a
#: registered algorithm is submittable everywhere (CLI, job files,
#: service) without touching this module.
ALGORITHMS: Tuple[str, ...] = list_algorithms()

#: Dataset-generator seed used by every shipped benchmark.
DEFAULT_DATASET_SEED = 7


def _freeze(value: object) -> object:
    """Recursively convert a JSON-ish value to a hashable form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class Job:
    """One simulation request, canonicalized.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (``"pagerank"`` ...).
    dataset:
        Table 3 dataset code (``"WV"`` ...); workers regenerate the
        deterministic analog from the code, so jobs stay tiny on the
        wire.
    platform:
        ``"graphr"`` or one of the baseline platforms.
    config:
        GraphR node configuration.  ``None`` means the runtime default
        (analytic mode); ignored for baseline platforms, and excluded
        from their content keys so a config sweep never invalidates
        baseline results.
    run_kwargs:
        Algorithm parameters forwarded to ``run`` (``source=...``,
        ``max_iterations=...``).  Values must be JSON-safe.
    deployment:
        Deployment scenario for GraphR jobs (``None`` means the
        in-memory single node; ``out-of-core`` prepares blocks in a
        scratch directory and streams them; ``multi-node`` runs the
        stripe cluster).  Participates in the content key, so a
        deployment sweep caches every point separately.
    weighted:
        Generate the weighted dataset analog.  ``None`` resolves to
        the algorithm's need (SSSP wants weights), mirroring the
        experiment harness.
    dataset_seed:
        Seed of the dataset generator.
    """

    algorithm: str
    dataset: str
    platform: str = "graphr"
    config: Optional[GraphRConfig] = None
    run_kwargs: Mapping[str, object] = field(default_factory=dict)
    deployment: Optional[DeploymentSpec] = None
    weighted: Optional[bool] = None
    dataset_seed: int = DEFAULT_DATASET_SEED

    def __post_init__(self) -> None:
        # Type-check up front: job files are user input, and anything
        # wrong must surface as a JobError (the CLI's error contract),
        # not an AttributeError deep in canonicalization.
        for name in ("algorithm", "dataset", "platform"):
            if not isinstance(getattr(self, name), str):
                raise JobError(f"{name} must be a string, got "
                               f"{type(getattr(self, name)).__name__}")
        if not isinstance(self.run_kwargs, Mapping):
            raise JobError("run_kwargs must be a mapping")
        if self.weighted is not None and not isinstance(self.weighted,
                                                        bool):
            raise JobError("weighted must be a boolean or null")
        if isinstance(self.dataset_seed, bool) or \
                not isinstance(self.dataset_seed, int):
            raise JobError("dataset_seed must be an integer")
        if self.config is not None and \
                not isinstance(self.config, GraphRConfig):
            raise JobError("config must be a GraphRConfig")
        if self.deployment is not None:
            if not isinstance(self.deployment, DeploymentSpec):
                raise JobError("deployment must be a DeploymentSpec")
            if self.platform != "graphr" \
                    and self.deployment.kind != "single":
                raise JobError(
                    f"deployment {self.deployment.kind!r} only applies "
                    f"to the graphr platform"
                )
        if self.algorithm not in ALGORITHMS:
            raise JobError(f"unknown algorithm {self.algorithm!r}; "
                           f"available: {', '.join(ALGORITHMS)}")
        if self.platform not in PLATFORMS:
            raise JobError(f"unknown platform {self.platform!r}; "
                           f"available: {', '.join(PLATFORMS)}")
        code = self.dataset.upper()
        if code not in PAPER_DATASETS:
            raise JobError(f"unknown dataset {self.dataset!r}; "
                           f"available: {', '.join(PAPER_DATASETS)}")
        object.__setattr__(self, "dataset", code)
        try:
            normalised = json.loads(json.dumps(dict(self.run_kwargs)))
        except (TypeError, ValueError) as exc:
            raise JobError(f"run_kwargs must be JSON-safe: {exc}") from exc
        # Snapshot the kwargs through a JSON round-trip: later mutation
        # of the caller's dict cannot skew the key, and JSON-equivalent
        # spellings (tuple vs list) become one canonical value — the
        # cache compares against JSON-loaded payloads, so a
        # non-normalised job would never match its own entry.
        object.__setattr__(self, "run_kwargs", normalised)

    # ------------------------------------------------------------------
    @property
    def resolved_weighted(self) -> bool:
        """Whether the dataset analog carries edge weights."""
        if self.weighted is not None:
            return self.weighted
        return self.algorithm in weighted_algorithms()

    def resolved_config(self) -> GraphRConfig:
        """The configuration a GraphR run will actually use."""
        return self.config or GraphRConfig(mode="analytic")

    def resolved_deployment(self) -> DeploymentSpec:
        """The deployment scenario (default: in-memory single node)."""
        return self.deployment or DeploymentSpec(kind="single")

    def canonical_dict(self) -> Dict[str, object]:
        """Fully-resolved, JSON-safe description of the run.

        Defaults are expanded (weighting, configuration) so two jobs
        that execute identically serialize identically, whichever
        shorthand constructed them.
        """
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "platform": self.platform,
            "run_kwargs": dict(self.run_kwargs),
            "weighted": self.resolved_weighted,
            "dataset_seed": self.dataset_seed,
        }
        if self.platform == "graphr":
            payload["config"] = self.resolved_config().to_dict()
            deployment = self.resolved_deployment()
            # A "single" spec is the absent-field default; leaving it
            # out keeps plain jobs' keys (and their cached results)
            # stable.
            if deployment.kind != "single":
                payload["deployment"] = deployment.to_dict()
        return payload

    def content_key(self) -> str:
        """SHA-256 hex digest of the canonical JSON form.

        Stable across processes, restarts and machines — the result
        cache's file name.
        """
        text = json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for logs and reports."""
        return f"{self.platform}:{self.algorithm}:{self.dataset}"

    def __hash__(self) -> int:
        return hash((self.algorithm, self.dataset, self.platform,
                     self.config, _freeze(dict(self.run_kwargs)),
                     self.deployment, self.weighted, self.dataset_seed))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Portable dictionary (the job-file entry format)."""
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "platform": self.platform,
            "run_kwargs": dict(self.run_kwargs),
            "dataset_seed": self.dataset_seed,
        }
        if self.weighted is not None:
            payload["weighted"] = self.weighted
        if self.config is not None:
            payload["config"] = self.config.to_dict()
        if self.deployment is not None:
            payload["deployment"] = self.deployment.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object],
                  defaults: Optional[Mapping[str, object]] = None) -> "Job":
        """Build a job from a job-file entry.

        ``defaults`` (the job file's top-level ``defaults`` object) is
        merged underneath each entry; ``config`` may be a partial
        field-override dictionary.
        """
        merged: Dict[str, object] = dict(defaults or {})
        merged.update(payload)
        known = {"algorithm", "dataset", "platform", "config",
                 "run_kwargs", "deployment", "weighted", "dataset_seed"}
        unknown = set(merged) - known
        if unknown:
            raise JobError(
                f"unknown job field(s): {', '.join(sorted(unknown))}")
        for required in ("algorithm", "dataset"):
            if required not in merged:
                raise JobError(f"job entry missing {required!r}")
        config = merged.get("config")
        if isinstance(config, Mapping):
            try:
                config = GraphRConfig.from_dict(config)
            except (ConfigError, TypeError, ValueError) as exc:
                raise JobError(f"invalid job config: {exc}") from exc
        elif config is not None and not isinstance(config, GraphRConfig):
            raise JobError("config must be a mapping of field overrides")
        deployment = merged.get("deployment")
        if isinstance(deployment, Mapping):
            try:
                deployment = DeploymentSpec.from_dict(deployment)
            except (ConfigError, TypeError, ValueError) as exc:
                raise JobError(f"invalid job deployment: {exc}") from exc
        elif deployment is not None \
                and not isinstance(deployment, DeploymentSpec):
            raise JobError("deployment must be a mapping of spec fields")
        run_kwargs = merged.get("run_kwargs", {})
        if not isinstance(run_kwargs, Mapping):
            raise JobError("run_kwargs must be a mapping")
        seed = merged.get("dataset_seed", DEFAULT_DATASET_SEED)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise JobError("dataset_seed must be an integer")
        return cls(
            algorithm=merged["algorithm"],
            dataset=merged["dataset"],
            platform=merged.get("platform", "graphr"),
            config=config,
            run_kwargs=dict(run_kwargs),
            deployment=deployment,
            weighted=merged.get("weighted"),
            dataset_seed=seed,
        )


def load_jobfile(path: Union[str, Path]) -> List[Job]:
    """Parse a batch job file.

    Two shapes are accepted: a bare JSON list of job entries, or an
    object ``{"defaults": {...}, "jobs": [...]}`` whose defaults merge
    underneath every entry.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise JobError(f"cannot read job file {path}: {exc}") from exc
    if isinstance(payload, list):
        defaults: Mapping[str, object] = {}
        entries = payload
    elif isinstance(payload, dict):
        defaults = payload.get("defaults", {})
        entries = payload.get("jobs")
        if not isinstance(entries, list):
            raise JobError(f"{path}: expected a top-level 'jobs' list")
    else:
        raise JobError(f"{path}: job file must be a list or an object")
    jobs = [Job.from_dict(entry, defaults) for entry in entries]
    if not jobs:
        raise JobError(f"{path}: no jobs defined")
    return jobs
