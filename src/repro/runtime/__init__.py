"""Parallel simulation runtime: jobs, scheduling and result caching.

The pieces, bottom to top:

* :class:`~repro.runtime.job.Job` — a canonicalized simulation request
  with a stable content key (SHA-256 of its resolved JSON form).
* :class:`~repro.runtime.cache.ResultCache` — content-addressed JSON
  persistence of finished :class:`~repro.hw.stats.RunStats`.
* :class:`~repro.runtime.scheduler.Scheduler` — executes job batches
  serially or across a ``multiprocessing`` pool with per-job error
  capture and deterministic result ordering.
* :class:`~repro.runtime.runner.BatchRunner` — the facade combining
  all three; what the experiment harness, sweeps and CLI build on.
"""

from repro.core.partitioned import DeploymentSpec
from repro.runtime.cache import CacheEntry, CacheStats, ResultCache
from repro.runtime.job import ALGORITHMS, PLATFORMS, Job, load_jobfile
from repro.runtime.runner import BatchRunner
from repro.runtime.scheduler import (JobResult, Scheduler,
                                     WorkerCrash, WorkerProcess,
                                     WorkerTimeout, attach_dataset,
                                     execute_job, execute_payload,
                                     prepare_block_dir, worker_loop)

__all__ = [
    "ALGORITHMS",
    "PLATFORMS",
    "BatchRunner",
    "CacheEntry",
    "CacheStats",
    "DeploymentSpec",
    "Job",
    "JobResult",
    "ResultCache",
    "Scheduler",
    "WorkerCrash",
    "WorkerProcess",
    "WorkerTimeout",
    "attach_dataset",
    "execute_job",
    "execute_payload",
    "load_jobfile",
    "prepare_block_dir",
    "worker_loop",
]
