"""The facade the rest of the codebase runs simulations through.

:class:`BatchRunner` ties the pieces together: a batch of jobs is first
answered from the :class:`~repro.runtime.cache.ResultCache` (when one
is configured), only the misses go to the
:class:`~repro.runtime.scheduler.Scheduler`, fresh results are written
back, and everything is reassembled in submission order.  The
experiment harness, the sweep utilities and the CLI all sit on top of
this one entry point, so worker counts and cache directories are set
in exactly one place.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.hw.stats import RunStats
from repro.runtime.cache import ResultCache
from repro.runtime.job import Job
from repro.runtime.scheduler import JobResult, Scheduler

__all__ = ["BatchRunner"]


class BatchRunner:
    """Run simulation jobs with optional parallelism and caching.

    Parameters
    ----------
    workers:
        Process-pool size; ``1`` executes in-process.
    cache_dir:
        Directory of the persistent result cache; ``None`` disables
        caching.  The same directory also hosts prepared out-of-core
        block shards (``shards/``), so repeated out-of-core jobs skip
        the re-shard.
    config:
        Default GraphR configuration for jobs that do not carry their
        own (the analytic-mode default mirrors the experiment harness).
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None,
                 config: Optional[GraphRConfig] = None) -> None:
        self.scheduler = Scheduler(workers=workers, cache_dir=cache_dir)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.config = config or GraphRConfig(mode="analytic")

    @property
    def workers(self) -> int:
        """Configured process-pool size."""
        return self.scheduler.workers

    # ------------------------------------------------------------------
    def make_job(self, algorithm: str, dataset: str,
                 platform: str = "graphr",
                 config: Optional[GraphRConfig] = None,
                 deployment: Optional[DeploymentSpec] = None,
                 **run_kwargs) -> Job:
        """Build a job carrying this runner's default configuration."""
        return Job(
            algorithm=algorithm,
            dataset=dataset,
            platform=platform,
            config=(config or self.config) if platform == "graphr" else None,
            deployment=deployment,
            run_kwargs=run_kwargs,
        )

    def run_jobs(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute a batch; cached jobs never reach the scheduler.

        The returned list matches ``jobs`` in length and order, every
        job has either stats or a captured error, and each distinct
        job is executed at most once per batch (duplicates share one
        execution).
        """
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: Dict[str, List[int]] = {}
        pending_jobs: List[Job] = []
        for index, job in enumerate(jobs):
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    results[index] = JobResult(job=job, stats=cached,
                                               from_cache=True)
                    continue
            key = job.content_key()
            if key in pending:
                pending[key].append(index)
            else:
                pending[key] = [index]
                pending_jobs.append(job)

        for job, result in zip(pending_jobs,
                               self.scheduler.run(pending_jobs)):
            if result.ok and self.cache is not None:
                self.cache.put(job, result.stats)
            for index in pending[job.content_key()]:
                results[index] = result
        return results

    def run(self, algorithm: str, dataset: str, platform: str = "graphr",
            config: Optional[GraphRConfig] = None,
            deployment: Optional[DeploymentSpec] = None,
            **run_kwargs) -> RunStats:
        """One-job convenience: run (or fetch) and return the stats,
        raising :class:`~repro.errors.JobError` on failure."""
        job = self.make_job(algorithm, dataset, platform=platform,
                            config=config, deployment=deployment,
                            **run_kwargs)
        return self.run_jobs([job])[0].unwrap()

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, object]:
        """Hit/miss counters (all zero when caching is disabled)."""
        if self.cache is None:
            return {"hits": 0, "misses": 0, "stores": 0,
                    "invalidations": 0, "hit_rate": 0.0}
        return self.cache.stats.as_dict()

    def __repr__(self) -> str:
        where = self.cache.cache_dir if self.cache else None
        return (f"BatchRunner(workers={self.workers}, "
                f"cache_dir={str(where) if where else None!r})")
