"""Content-addressed, on-disk cache of completed simulation runs.

Completed :class:`~repro.hw.stats.RunStats` are persisted as JSON under
``<cache_dir>/<key[:2]>/<key>.json`` where ``key`` is the owning job's
:meth:`~repro.runtime.job.Job.content_key`.  The payload embeds the
job's canonical dictionary so a lookup can verify it really belongs to
the requesting job (guarding against truncated writes, hand-edited
files or a future format change) before trusting it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.hw.stats import RunStats
from repro.runtime.job import Job

__all__ = ["ResultCache", "CacheStats", "CacheEntry",
           "CACHE_FORMAT_VERSION"]

#: Bump when the persisted payload shape changes; stale entries are
#: treated as misses and rewritten.
CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe counter snapshot."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate}


@dataclass(frozen=True)
class CacheEntry:
    """One persisted result file, as seen by the inspection API."""

    key: str
    path: Path
    bytes: int
    mtime: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe row for CLI / metrics output."""
        return {"key": self.key, "path": str(self.path),
                "bytes": self.bytes, "mtime": self.mtime}


class ResultCache:
    """Persists one ``RunStats`` JSON file per job content key."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, job: Job) -> Path:
        """Cache file of one job (two-level fan-out keeps directories
        small on big sweeps)."""
        key = job.content_key()
        return self.cache_dir / key[:2] / f"{key}.json"

    def _load(self, job: Job) -> Optional[RunStats]:
        """Read one entry without touching the counters.

        *Any* unusable entry — unreadable, wrong version, foreign job,
        malformed stats — is a miss to be recomputed, never an error:
        the cache must not be able to break a run it only accelerates.
        """
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text())
            if (not isinstance(payload, dict)
                    or payload.get("version") != CACHE_FORMAT_VERSION
                    or payload.get("job") != job.canonical_dict()):
                raise ValueError("stale or foreign cache entry")
            return RunStats.from_dict(payload["stats"])
        except Exception:  # noqa: BLE001 - corrupt entries become misses
            return None

    def get(self, job: Job) -> Optional[RunStats]:
        """The cached stats of ``job``, or ``None`` on a miss
        (counted)."""
        stats = self._load(job)
        if stats is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return stats

    def peek(self, job: Job) -> Optional[RunStats]:
        """Like :meth:`get` but without counting a hit or miss.

        For observation paths (status polling, result serving) that
        must not skew the hit-rate the metrics report — the counters
        are meant to measure *dedup*, not polling frequency.
        """
        return self._load(job)

    def put(self, job: Job, stats: RunStats) -> Path:
        """Persist one finished run; returns the file written."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "job": job.canonical_dict(),
            "stats": stats.to_dict(),
        }
        # Write-then-rename so a crashed writer never leaves a torn
        # file a later reader would half-trust; the tmp name is
        # per-process so concurrent writers of the same key cannot
        # rename each other's half-written files.  Keys stay in payload
        # order: the ledger breakdowns' insertion order is part of what
        # makes reconstructed totals bit-identical.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(path)
        self.stats.stores += 1
        return path

    def invalidate(self, job: Job) -> bool:
        """Drop one job's entry; ``True`` if a file was removed."""
        path = self.path_for(job)
        try:
            path.unlink()
        except OSError:
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Drop every entry; returns the number of files removed."""
        removed = 0
        for entry in self.cache_dir.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.invalidations += removed
        return removed

    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        """Every result entry, oldest mtime first.

        Only the two-level ``<key[:2]>/<key>.json`` result files are
        listed; prepared shard directories (``shards/``) live deeper
        and are not part of the result inventory.
        """
        found = []
        for path in self.cache_dir.glob("*/*.json"):
            try:
                meta = path.stat()
            except OSError:
                continue  # pruned concurrently
            found.append(CacheEntry(key=path.stem, path=path,
                                    bytes=meta.st_size,
                                    mtime=meta.st_mtime))
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def total_bytes(self) -> int:
        """Bytes held by all result entries."""
        return sum(entry.bytes for entry in self.entries())

    def prune(self, max_bytes: int) -> List[CacheEntry]:
        """Evict oldest-mtime-first until at most ``max_bytes`` remain.

        Returns the evicted entries (possibly empty).  Eviction is
        size-bounding, not correctness-affecting: a pruned job simply
        re-simulates on its next submission.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = self.entries()
        total = sum(entry.bytes for entry in entries)
        evicted: List[CacheEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            try:
                entry.path.unlink()
            except OSError:
                continue  # raced with another pruner: already gone
            total -= entry.bytes
            evicted.append(entry)
            self.stats.invalidations += 1
        return evicted

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def __repr__(self) -> str:
        return (f"ResultCache({str(self.cache_dir)!r}, entries={len(self)}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})")
