"""Content-addressed, on-disk cache of completed simulation runs.

Completed :class:`~repro.hw.stats.RunStats` are persisted as JSON under
``<cache_dir>/<key[:2]>/<key>.json`` where ``key`` is the owning job's
:meth:`~repro.runtime.job.Job.content_key`.  The payload embeds the
job's canonical dictionary so a lookup can verify it really belongs to
the requesting job (guarding against truncated writes, hand-edited
files or a future format change) before trusting it.

The same directory hosts prepared out-of-core block shards under
``<cache_dir>/shards/<digest>/`` (see :mod:`repro.runtime.shards`).
Shard directories are part of the cache's disk footprint: they are
counted in :meth:`ResultCache.total_bytes`, evicted oldest-mtime-first
alongside result entries by :meth:`ResultCache.prune`, and removed by
:meth:`ResultCache.clear` — a long-lived service can therefore bound
its *entire* cache directory, not just the result files.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import CacheError
from repro.hw.stats import RunStats
from repro.obs import metrics
from repro.runtime.job import Job

__all__ = ["ResultCache", "CacheStats", "CacheEntry",
           "CACHE_FORMAT_VERSION"]

#: Bump when the persisted payload shape changes; stale entries are
#: treated as misses and rewritten.
CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe counter snapshot."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate}


@dataclass(frozen=True)
class CacheEntry:
    """One persisted artifact — a result file or a prepared shard
    directory — as seen by the inspection API."""

    key: str
    path: Path
    bytes: int
    mtime: float
    #: ``"result"`` for a stats file, ``"shard"`` for a block directory.
    kind: str = "result"

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe row for CLI / metrics output."""
        return {"key": self.key, "path": str(self.path),
                "bytes": self.bytes, "mtime": self.mtime,
                "kind": self.kind}


def _tree_bytes(directory: Path) -> int:
    """Recursive file-size total of one directory (0 if it vanished)."""
    total = 0
    for root, _, files in os.walk(directory):
        for name in files:
            try:
                total += (Path(root) / name).stat().st_size
            except OSError:
                continue  # pruned concurrently
    return total


#: A scratch build older than this is abandoned even if its pid number
#: is occupied — pids get recycled, and no real shard build takes an
#: hour, so the age cutoff bounds the leak a lucky recycle would cause.
_SCRATCH_GRACE_S = 3600.0


def _scratch_in_use(name: str, mtime: float) -> bool:
    """Whether a ``<digest>.tmp.<pid>`` scratch directory still belongs
    to a live builder: its pid must be running *and* the directory must
    be recent (False for malformed names)."""
    if time.time() - mtime > _SCRATCH_GRACE_S:
        return False
    _, _, pid_text = name.rpartition(".")
    try:
        pid = int(pid_text)
    except ValueError:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # e.g. EPERM: the pid exists but belongs to someone else
    return True


class ResultCache:
    """Persists one ``RunStats`` JSON file per job content key."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        # A published shard's contents are immutable (and deterministic
        # per digest), so its tree walk is memoised by name — metrics
        # polls must not re-stat every block file of every shard on
        # each request, and reuse touching the dir mtime must not
        # invalidate the memo.
        self._shard_sizes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def path_for(self, job: Job) -> Path:
        """Cache file of one job (two-level fan-out keeps directories
        small on big sweeps)."""
        key = job.content_key()
        return self.cache_dir / key[:2] / f"{key}.json"

    def _load(self, job: Job) -> Optional[RunStats]:
        """Read one entry without touching the counters.

        *Any* unusable entry — unreadable, wrong version, foreign job,
        malformed stats — is a miss to be recomputed, never an error:
        the cache must not be able to break a run it only accelerates.
        """
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text())
            if (not isinstance(payload, dict)
                    or payload.get("version") != CACHE_FORMAT_VERSION
                    or payload.get("job") != job.canonical_dict()):
                raise CacheError("stale or foreign cache entry")
            return RunStats.from_dict(payload["stats"])
        except Exception:  # noqa: BLE001 - corrupt entries become misses
            return None

    def get(self, job: Job) -> Optional[RunStats]:
        """The cached stats of ``job``, or ``None`` on a miss
        (counted)."""
        registry = metrics.get_registry()
        stats = self._load(job)
        if stats is None:
            self.stats.misses += 1
            registry.counter("repro_cache_misses_total",
                             "Result-cache lookups that missed").inc()
        else:
            self.stats.hits += 1
            registry.counter("repro_cache_hits_total",
                             "Result-cache lookups that hit").inc()
            try:
                # A hit refreshes the entry's mtime so prune's
                # oldest-first order sees reuse — hot results age like
                # hot shards, not like their write date.
                os.utime(self.path_for(job))
            except OSError:
                pass
        return stats

    def peek(self, job: Job) -> Optional[RunStats]:
        """Like :meth:`get` but without counting a hit or miss.

        For observation paths (status polling, result serving) that
        must not skew the hit-rate the metrics report — the counters
        are meant to measure *dedup*, not polling frequency.
        """
        return self._load(job)

    def put(self, job: Job, stats: RunStats) -> Path:
        """Persist one finished run; returns the file written."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "job": job.canonical_dict(),
            "stats": stats.to_dict(),
        }
        # Write-then-rename so a crashed writer never leaves a torn
        # file a later reader would half-trust; the tmp name is
        # per-process so concurrent writers of the same key cannot
        # rename each other's half-written files.  Keys stay in payload
        # order: the ledger breakdowns' insertion order is part of what
        # makes reconstructed totals bit-identical.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(path)
        self.stats.stores += 1
        metrics.get_registry().counter(
            "repro_cache_stores_total",
            "Finished runs persisted to the result cache").inc()
        return path

    def invalidate(self, job: Job) -> bool:
        """Drop one job's entry; ``True`` if a file was removed."""
        path = self.path_for(job)
        try:
            path.unlink()
        except OSError:
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Drop every artifact — result files *and* prepared shard
        directories; returns the number removed (each shard directory
        counts once)."""
        removed = 0
        for entry in sorted(self.cache_dir.glob("*/*.json")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.shard_entries():
            shutil.rmtree(shard.path, ignore_errors=True)
            if not shard.path.exists():
                removed += 1
        self.stats.invalidations += removed
        self._sweep_empty_dirs()
        return removed

    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        """Every result entry, oldest mtime first.

        Only the two-level ``<key[:2]>/<key>.json`` result files are
        listed here; prepared shard directories have their own
        inventory (:meth:`shard_entries`) and both feed
        :meth:`total_bytes` / :meth:`prune`.
        """
        metrics.get_registry().counter(
            "repro_cache_inventory_walks_total",
            "Full result-directory listings (each one stats every "
            "entry — pollers should hit the daemon's TTL memo "
            "instead)").inc()
        found = []
        # sorted(): directory order is filesystem-dependent, and ties
        # on mtime below break by whatever order this scan produced.
        for path in sorted(self.cache_dir.glob("*/*.json")):
            try:
                meta = path.stat()
            except OSError:
                continue  # pruned concurrently
            found.append(CacheEntry(key=path.stem, path=path,
                                    bytes=meta.st_size,
                                    mtime=meta.st_mtime))
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def shard_entries(self) -> List[CacheEntry]:
        """Every prepared shard directory, oldest mtime first.

        Includes abandoned ``*.tmp.<pid>`` scratch directories from
        dead (or hour-stale) builders — they consume the same disk and
        are reclaimed by the same eviction; a fresh scratch directory
        whose builder is still running is in active use and stays
        invisible.
        """
        root = self.cache_dir / "shards"
        found = []
        seen = set()
        if root.is_dir():
            for path in sorted(root.iterdir()):
                if not path.is_dir():
                    continue
                try:
                    meta = path.stat()
                except OSError:
                    continue  # pruned concurrently
                if ".tmp." in path.name \
                        and _scratch_in_use(path.name, meta.st_mtime):
                    continue
                seen.add(path.name)
                size = self._shard_sizes.get(path.name)
                if size is None:
                    size = _tree_bytes(path)
                    self._shard_sizes[path.name] = size
                found.append(CacheEntry(key=path.name, path=path,
                                        bytes=size,
                                        mtime=meta.st_mtime,
                                        kind="shard"))
        for stale in set(self._shard_sizes) - seen:
            # pop, not del: concurrent metrics polls race this sweep.
            self._shard_sizes.pop(stale, None)
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def total_bytes(self) -> int:
        """Bytes held by all artifacts (results plus shard dirs)."""
        total = (sum(entry.bytes for entry in self.entries())
                 + sum(entry.bytes for entry in self.shard_entries()))
        metrics.get_registry().gauge(
            "repro_cache_resident_bytes",
            "Bytes held by cache artifacts after the last prune").set(
                total)
        return total

    def _sweep_empty_dirs(self) -> None:
        """Remove fan-out/shard directories eviction emptied, so a
        prune-to-zero leaves the cache directory itself empty."""
        for child in sorted(self.cache_dir.iterdir()):
            if child.is_dir():
                try:
                    child.rmdir()
                except OSError:
                    pass  # still holds entries

    def prune(self, max_bytes: int) -> List[CacheEntry]:
        """Evict oldest-mtime-first until at most ``max_bytes`` remain.

        Result entries and prepared shard directories share one
        eviction order (shard reuse refreshes the directory mtime, so
        hot shards age like hot results; scratch dirs of live builders
        are skipped).  Returns the evicted entries (possibly empty).
        Eviction is size-bounding, not correctness-affecting: a pruned
        job simply re-simulates (and re-shards) on its next
        submission.  Note that a shard evicted *while a job is
        streaming it* fails that one run — prune an active service's
        cache to a bound above its working set, or when it is idle.
        """
        if max_bytes < 0:
            raise CacheError("max_bytes must be >= 0")
        entries = sorted(self.entries() + self.shard_entries(),
                         key=lambda entry: (entry.mtime, entry.key))
        total = sum(entry.bytes for entry in entries)
        evicted: List[CacheEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            if entry.kind == "shard":
                shutil.rmtree(entry.path, ignore_errors=True)
                if entry.path.exists():
                    continue  # raced with a concurrent builder
            else:
                try:
                    entry.path.unlink()
                except OSError:
                    continue  # raced with another pruner: already gone
            total -= entry.bytes
            evicted.append(entry)
            self.stats.invalidations += 1
        if evicted:
            registry = metrics.get_registry()
            registry.counter(
                "repro_cache_evictions_total",
                "Artifacts removed by size-bound pruning").inc(
                    len(evicted))
            registry.gauge(
                "repro_cache_resident_bytes",
                "Bytes held by cache artifacts after the last prune"
            ).set(total)
            self._sweep_empty_dirs()
        return evicted

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def __repr__(self) -> str:
        return (f"ResultCache({str(self.cache_dir)!r}, entries={len(self)}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})")
