"""Batch execution across a pool of warm worker processes.

The scheduler turns a list of :class:`~repro.runtime.job.Job` into a
list of :class:`JobResult` in the *same order*, whatever the worker
count: results are matched back by submission index, so a parallel
batch is a drop-in replacement for a serial loop.  Every worker wraps
execution in its own try/except and ships failures back as data — one
bad job reports an error instead of killing the batch.

Two failure modes are kept apart:

* a **deterministic job failure** (the job itself raised — bad source
  vertex, unsupported mode ...) comes back as ``{"ok": False}`` from
  :func:`execute_payload` and is *never* retried: rerunning the same
  job would fail the same way;
* a **worker crash** (the child process died — OOM kill, segfault,
  ``os._exit``) is detected through the pipe and retried on a fresh
  worker up to ``max_crash_retries`` times before the job is marked
  failed with ``crashed=True``.

Both paths surface the attempt count in :attr:`JobResult.attempts`.

Workers communicate in plain dictionaries (job spec out, stats dict
back) over :func:`worker_loop` — a warm loop that serves one payload
after another on a duplex pipe.  The persistent simulation service
(:mod:`repro.service`) keeps long-lived workers on the very same loop,
so batch and service execution are bit-identical by construction.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.util
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import JobError
from repro.hw.stats import RunStats
from repro.obs import logsetup, metrics, tracing
from repro.runtime.job import Job

log = logsetup.get_logger(__name__)

__all__ = ["Scheduler", "JobResult", "WorkerCrash", "WorkerTimeout",
           "WorkerProcess", "attach_dataset", "execute_job",
           "execute_payload", "prepare_block_dir", "worker_loop"]


def attach_dataset(job: Job, residency: bool = False,
                   resident_log: Optional[list] = None):
    """Prepare-or-attach the job's dataset graph (pipeline phases 1+2).

    With ``residency`` the graph comes from (or is published into) the
    host-wide shared-memory segment for that dataset; otherwise it is
    the classic per-process build.  Either way a cold build traces as
    ``prepare`` and a warm hit as ``attach`` — so a warm resubmission
    benches with its prepare phase collapsed to attach-only.
    """
    from repro.runtime import residency as residency_mod

    return residency_mod.ensure_dataset(
        job.dataset, weighted=job.resolved_weighted,
        seed=job.dataset_seed, share=residency,
        resident_log=resident_log)


def prepare_block_dir(job: Job, config,
                      cache_dir: Optional[str] = None,
                      residency: bool = False,
                      resident_log: Optional[list] = None):
    """Prepare phase for an out-of-core job: a complete shard directory.

    A warm shard never materializes the dataset at all (the block files
    are the prepared artifact); a cold one builds the graph via
    :func:`attach_dataset` and shards it under a traced ``shard-build``
    span.  Without a ``cache_dir`` the shards go to a per-process
    scratch root (removed at process exit) instead of a throwaway
    per-run temp dir, so repeat cache-less runs still reuse the shard.
    """
    from repro.runtime import residency as residency_mod
    from repro.runtime.shards import prepared_block_dir

    root = cache_dir if cache_dir is not None \
        else residency_mod.process_shard_root()
    return prepared_block_dir(
        lambda: attach_dataset(job, residency=residency,
                               resident_log=resident_log),
        config, root,
        dataset=job.dataset,
        dataset_seed=job.dataset_seed,
        weighted=job.resolved_weighted,
    )


def execute_job(job: Job,
                cache_dir: Optional[str] = None,
                residency: bool = False,
                resident_log: Optional[list] = None) -> RunStats:
    """Run one job in the current process and return its stats.

    Execution is an explicit three-phase pipeline:

    1. **prepare** — build or locate the immutable, content-keyed
       dataset artifact (generated graph, or prepared shard directory
       for out-of-core jobs);
    2. **attach** — map it into this process read-only (shared-memory
       attach, block-file mmap, or plain in-process reuse);
    3. **compute** — dispatch to the platform/deployment engine.

    The phases change only *where the bytes live*: results are
    bit-identical with ``residency`` on or off across single-node,
    out-of-core and multi-node deployments.

    ``cache_dir`` (the owning runner's cache directory) enables
    artifact reuse beyond finished results: out-of-core jobs keep
    their prepared block directories under ``<cache_dir>/shards/``.
    ``residency`` additionally shares prepared datasets between
    processes via ``multiprocessing.shared_memory`` (Linux; each
    action is reported into ``resident_log`` for the resident-set
    owner).  Imports lazily so forked workers only pay for what they
    run.
    """
    kwargs = dict(job.run_kwargs)
    if job.platform == "graphr":
        deployment = job.resolved_deployment()
        config = job.resolved_config()
        if deployment.kind == "out-of-core":
            from repro.core.outofcore import OutOfCoreRunner

            block_dir = prepare_block_dir(
                job, config, cache_dir, residency=residency,
                resident_log=resident_log)
            with tracing.span("attach", dataset=job.dataset,
                              deployment="out-of-core",
                              mmap=residency):
                runner = OutOfCoreRunner(block_dir, config,
                                         mmap_blocks=residency)
            _, stats = runner.run(job.algorithm, **kwargs)
            return stats
        graph = attach_dataset(job, residency=residency,
                               resident_log=resident_log)
        if deployment.kind == "multi-node":
            from repro.core.multinode import (MultiNodeConfig,
                                              MultiNodeGraphR)

            cluster = MultiNodeGraphR(MultiNodeConfig(
                num_nodes=deployment.num_nodes,
                node=config,
                link_bandwidth_bps=deployment.link_bandwidth_bps,
                link_latency_s=deployment.link_latency_s,
            ))
            _, stats = cluster.run(job.algorithm, graph, **kwargs)
        else:
            from repro.core.accelerator import GraphR

            _, stats = GraphR(config).run(job.algorithm, graph,
                                          **kwargs)
    else:
        from repro.baselines import CPUPlatform, GPUPlatform, PIMPlatform

        graph = attach_dataset(job, residency=residency,
                               resident_log=resident_log)
        platform_cls = {"cpu": CPUPlatform, "gpu": GPUPlatform,
                        "pim": PIMPlatform}[job.platform]
        _, stats = platform_cls().run(job.algorithm, graph, **kwargs)
    return stats


def execute_payload(payload: Dict[str, object],
                    cache_dir: Optional[str] = None,
                    residency: bool = False
                    ) -> Dict[str, object]:
    """Worker entry point: job dict in, result dict out.

    Must stay importable at module top level (pickled by name) and must
    never raise — errors travel back as ``{"ok": False, ...}`` so the
    pool and the rest of the batch survive.

    This is also where the telemetry envelope opens: each job runs
    under a fresh metrics registry (its snapshot rides back as
    ``outcome["metrics"]`` — a mergeable delta) and under a root trace
    span keyed by the content-key prefix, serialized into
    ``stats["extra"]["trace"]``.  Neither touches the simulated values:
    the trace is attached to the already-built stats dict and the
    registry only ever *observes*.
    """
    registry = metrics.MetricsRegistry()
    correlation = None
    resident_log: Optional[list] = [] if residency else None
    try:
        job = Job.from_dict(payload)
        correlation = job.content_key()[:12]
        logsetup.set_correlation_id(correlation)
        log.info("job start: %s", job.label())
        with metrics.use_registry(registry):
            registry.counter(
                "repro_jobs_started_total",
                "Jobs entering execute_payload").inc()
            started = time.perf_counter()
            with tracing.trace("job", correlation_id=correlation) as root:
                stats = execute_job(job, cache_dir=cache_dir,
                                    residency=residency,
                                    resident_log=resident_log)
            wall = time.perf_counter() - started
            registry.histogram(
                "repro_job_execute_seconds",
                "End-to-end job execution latency").observe(wall)
            registry.counter(
                "repro_jobs_completed_total",
                "Jobs finishing successfully").inc()
        stats_dict = stats.to_dict()
        if root is not None:
            root.annotate(algorithm=job.algorithm, dataset=job.dataset,
                          platform=job.platform)
            stats_dict["extra"]["trace"] = root.to_dict()
        log.info("job done: %.3fs wall", wall)
        outcome = {"ok": True, "stats": stats_dict,
                   "metrics": registry.snapshot()}
        if resident_log:
            outcome["resident"] = resident_log
        return outcome
    except Exception:  # noqa: BLE001 - the whole point is containment
        registry.counter("repro_jobs_failed_total",
                         "Jobs raising a deterministic error").inc()
        log.warning("job failed", exc_info=True)
        outcome = {"ok": False, "error": traceback.format_exc(),
                   "metrics": registry.snapshot()}
        if resident_log:
            # Segments touched before the failure still exist; the
            # resident-set owner must learn about them either way.
            outcome["resident"] = resident_log
        return outcome
    finally:
        if correlation is not None:
            logsetup.set_correlation_id(None)


def _prepend_queue_wait(stats_dict: Dict[str, object],
                        wait_s: float) -> None:
    """Insert a ``queue-wait`` span at the front of a serialized trace.

    The worker cannot know how long its payload sat queued before
    dispatch — only the dispatcher (scheduler or service supervisor)
    does, so the span is grafted onto the already-serialized tree.
    No-op when tracing was disabled (no trace in the stats).
    """
    trace_dict = stats_dict.get("extra", {}).get("trace")
    if isinstance(trace_dict, dict):
        trace_dict.setdefault("children", []).insert(
            0, {"name": "queue-wait", "duration_s": wait_s})


def worker_loop(conn, cache_dir: Optional[str] = None,
                residency: bool = False) -> None:
    """Warm-worker loop: ``(tag, payload)`` in, ``(tag, outcome)`` out.

    Serves payloads until the parent sends ``None`` or closes the pipe.
    Job errors are contained by :func:`execute_payload`; pipe failures
    just end the loop.  Both the batch :class:`Scheduler` and the
    service's :class:`~repro.service.supervisor.WorkerSupervisor` run
    their children on this one function.
    """
    try:
        import signal

        # A foreground Ctrl-C signals the whole process group; if it
        # killed a worker mid-job the parent would misread a graceful
        # interrupt as a worker *crash* and burn a retry.  Shutdown is
        # the parent's job (sentinel / pipe close), so ignore SIGINT.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        tag, payload = message
        try:
            conn.send((tag, execute_payload(payload,
                                            cache_dir=cache_dir,
                                            residency=residency)))
        except (BrokenPipeError, OSError):
            break


class WorkerCrash(RuntimeError):
    """A worker process died without delivering its result."""


class WorkerTimeout(RuntimeError):
    """A worker did not deliver its result within the allowed time."""


def _pool_context():
    """On Linux, ``fork`` lets workers inherit ``sys.path`` and the
    warm dataset cache.  Elsewhere the platform default is kept:
    macOS deliberately defaults to ``spawn`` because forking a
    threaded parent (numpy/Accelerate) can deadlock or crash."""
    return multiprocessing.get_context(
        "fork" if sys.platform == "linux" else None)


class WorkerProcess:
    """One warm child process speaking the :func:`worker_loop` protocol.

    The parent end of the duplex pipe lives here; :meth:`submit` sends
    one ``(tag, payload)`` and :meth:`recv` waits for the matching
    ``(tag, outcome)``, raising :class:`WorkerCrash` if the child dies
    first and :class:`WorkerTimeout` if it exceeds the deadline.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 ctx=None, residency: bool = False) -> None:
        ctx = ctx or _pool_context()
        self.conn, child = ctx.Pipe()
        # A forked child inherits BOTH pipe ends.  If it kept its copy
        # of the parent end, the parent's death would never surface as
        # EOF on recv() and an orphaned worker would block forever —
        # pinning every other inherited fd (e.g. the service daemon's
        # listening socket) with it.  Close the parent end in every
        # subsequently forked child (this worker's own child included).
        multiprocessing.util.register_after_fork(
            self, WorkerProcess._close_parent_end)
        self.process = ctx.Process(target=worker_loop,
                                   args=(child, cache_dir, residency),
                                   daemon=True)
        self.process.start()
        child.close()

    @staticmethod
    def _close_parent_end(worker: "WorkerProcess") -> None:
        try:
            worker.conn.close()
        except OSError:
            pass

    def alive(self) -> bool:
        """Whether the child process is still running."""
        return self.process.is_alive()

    def submit(self, tag: object, payload: Dict[str, object]) -> None:
        """Dispatch one payload; raises :class:`WorkerCrash` if the
        pipe is already gone."""
        try:
            self.conn.send((tag, payload))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(f"worker pipe closed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None
             ) -> Tuple[object, Dict[str, object]]:
        """The next ``(tag, outcome)`` message.

        Polls the pipe and the child's liveness together, so a silent
        death (``os._exit``, OOM kill) surfaces as
        :class:`WorkerCrash` instead of a hang; a result that raced
        the death is still drained and returned.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            step = 0.1
            if deadline is not None:
                step = min(step, max(0.0, deadline - time.monotonic()))
            try:
                if self.conn.poll(step):
                    return self.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrash(
                    f"worker pipe broke: {exc}") from exc
            if not self.process.is_alive():
                try:
                    if self.conn.poll(0):
                        return self.conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerCrash(
                    f"worker exited with code {self.process.exitcode}")
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerTimeout(
                    f"no result within {timeout:.1f}s")

    def stop(self, kill: bool = False,
             join_timeout: float = 2.0) -> None:
        """Shut the child down (politely, or with ``kill=True``)."""
        if not kill and self.process.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        elif self.process.is_alive():
            self.process.terminate()
        self.process.join(join_timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:
            pass


@dataclass
class JobResult:
    """Outcome of one scheduled job."""

    job: Job
    stats: Optional[RunStats] = None
    error: Optional[str] = None
    from_cache: bool = False
    #: Execution attempts consumed (> 1 only after worker crashes).
    attempts: int = 1
    #: The failure was a worker crash, not a deterministic job error.
    crashed: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job produced stats."""
        return self.error is None and self.stats is not None

    def unwrap(self) -> RunStats:
        """The stats, or a :class:`JobError` carrying the worker's
        traceback."""
        if not self.ok:
            raise JobError(
                f"job {self.job.label()} failed:\n{self.error or 'no stats'}")
        return self.stats


class Scheduler:
    """Executes job batches, serially or across a worker-process pool.

    Parameters
    ----------
    workers:
        Pool size; ``1`` executes in-process.
    cache_dir:
        Forwarded to :func:`execute_job` for artifact reuse (prepared
        out-of-core shards); ``None`` disables it.
    max_crash_retries:
        How many times a job whose worker *crashed* is retried on a
        fresh worker before being reported failed.  Deterministic job
        errors are never retried.
    residency:
        Share prepared datasets between pool workers via
        ``multiprocessing.shared_memory`` (``None`` auto-enables on
        Linux when a pool is actually used).  Segments created by a
        batch are unlinked when the pool winds down — the batch
        scheduler has no long-lived owner for them; the service
        supervisor does and manages its own resident set.  Results
        are bit-identical either way.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[Union[str, "object"]] = None,
                 max_crash_retries: int = 2,
                 residency: Optional[bool] = None) -> None:
        from repro.runtime.residency import residency_supported

        if workers < 1:
            raise JobError("workers must be >= 1")
        if max_crash_retries < 0:
            raise JobError("max_crash_retries must be >= 0")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.max_crash_retries = max_crash_retries
        if residency is None:
            residency = workers > 1
        self.residency = bool(residency) and residency_supported()

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute every job; results come back in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        payloads = [job.to_dict() for job in jobs]
        queued_at = time.perf_counter()
        registry = metrics.get_registry()
        if self.workers > 1 and len(jobs) > 1:
            raw = self._run_pool(payloads)
        else:
            raw = []
            for payload in payloads:
                wait = time.perf_counter() - queued_at
                registry.histogram(
                    "repro_scheduler_queue_wait_seconds",
                    "Time jobs waited before execution began").observe(
                        wait)
                outcome = execute_payload(payload,
                                          cache_dir=self.cache_dir)
                outcome["_queue_wait_s"] = wait
                raw.append(outcome)
        results = []
        for job, outcome in zip(jobs, raw):
            delta = outcome.pop("metrics", None)
            if delta is not None:
                registry.merge(delta)
            outcome.pop("resident", None)  # consumed by _run_pool
            wait = outcome.pop("_queue_wait_s", None)
            attempts = int(outcome.get("attempts", 1))
            if attempts > 1:
                registry.counter(
                    "repro_job_retries_total",
                    "Extra execution attempts after worker crashes"
                ).inc(attempts - 1)
            if outcome.get("ok"):
                if wait is not None:
                    _prepend_queue_wait(outcome["stats"], wait)
                results.append(JobResult(
                    job=job, stats=RunStats.from_dict(outcome["stats"]),
                    attempts=attempts))
            else:
                results.append(JobResult(
                    job=job,
                    error=outcome.get("error", "worker died"),
                    attempts=attempts,
                    crashed=bool(outcome.get("crashed"))))
        return results

    def _run_pool(self, payloads: List[Dict[str, object]]
                  ) -> List[Dict[str, object]]:
        """Map payloads over warm workers, preserving order.

        Each worker serves one payload at a time over its pipe; a
        worker that dies mid-job is replaced and the job requeued (to
        the front, so retries keep their scheduling slot) until its
        crash budget runs out.
        """
        ctx = _pool_context()
        registry = metrics.get_registry()
        queued_at = time.perf_counter()
        limit = 1 + self.max_crash_retries
        total = len(payloads)
        results: List[Optional[Dict[str, object]]] = [None] * total
        attempts = [0] * total
        waits: List[Optional[float]] = [None] * total
        # A worker found dead at dispatch time (died idle after its
        # previous job) never ran the payload, so that is not charged
        # as an execution attempt — but it is bounded separately so a
        # pathological spawn-die loop cannot spin forever.
        dispatch_failures = [0] * total
        pending = deque(range(total))
        pool_size = min(self.workers, total)
        workers: List[WorkerProcess] = []
        busy: Dict[WorkerProcess, int] = {}
        # Shared-memory segments the workers report creating/attaching:
        # a batch has no long-lived resident-set owner, so the pool
        # unlinks them on the way out.
        seen_segments: set = set()

        def crashed(index: int, detail: object) -> None:
            registry.counter(
                "repro_worker_crashes_total",
                "Worker processes that died mid-job").inc()
            log.warning("worker crashed on job %d: %s", index, detail)
            if attempts[index] < limit:
                pending.appendleft(index)
            else:
                results[index] = {
                    "ok": False, "crashed": True,
                    "error": (f"worker crashed while running job "
                              f"(attempt {attempts[index]}/{limit}): "
                              f"{detail}"),
                }

        try:
            while pending or busy:
                while len(workers) < pool_size and pending:
                    workers.append(WorkerProcess(
                        cache_dir=self.cache_dir, ctx=ctx,
                        residency=self.residency))
                for worker in list(workers):
                    if worker in busy or not pending:
                        continue
                    index = pending.popleft()
                    attempts[index] += 1
                    if attempts[index] == 1:
                        waits[index] = time.perf_counter() - queued_at
                        registry.histogram(
                            "repro_scheduler_queue_wait_seconds",
                            "Time jobs waited before execution began"
                        ).observe(waits[index])
                    try:
                        worker.submit(index, payloads[index])
                    except WorkerCrash as exc:
                        workers.remove(worker)
                        worker.stop(kill=True)
                        attempts[index] -= 1  # never actually ran
                        dispatch_failures[index] += 1
                        if dispatch_failures[index] > limit + 2:
                            results[index] = {
                                "ok": False, "crashed": True,
                                "error": (f"could not dispatch job: "
                                          f"workers died before "
                                          f"accepting it ({exc})"),
                            }
                        else:
                            pending.appendleft(index)
                        continue
                    busy[worker] = index
                progressed = False
                for worker in list(busy):
                    try:
                        if not worker.conn.poll(0):
                            if worker.process.is_alive():
                                continue
                            if not worker.conn.poll(0):
                                raise WorkerCrash(
                                    f"worker exited with code "
                                    f"{worker.process.exitcode}")
                        tag, outcome = worker.conn.recv()
                    except (WorkerCrash, EOFError, OSError) as exc:
                        index = busy.pop(worker)
                        workers.remove(worker)
                        worker.stop(kill=True)
                        crashed(index, exc)
                        progressed = True
                        continue
                    index = busy.pop(worker)
                    results[index] = dict(outcome)
                    for entry in outcome.get("resident") or ():
                        if entry.get("name"):
                            seen_segments.add(str(entry["name"]))
                    progressed = True
                if busy and not progressed:
                    time.sleep(0.02)
            return [dict(outcome, attempts=attempts[index],
                         **({"_queue_wait_s": waits[index]}
                            if waits[index] is not None else {}))
                    for index, outcome in enumerate(results)]
        finally:
            for worker in workers:
                worker.stop()
            if seen_segments:
                from repro.runtime.residency import cleanup_segments

                cleanup_segments(seen_segments)
