"""Batch execution across a ``multiprocessing`` process pool.

The scheduler turns a list of :class:`~repro.runtime.job.Job` into a
list of :class:`JobResult` in the *same order*, whatever the worker
count: results are matched back by submission index, so a parallel
batch is a drop-in replacement for a serial loop.  Every worker wraps
execution in its own try/except and ships failures back as data — one
bad job reports an error instead of killing the batch.

Workers communicate in plain dictionaries (job spec out, stats dict
back).  Both the serial and the pooled path execute the *same* worker
function and reconstruct stats from the same JSON-safe payload, which
is what makes serial and parallel batches bit-identical.
"""

from __future__ import annotations

import multiprocessing
import sys
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import JobError
from repro.hw.stats import RunStats
from repro.runtime.job import Job

__all__ = ["Scheduler", "JobResult", "execute_job", "execute_payload"]


def execute_job(job: Job) -> RunStats:
    """Run one job in the current process and return its stats.

    Imports lazily so forked workers only pay for what they run.
    """
    from repro.graph.datasets import dataset

    graph = dataset(job.dataset, weighted=job.resolved_weighted,
                    seed=job.dataset_seed)
    kwargs = dict(job.run_kwargs)
    if job.platform == "graphr":
        deployment = job.resolved_deployment()
        config = job.resolved_config()
        if deployment.kind == "out-of-core":
            import tempfile

            from repro.core.outofcore import (OutOfCoreRunner,
                                              prepare_on_disk)

            with tempfile.TemporaryDirectory(
                    prefix="repro-ooc-") as scratch:
                prepare_on_disk(graph, scratch, config)
                runner = OutOfCoreRunner(scratch, config)
                _, stats = runner.run(job.algorithm, **kwargs)
        elif deployment.kind == "multi-node":
            from repro.core.multinode import (MultiNodeConfig,
                                              MultiNodeGraphR)

            cluster = MultiNodeGraphR(MultiNodeConfig(
                num_nodes=deployment.num_nodes,
                node=config,
                link_bandwidth_bps=deployment.link_bandwidth_bps,
                link_latency_s=deployment.link_latency_s,
            ))
            _, stats = cluster.run(job.algorithm, graph, **kwargs)
        else:
            from repro.core.accelerator import GraphR

            _, stats = GraphR(config).run(job.algorithm, graph,
                                          **kwargs)
    else:
        from repro.baselines import CPUPlatform, GPUPlatform, PIMPlatform

        platform_cls = {"cpu": CPUPlatform, "gpu": GPUPlatform,
                        "pim": PIMPlatform}[job.platform]
        _, stats = platform_cls().run(job.algorithm, graph, **kwargs)
    return stats


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Process-pool entry point: job dict in, result dict out.

    Must stay importable at module top level (pickled by name) and must
    never raise — errors travel back as ``{"ok": False, ...}`` so the
    pool and the rest of the batch survive.
    """
    try:
        job = Job.from_dict(payload)
        stats = execute_job(job)
        return {"ok": True, "stats": stats.to_dict()}
    except Exception:  # noqa: BLE001 - the whole point is containment
        return {"ok": False, "error": traceback.format_exc()}


@dataclass
class JobResult:
    """Outcome of one scheduled job."""

    job: Job
    stats: Optional[RunStats] = None
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job produced stats."""
        return self.error is None and self.stats is not None

    def unwrap(self) -> RunStats:
        """The stats, or a :class:`JobError` carrying the worker's
        traceback."""
        if not self.ok:
            raise JobError(
                f"job {self.job.label()} failed:\n{self.error or 'no stats'}")
        return self.stats


class Scheduler:
    """Executes job batches, serially or across a process pool."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise JobError("workers must be >= 1")
        self.workers = workers

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute every job; results come back in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        payloads = [job.to_dict() for job in jobs]
        if self.workers > 1 and len(jobs) > 1:
            raw = self._run_pool(payloads)
        else:
            raw = [execute_payload(payload) for payload in payloads]
        results = []
        for job, outcome in zip(jobs, raw):
            if outcome.get("ok"):
                results.append(JobResult(
                    job=job, stats=RunStats.from_dict(outcome["stats"])))
            else:
                results.append(JobResult(
                    job=job, error=outcome.get("error", "worker died")))
        return results

    def _run_pool(self, payloads: List[Dict[str, object]]
                  ) -> List[Dict[str, object]]:
        """Map payloads over a process pool, preserving order.

        On Linux, ``fork`` lets workers inherit ``sys.path`` and the
        warm dataset cache.  Elsewhere the platform default is kept:
        macOS deliberately defaults to ``spawn`` because forking a
        threaded parent (numpy/Accelerate) can deadlock or crash.
        """
        ctx = multiprocessing.get_context(
            "fork" if sys.platform == "linux" else None)
        workers = min(self.workers, len(payloads))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(execute_payload, payloads)
