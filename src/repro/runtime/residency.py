"""Shared-memory dataset residency: the attach side of prepare/attach/compute.

Every worker used to regenerate its dataset analog in-process, so a
pool of N workers serving the same handful of graphs held N private
copies and paid N generation costs.  This module gives prepared
datasets a *resident* form: one immutable, content-keyed
``multiprocessing.shared_memory`` segment per ``(dataset, weighted,
seed)`` triple, published once by whichever worker gets there first
and mapped read-only by everyone else.  Out-of-core block files get
the same treatment for free by mmap-ing the already content-keyed
shard files (see :func:`repro.graph.io.load_binary`); this module owns
the in-memory COO arrays.

Segment layout (all little-endian)::

    offset 0   8-byte magic  — written LAST, doubles as the ready flag
    offset 8   u64 header length
    offset 16  u64 payload base (64-aligned)
    offset 24  JSON header: dataset metadata + per-array dtype/count/offset
    payload    the COO arrays (rows, cols, values), each 64-aligned

Because the magic is written last, a reader attaching mid-build sees
"not ready", never a torn artifact.  Builds are serialized by a tiny
claim segment (``<name>.lck`` — creating it with ``create=True`` is
the atomic claim); losers poll for the ready flag and fall back to a
private in-process build if the builder vanishes, so residency can
only ever add sharing, never block progress.

Lifecycle is owned explicitly: CPython < 3.13 registers every attach
with the ``resource_tracker`` (which would unlink segments at process
exit and spam leak warnings), so every handle is untracked right after
creation and ownership moves to either the batch scheduler (unlink at
end of batch) or the service supervisor's :class:`ResidentSetManager`
(refcount pins, LRU eviction under a byte budget, orphan sweeps after
worker crashes).  POSIX semantics make eviction safe under in-flight
jobs: unlinking removes the name, the memory lives until the last
worker unmaps.

Results are bit-identical with residency on or off: the segment holds
the exact bytes of the generated arrays and the attach path rebuilds
the same frozen :class:`~repro.graph.graph.Graph` around read-only
views of them.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import shutil
import struct
import sys
import tempfile
import threading
import time
from collections import OrderedDict
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import ResidencyError
from repro.obs import logsetup, metrics, tracing

__all__ = ["SEGMENT_PREFIX", "ResidentSetManager", "SegmentNotReady",
           "attach_graph", "cleanup_segments", "ensure_dataset",
           "host_resident_stats", "list_host_segments",
           "process_shard_root", "publish_graph", "residency_supported",
           "segment_for", "unlink_segment"]

log = logsetup.get_logger(__name__)

#: Every resident segment (and claim lock) starts with this.
SEGMENT_PREFIX = "repro-ds-"
_LOCK_SUFFIX = ".lck"
_MAGIC = b"RPRODS01"
_ALIGN = 64
_HEADER_OFFSET = 24
#: A not-ready segment or claim lock older than this is presumed
#: orphaned by a dead builder and may be swept.
STALE_GRACE_S = 60.0
#: How long an attach-side loser waits for the claimed build before
#: falling back to a private in-process build.
_BUILD_WAIT_S = 120.0
#: Per-process cap on memoized attached graphs (LRU).  Eviction only
#: drops *references*; numpy views keep the mapping alive until the
#: caller is done, so this bounds bookkeeping, not correctness.
_LOCAL_LIMIT = 8

_SHM_DIR = Path("/dev/shm")


class SegmentNotReady(RuntimeError):
    """The segment exists but its ready magic is not written yet."""


def residency_supported() -> bool:
    """Shared-memory residency rides on fork + /dev/shm: Linux only
    (matching the scheduler's fork-based warm pool)."""
    return sys.platform == "linux"


def segment_for(code: str, weighted: bool, seed: int) -> str:
    """Deterministic segment name for one dataset analog.

    Callers that know a job can derive the name *before* the job runs
    — the supervisor pins it ahead of dispatch on exactly this.
    """
    from repro.graph.datasets import artifact_key

    return SEGMENT_PREFIX + artifact_key(code, weighted, seed)[:24]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from the resource tracker (CPython < 3.13
    registers attaches too, and would unlink the segment when *any*
    attaching process exits).  Lifecycle is managed explicitly here."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker quirks are best-effort
        pass


def _abandon_handle(shm: shared_memory.SharedMemory) -> None:
    """Drop the handle's claim on its mapping without closing it.

    numpy views exported from ``shm.buf`` make ``close()`` raise
    ``BufferError`` for as long as they live — including at GC time,
    where the failing ``__del__`` would print ignored-exception noise.
    The views keep the mapping alive on their own and unmap it when
    the last one dies, so the handle can simply forget: close the fd
    and clear its references.
    """
    try:
        if shm._fd >= 0:
            os.close(shm._fd)
    except OSError:  # pragma: no cover - fd already gone
        pass
    shm._fd = -1
    shm._buf = None
    shm._mmap = None


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _plan_segment(graph) -> Tuple[bytes, int, int,
                                  List[Tuple[str, np.ndarray, int]]]:
    """Header bytes, payload base, total size and (key, array, offset)
    placements for ``graph``'s COO arrays."""
    adj = graph.adjacency
    arrays = [("rows", np.ascontiguousarray(adj.rows)),
              ("cols", np.ascontiguousarray(adj.cols)),
              ("values", np.ascontiguousarray(adj.values))]
    placements: List[Tuple[str, np.ndarray, int]] = []
    specs = []
    offset = 0
    for key, arr in arrays:
        offset = _align(offset)
        specs.append({"key": key, "dtype": arr.dtype.str,
                      "count": int(arr.shape[0]), "offset": offset})
        placements.append((key, arr, offset))
        offset += arr.nbytes
    header = json.dumps({
        "dataset": graph.name,
        "weighted": bool(graph.weighted),
        "scale_factor": graph.scale_factor,
        "num_vertices": int(graph.num_vertices),
        "arrays": specs,
    }, sort_keys=True, separators=(",", ":")).encode()
    base = _align(_HEADER_OFFSET + len(header))
    total = max(base + offset, base + 1)  # shm segments cannot be empty
    return header, base, total, placements


def publish_graph(name: str, graph) -> Optional[shared_memory.SharedMemory]:
    """Create and fill segment ``name`` with ``graph``; mark it ready.

    Returns the (untracked) handle, or ``None`` when the segment
    already exists — the caller should attach instead.
    """
    header, base, total, placements = _plan_segment(graph)
    try:
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=total)
    except FileExistsError:
        return None
    try:
        _untrack(shm)
        buf = shm.buf
        buf[8:16] = struct.pack("<Q", len(header))
        buf[16:24] = struct.pack("<Q", base)
        buf[_HEADER_OFFSET:_HEADER_OFFSET + len(header)] = header
        for _, arr, offset in placements:
            start = base + offset
            buf[start:start + arr.nbytes] = arr.tobytes()
        buf[0:8] = _MAGIC  # ready flag last: attachers never see a torn build
    except BaseException:
        # The segment has no owner process: abandoned here (OOM while
        # filling, KeyboardInterrupt...) it would outlive us as an
        # unready name that every attacher trips over until reboot.
        try:
            shm.close()
        except BufferError:  # pragma: no cover - no views exported yet
            pass
        unlink_segment(name)
        raise
    return shm


def attach_graph(name: str):
    """Attach segment ``name`` and rebuild its graph around read-only
    views of the shared arrays (zero copy).

    Returns ``(shm, graph)``; raises ``FileNotFoundError`` when the
    segment does not exist and :class:`SegmentNotReady` when the build
    has not published its magic yet.  The returned handle must stay
    referenced as long as the graph is used.
    """
    from repro.graph.coo import COOMatrix
    from repro.graph.graph import Graph

    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    buf = shm.buf
    if bytes(buf[0:8]) != _MAGIC:
        raise SegmentNotReady(name)
    header_len = struct.unpack("<Q", bytes(buf[8:16]))[0]
    base = struct.unpack("<Q", bytes(buf[16:24]))[0]
    meta = json.loads(
        bytes(buf[_HEADER_OFFSET:_HEADER_OFFSET + header_len]).decode())
    arrays: Dict[str, np.ndarray] = {}
    for spec in meta["arrays"]:
        arr = np.frombuffer(buf, dtype=np.dtype(spec["dtype"]),
                            count=spec["count"],
                            offset=base + spec["offset"])
        arr.flags.writeable = False
        arrays[spec["key"]] = arr
    n = meta["num_vertices"]
    graph = Graph(
        adjacency=COOMatrix((n, n), arrays["rows"], arrays["cols"],
                            arrays["values"]),
        name=meta["dataset"],
        weighted=meta["weighted"],
        scale_factor=meta["scale_factor"],
    )
    _abandon_handle(shm)
    return shm, graph


# ----------------------------------------------------------------------
# Per-process attach memo and the ensure_dataset entry point
# ----------------------------------------------------------------------
class _Resident(NamedTuple):
    shm: shared_memory.SharedMemory
    graph: object
    nbytes: int


#: name -> attached segment, LRU-bounded.  Evicting only drops our
#: references; the mapping unwinds once every view of it is gone.
_LOCAL: "OrderedDict[str, _Resident]" = OrderedDict()


def _local_remember(name: str, shm, graph, nbytes: int) -> None:
    _LOCAL[name] = _Resident(shm, graph, nbytes)
    _LOCAL.move_to_end(name)
    while len(_LOCAL) > _LOCAL_LIMIT:
        _LOCAL.popitem(last=False)


def _log_resident(resident_log, name: str, nbytes: int, action: str,
                  dataset: str) -> None:
    if resident_log is not None:
        resident_log.append({"name": name, "bytes": int(nbytes),
                             "action": action, "dataset": dataset})


def _claim_build(name: str) -> Optional[shared_memory.SharedMemory]:
    """Atomically claim the build of ``name`` (create the lock
    segment).  ``None`` means another process holds the claim."""
    try:
        lock = shared_memory.SharedMemory(name=name + _LOCK_SUFFIX,
                                          create=True, size=1)
    except FileExistsError:
        return None
    try:
        _untrack(lock)
    except BaseException:
        # A claim lock abandoned before hand-off (KeyboardInterrupt
        # between create and untrack) would stall every other builder
        # for the full stale-claim grace period.
        unlink_segment(name + _LOCK_SUFFIX)
        raise
    return lock


def _release_claim(lock: shared_memory.SharedMemory) -> None:
    try:
        lock.close()
    except BufferError:  # pragma: no cover - no views are ever exported
        pass
    # Unlink through the filesystem, not SharedMemory.unlink(): the
    # handle was already untracked at claim time, and unlink() would
    # send the resource tracker a second unregister for a name it no
    # longer knows (a KeyError traceback in the tracker process).
    unlink_segment(lock._name.lstrip("/"))


def _segment_age_s(name: str) -> Optional[float]:
    try:
        return time.time() - (_SHM_DIR / name).stat().st_mtime
    except OSError:
        return None


def _steal_stale_claim(name: str) -> Optional[shared_memory.SharedMemory]:
    """If the current claim lock is older than the grace period its
    builder is presumed dead: remove the lock (and any half-written
    segment) and try to claim again."""
    age = _segment_age_s(name + _LOCK_SUFFIX)
    if age is None or age < STALE_GRACE_S:
        return None
    unlink_segment(name + _LOCK_SUFFIX)
    if not _segment_ready(name):
        unlink_segment(name)
    return _claim_build(name)


def _attach_ready(name: str) -> Optional[Tuple[object, int]]:
    """Attach ``name`` if it exists and is ready; memoize locally.

    Every successful shared-memory attach counts here, whichever
    ``ensure_dataset`` path reached it — the "one build, N attaches"
    story must hold across all the race interleavings.
    """
    try:
        shm, graph = attach_graph(name)
    except (FileNotFoundError, SegmentNotReady):
        return None
    _local_remember(name, shm, graph, shm.size)
    metrics.get_registry().counter(
        "repro_dataset_attaches_total",
        "Dataset graphs served by attaching a resident segment").inc()
    return graph, shm.size


def ensure_dataset(code: str, weighted: bool, seed: int,
                   share: bool = False,
                   resident_log: Optional[list] = None):
    """Prepare-or-attach one dataset analog; the pipeline's entry point.

    With ``share=False`` (or off-Linux) this is the classic in-process
    path: a warm per-process cache hit traces as ``attach``, a cold
    generation as ``prepare``.  With ``share=True`` the graph comes
    from (or is published into) the host-wide shared-memory segment,
    and every action is reported into ``resident_log`` so the owner of
    the resident set can adopt/account the segments.
    """
    from repro.graph import datasets

    registry = metrics.get_registry()
    if not (share and residency_supported()):
        if datasets.cached(code, weighted, seed):
            with tracing.span("attach", dataset=code,
                              source="process-cache"):
                return datasets.dataset(code, weighted=weighted,
                                        seed=seed)
        with tracing.span("prepare", dataset=code):
            return datasets.dataset(code, weighted=weighted, seed=seed)

    name = segment_for(code, weighted, seed)
    resident = _LOCAL.get(name)
    if resident is not None:
        _LOCAL.move_to_end(name)
        with tracing.span("attach", dataset=code, source="resident"):
            registry.counter(
                "repro_dataset_attaches_total",
                "Dataset graphs served by attaching a resident "
                "segment").inc()
            _log_resident(resident_log, name, resident.nbytes,
                          "attach", code)
        return resident.graph

    with tracing.span("attach", dataset=code, source="shm") as span:
        attached = _attach_ready(name)
        if attached is not None:
            graph, nbytes = attached
            _log_resident(resident_log, name, nbytes, "attach", code)
            return graph
        if span is not None:
            span.annotate(cold=True)

    lock = _claim_build(name)
    if lock is None:
        lock = _steal_stale_claim(name)
    if lock is not None:
        try:
            # Lost-then-won race: the previous claimer may have
            # published between our attach miss and our claim.
            attached = _attach_ready(name)
            if attached is not None:
                graph, nbytes = attached
                _log_resident(resident_log, name, nbytes, "attach",
                              code)
                return graph
            with tracing.span("prepare", dataset=code, publish=True):
                built = datasets.dataset(code, weighted=weighted,
                                         seed=seed, use_cache=False)
                shm = publish_graph(name, built)
            if shm is None:  # someone published first after all
                attached = _attach_ready(name)
                if attached is not None:
                    graph, nbytes = attached
                    _log_resident(resident_log, name, nbytes,
                                  "attach", code)
                    return graph
                return built  # ready flag still unwritten: use ours
            del built  # the shm copy replaces the private one
            shm2, graph = attach_graph(name)
            _local_remember(name, shm2, graph, shm2.size)
            _log_resident(resident_log, name, shm2.size,
                          "build-publish", code)
            return graph
        finally:
            _release_claim(lock)

    # Another process is building: wait for the ready flag.
    deadline = time.monotonic() + _BUILD_WAIT_S
    while time.monotonic() < deadline:
        with tracing.span("attach", dataset=code, source="shm-wait"):
            attached = _attach_ready(name)
        if attached is not None:
            graph, nbytes = attached
            _log_resident(resident_log, name, nbytes, "attach", code)
            return graph
        if not (_SHM_DIR / (name + _LOCK_SUFFIX)).exists() \
                and not (_SHM_DIR / name).exists():
            break  # builder died before publishing anything
        time.sleep(0.05)
    # Progress over sharing: build privately, leave publication to a
    # future job.
    log.warning("residency wait for %s expired; building privately",
                name)
    with tracing.span("prepare", dataset=code, fallback=True):
        graph = datasets.dataset(code, weighted=weighted, seed=seed)
    _log_resident(resident_log, name, 0, "local", code)
    return graph


# ----------------------------------------------------------------------
# Host-side inventory and cleanup
# ----------------------------------------------------------------------
def _segment_ready(name: str) -> bool:
    try:
        with (_SHM_DIR / name).open("rb") as fh:
            return fh.read(8) == _MAGIC
    except OSError:
        return False


def list_host_segments(include_locks: bool = False
                       ) -> List[Tuple[str, int, float]]:
    """``(name, bytes, mtime)`` of every resident segment on the host
    (empty off-Linux)."""
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux hosts
        return []
    out = []
    for path in sorted(_SHM_DIR.glob(SEGMENT_PREFIX + "*")):
        if not include_locks and path.name.endswith(_LOCK_SUFFIX):
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        out.append((path.name, stat.st_size, stat.st_mtime))
    return out


def host_resident_stats() -> Dict[str, int]:
    """Gauge-style summary of the host's resident segments."""
    segments = list_host_segments()
    return {"resident_segments": len(segments),
            "resident_bytes": sum(size for _, size, _ in segments)}


def unlink_segment(name: str) -> bool:
    """Remove segment ``name`` from the host namespace.  Safe while
    mapped: POSIX frees the memory on the last unmap."""
    try:
        (_SHM_DIR / name).unlink()
        return True
    except OSError:
        return False


def cleanup_segments(names: Iterable[str]) -> None:
    """Unlink segments and their claim locks (batch-scheduler exit)."""
    for name in names:
        unlink_segment(name)
        unlink_segment(name + _LOCK_SUFFIX)


# ----------------------------------------------------------------------
# Out-of-core scratch shards for cache-less runs
# ----------------------------------------------------------------------
_SCRATCH: Tuple[Optional[str], Optional[int]] = (None, None)


def _purge_scratch(path: str, owner_pid: int) -> None:
    # Forked children inherit the registration; only the owner removes.
    if os.getpid() == owner_pid:
        shutil.rmtree(path, ignore_errors=True)


def process_shard_root() -> str:
    """A per-process shard cache root for ``cache_dir=None`` runs.

    Out-of-core jobs without a cache directory used to re-shard into a
    fresh temp dir on every execution; routing them through one
    process-lifetime root makes repeat runs warm (and gets counted by
    the shard build/reuse metrics).  Removed at process exit via both
    ``atexit`` (main process) and ``multiprocessing.util.Finalize``
    (forked workers).
    """
    global _SCRATCH
    path, pid = _SCRATCH
    if path is None or pid != os.getpid() or not os.path.isdir(path):
        import multiprocessing.util

        path = tempfile.mkdtemp(prefix="repro-scratch-")
        owner = os.getpid()
        atexit.register(_purge_scratch, path, owner)
        multiprocessing.util.Finalize(None, _purge_scratch,
                                      args=(path, owner),
                                      exitpriority=100)
        _SCRATCH = (path, owner)
    return path


# ----------------------------------------------------------------------
# The supervisor-owned resident set
# ----------------------------------------------------------------------
class ResidentSetManager:
    """Refcounted owner of the host's resident segments.

    The service supervisor pins a job's expected segment before
    dispatch and unpins it after, adopts whatever segments the worker
    reports (``outcome["resident"]``), evicts least-recently-used
    *unpinned* segments once the pool exceeds ``max_bytes``, and
    sweeps segments orphaned by worker crashes (a builder that died
    mid-publish leaves a not-ready segment and a stale claim lock).

    ``max_bytes=0`` means unbounded.  Thread-safe: slot threads call
    in concurrently.
    """

    def __init__(self, max_bytes: int = 0) -> None:
        if max_bytes < 0:
            raise ResidencyError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._segments: Dict[str, Dict[str, int]] = {}
        self._pins: Dict[str, int] = {}
        self._tick = itertools.count()
        self.evictions = 0
        self.orphans_swept = 0

    # -- accounting ----------------------------------------------------
    def _publish_gauges(self) -> None:
        registry = metrics.get_registry()
        registry.gauge(
            "repro_resident_segments",
            "Shared-memory dataset segments tracked by the resident "
            "set").set(self.segment_count)
        registry.gauge(
            "repro_resident_bytes",
            "Bytes pinned in tracked shared-memory dataset "
            "segments").set(self.total_bytes)

    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry["bytes"]
                       for entry in self._segments.values())

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "resident_segments": len(self._segments),
                "resident_bytes": sum(entry["bytes"]
                                      for entry in self._segments.values()),
            }

    # -- pinning -------------------------------------------------------
    def pin(self, name: str) -> None:
        """Protect ``name`` from eviction while a job that needs it is
        in flight (the segment need not exist yet)."""
        with self._lock:
            self._pins[name] = self._pins.get(name, 0) + 1
            entry = self._segments.get(name)
            if entry is not None:
                entry["last_used"] = next(self._tick)

    def unpin(self, name: str) -> None:
        with self._lock:
            count = self._pins.get(name, 0) - 1
            if count > 0:
                self._pins[name] = count
            else:
                self._pins.pop(name, None)

    def pinned(self, name: str) -> bool:
        with self._lock:
            return self._pins.get(name, 0) > 0

    # -- adoption ------------------------------------------------------
    def _adopt(self, name: str, nbytes: int) -> None:
        if nbytes <= 0:
            try:
                nbytes = (_SHM_DIR / name).stat().st_size
            except OSError:
                return  # vanished already; nothing to track
        self._segments[name] = {"bytes": int(nbytes),
                                "last_used": next(self._tick)}

    def observe(self, report: Optional[Iterable[Dict[str, object]]]
                ) -> None:
        """Fold a worker's resident log into the tracked set, then
        enforce the byte budget."""
        if not report:
            return
        with self._lock:
            for entry in report:
                action = entry.get("action")
                name = entry.get("name")
                if not name or action == "local":
                    continue
                self._adopt(str(name), int(entry.get("bytes") or 0))
        self.evict_to_budget()
        self._publish_gauges()

    # -- eviction and sweeping -----------------------------------------
    def evict_to_budget(self) -> List[str]:
        """Unlink LRU unpinned segments until the pool fits
        ``max_bytes``.  In-flight attachments keep their mapping —
        unlink only removes the name."""
        if not self.max_bytes:
            return []
        evicted: List[str] = []
        with self._lock:
            while sum(e["bytes"] for e in self._segments.values()) \
                    > self.max_bytes:
                victims = sorted(
                    (name for name in self._segments
                     if self._pins.get(name, 0) == 0),
                    key=lambda name: self._segments[name]["last_used"])
                if not victims:
                    break  # everything pinned: over budget but safe
                victim = victims[0]
                del self._segments[victim]
                evicted.append(victim)
        for name in evicted:
            unlink_segment(name)
            metrics.get_registry().counter(
                "repro_resident_evictions_total",
                "Resident segments unlinked to fit the byte "
                "budget").inc()
            log.info("evicted resident segment %s", name)
        if evicted:
            with self._lock:
                self.evictions += len(evicted)
            self._publish_gauges()
        return evicted

    def sweep_orphans(self) -> List[str]:
        """Reconcile with the host after a worker crash.

        Ready-but-untracked segments are adopted (a crash between
        publish and report must not leak them); not-ready segments and
        claim locks older than the stale grace are removed — their
        builder died mid-write.
        """
        removed: List[str] = []
        for name, nbytes, mtime in list_host_segments(
                include_locks=True):
            if name.endswith(_LOCK_SUFFIX):
                if time.time() - mtime >= STALE_GRACE_S:
                    if unlink_segment(name):
                        removed.append(name)
                continue
            if _segment_ready(name):
                with self._lock:
                    if name not in self._segments:
                        self._adopt(name, nbytes)
                continue
            if time.time() - mtime >= STALE_GRACE_S \
                    and not self.pinned(name):
                if unlink_segment(name):
                    removed.append(name)
        if removed:
            with self._lock:
                self.orphans_swept += len(removed)
            metrics.get_registry().counter(
                "repro_resident_orphans_swept_total",
                "Orphaned segments/locks removed after worker "
                "crashes").inc(len(removed))
        self.evict_to_budget()
        self._publish_gauges()
        return removed

    def shutdown(self) -> None:
        """Unlink every tracked segment, then purge anything left
        under the prefix (claim locks included) — a cleanly stopped
        service leaves /dev/shm as it found it."""
        with self._lock:
            tracked = list(self._segments)
            self._segments.clear()
            self._pins.clear()
        for name in tracked:
            unlink_segment(name)
        for name, _, _ in list_host_segments(include_locks=True):
            unlink_segment(name)
        self._publish_gauges()
