"""Prepared-shard reuse for out-of-core jobs.

:func:`~repro.core.outofcore.prepare_on_disk` is deterministic: the
block files depend only on the dataset analog (code, seed, weighting)
and the parts of the :class:`~repro.core.config.GraphRConfig` that
shape the preprocessing order (block size and crossbar geometry).
Re-sharding the same graph for every out-of-core job is therefore pure
waste — this module keys finished block directories by those inputs
and keeps them under ``<cache_dir>/shards/<digest>/`` so repeated jobs
stream straight from the existing shard.

Publication is atomic: a shard is built in a per-process scratch
directory and renamed into place only after its manifest (written
last) exists, so readers never see a half-built shard and concurrent
builders race harmlessly — the loser discards its identical copy.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Callable, Union

from repro.core.config import GraphRConfig
from repro.core.outofcore import _MANIFEST as MANIFEST_NAME
from repro.core.outofcore import prepare_on_disk
from repro.graph.graph import Graph
from repro.obs import metrics, tracing

__all__ = ["SHARD_LAYOUT_VERSION", "shard_key", "prepared_block_dir"]

#: Bump when the on-disk block layout changes; old shards are simply
#: never matched again (prune the cache dir to reclaim the space).
SHARD_LAYOUT_VERSION = 1


def shard_key(dataset: str, dataset_seed: int, weighted: bool,
              config: GraphRConfig) -> str:
    """Stable digest naming one prepared block directory.

    Covers everything :func:`prepare_on_disk` reads: the dataset analog
    identity plus the config fields that shape the block/subgraph
    ordering.  Cost-model knobs deliberately stay out — they change
    what a run *charges*, not what lands on disk.
    """
    payload = {
        "layout_version": SHARD_LAYOUT_VERSION,
        "dataset": dataset,
        "dataset_seed": dataset_seed,
        "weighted": bool(weighted),
        "block_size": config.block_size,
        "crossbar_size": config.crossbar_size,
        "crossbars_per_ge": config.logical_crossbars_per_ge,
        "num_ges": config.num_ges,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def prepared_block_dir(graph: Union[Graph, Callable[[], Graph]],
                       config: GraphRConfig,
                       cache_root: Union[str, Path], *,
                       dataset: str, dataset_seed: int,
                       weighted: bool) -> Path:
    """A complete block directory for ``(dataset, config)``.

    Returns the cached shard when one exists (a present manifest means
    the rename-after-build completed), otherwise shards the graph into
    a scratch directory and atomically publishes it.  ``graph`` may be
    a zero-argument callable returning the graph — it is invoked only
    on a cold build, so a warm shard never materializes the dataset at
    all (the pipeline's warm prepare is manifest-check plus attach).
    """
    root = Path(cache_root) / "shards"
    final = root / shard_key(dataset, dataset_seed, weighted, config)
    registry = metrics.get_registry()
    if (final / MANIFEST_NAME).exists():
        registry.counter(
            "repro_shard_reuses_total",
            "Out-of-core jobs served by an existing shard").inc()
        with tracing.span("shard-attach", reused=True,
                          shard=final.name[:12]):
            try:
                # Refresh the mtime so the cache's oldest-mtime-first
                # eviction sees reuse: without this a day-one shard hit
                # by every job would still be pruned before idle
                # newcomers.
                os.utime(final)
            except OSError:
                pass
        return final
    registry.counter(
        "repro_shard_builds_total",
        "Out-of-core shard directories built from scratch").inc()
    root.mkdir(parents=True, exist_ok=True)
    if callable(graph):
        graph = graph()
    scratch = final.with_name(f"{final.name}.tmp.{os.getpid()}")
    with tracing.span("shard-build", shard=final.name[:12]):
        if scratch.exists():
            shutil.rmtree(scratch)
        try:
            prepare_on_disk(graph, scratch, config)
        except BaseException:
            # A failed build must not orphan its scratch: the cache's
            # in-use grace period would shield the dead builder's
            # leftovers from eviction for an hour.
            shutil.rmtree(scratch, ignore_errors=True)
            raise
    try:
        scratch.replace(final)
    except OSError:
        # Lost the publication race: another process renamed its
        # (bit-identical) copy first.  Use theirs, drop ours.
        if not (final / MANIFEST_NAME).exists():
            raise
        shutil.rmtree(scratch, ignore_errors=True)
    return final
