"""Serialise run statistics and figure results to JSON.

Lets a benchmark run be archived and diffed across library versions —
the regression-tracking workflow an open-source release needs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.hw.stats import RunStats

__all__ = ["stats_to_dict", "stats_from_dict", "figure_to_dict",
           "save_figure_json", "load_figure_json"]


def stats_to_dict(stats: RunStats) -> Dict[str, object]:
    """JSON-safe dictionary of one run's statistics
    (:meth:`RunStats.to_dict`)."""
    return stats.to_dict()


def stats_from_dict(payload: Dict[str, object]) -> RunStats:
    """Rebuild a :class:`RunStats` from :func:`stats_to_dict` output.

    The reconstruction is exact (JSON round-trips Python floats
    losslessly), which is what lets the result cache and the process
    pool hand back stats bit-identical to an in-process run.
    """
    return RunStats.from_dict(payload)


def figure_to_dict(figure: FigureResult) -> Dict[str, object]:
    """JSON-safe dictionary of one regenerated figure."""
    return {
        "figure": figure.figure,
        "title": figure.title,
        "geomean_speedup": figure.geomean_speedup,
        "geomean_energy": figure.geomean_energy,
        "rows": [
            {
                "algorithm": row.algorithm,
                "dataset": row.dataset,
                "speedup": row.speedup,
                "energy_saving": row.energy_saving,
                "graphr": stats_to_dict(row.graphr),
                "baseline": stats_to_dict(row.baseline),
            }
            for row in figure.rows
        ],
    }


def save_figure_json(figure: FigureResult,
                     path: Union[str, Path]) -> None:
    """Write one figure's data to a JSON file."""
    Path(path).write_text(json.dumps(figure_to_dict(figure), indent=2))


def load_figure_json(path: Union[str, Path]) -> Dict[str, object]:
    """Read an archived figure back (as plain dictionaries).

    Round-tripping to live objects is intentionally not supported:
    archives are for comparison, not resumption.
    """
    payload = json.loads(Path(path).read_text())
    for key in ("figure", "title", "rows"):
        if key not in payload:
            raise ConfigError(f"{path}: missing {key!r}; not a figure "
                              "archive")
    return payload
