"""Recorded performance trajectory: ``repro bench``.

Runs a pinned workload grid through the batch runtime, folds each
job's span tree (:mod:`repro.obs.tracing`, persisted in
``RunStats.extra["trace"]``) into five wall-clock phases —

``queue``
    time the payload sat before execution began (``queue-wait``),
``prepare``
    building the immutable dataset artifact: generation and, out of
    core, shard construction (``prepare`` / ``shard-build``),
``attach``
    mapping an already-built artifact into the worker: shared-memory
    or process-cache attach, shard reuse and metadata scans
    (``attach`` / ``shard-attach`` / ``scan-metadata``),
``compute``
    reference solves and per-iteration sweeps (``reference`` /
    ``sweep``),
``merge``
    per-iteration charge/merge accounting (``merge``)

— and writes the result as ``BENCH_<rev>.json`` at the repo root.
Committing one such file per milestone turns the repo history into a
perf trajectory; :func:`compare` is the CI gate that fails a build
whose phase times regressed beyond the threshold against a committed
baseline.

The prepare/attach split is the point of the residency pipeline: a
warm resubmission should show prepare collapsed to (near) zero with
only a cheap attach left.  :func:`compare` skips phases absent from
the baseline document, so pre-split baselines keep gating the phases
they know about.

Phase classification walks the tree top-down and does *not* recurse
into a node once it is classified: nested spans (a reference solve
inside an out-of-core sweep, say) bill to the outermost phase, so the
buckets never double-count a second of wall clock.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.errors import JobError
from repro.runtime import BatchRunner
from repro.runtime.job import Job

__all__ = ["BENCH_PHASES", "BENCH_WORKLOADS", "bench_filename",
           "compare", "current_revision", "load_bench", "phase_totals",
           "run_bench", "write_bench"]

#: The five wall-clock buckets every workload reports, in order.
BENCH_PHASES = ("queue", "prepare", "attach", "compute", "merge")

#: Span name → phase bucket.  Container spans (``job``, ``iteration``)
#: are deliberately absent: they group, their children bill.
_PHASE_OF_SPAN = {
    "queue-wait": "queue",
    "prepare": "prepare",
    "shard-build": "prepare",
    "attach": "attach",
    "shard-attach": "attach",
    "scan-metadata": "attach",
    "reference": "compute",
    "sweep": "compute",
    "merge": "merge",
}

#: The pinned grid: label → job entry.  Small enough to finish in
#: seconds, wide enough to exercise every deployment path the traces
#: instrument (in-memory, out-of-core block streaming, multi-node).
BENCH_WORKLOADS: Sequence[Dict[str, object]] = (
    {"label": "pagerank:WV", "algorithm": "pagerank", "dataset": "WV",
     "run_kwargs": {"max_iterations": 5}},
    {"label": "bfs:WV", "algorithm": "bfs", "dataset": "WV",
     "run_kwargs": {"source": 0}},
    {"label": "sssp:WV", "algorithm": "sssp", "dataset": "WV",
     "run_kwargs": {"source": 0}},
    {"label": "spmv:WV", "algorithm": "spmv", "dataset": "WV"},
    {"label": "spmv:WV:out-of-core", "algorithm": "spmv",
     "dataset": "WV", "deployment": "out-of-core", "block_size": 64},
    {"label": "pagerank:WV:multi-node", "algorithm": "pagerank",
     "dataset": "WV", "deployment": "multi-node", "num_nodes": 2,
     "run_kwargs": {"max_iterations": 3}},
)


def current_revision() -> str:
    """Short git revision of the working tree, or ``local``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True)
        rev = out.stdout.strip()
        return rev or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def bench_filename(rev: Optional[str] = None) -> str:
    """``BENCH_<rev>.json`` for the given (or current) revision."""
    return f"BENCH_{rev or current_revision()}.json"


# ----------------------------------------------------------------------
def phase_totals(trace: Optional[Mapping]) -> Dict[str, float]:
    """Fold one serialized span tree into the phase buckets.

    Classified spans stop the recursion (their children are billed to
    them); container spans recurse.  A missing or empty trace yields
    all-zero buckets rather than raising — a cache-served result from
    a pre-telemetry build simply benches as instant.
    """
    totals = {phase: 0.0 for phase in BENCH_PHASES}
    if not isinstance(trace, Mapping):
        return totals

    def visit(node: Mapping) -> None:
        phase = _PHASE_OF_SPAN.get(node.get("name"))
        if phase is not None:
            totals[phase] += float(node.get("duration_s") or 0.0)
            return
        for child in node.get("children", ()):
            if isinstance(child, Mapping):
                visit(child)

    visit(trace)
    return totals


def _job_from_entry(entry: Mapping, runner: BatchRunner) -> Job:
    config = None
    deployment = None
    kind = entry.get("deployment")
    if kind is not None:
        deployment = DeploymentSpec(
            kind=str(kind), num_nodes=int(entry.get("num_nodes", 4)))
    if entry.get("block_size") is not None:
        config = GraphRConfig(mode="analytic",
                              block_size=int(entry["block_size"]))
    return runner.make_job(
        str(entry["algorithm"]), str(entry["dataset"]),
        platform=str(entry.get("platform", "graphr")),
        config=config, deployment=deployment,
        **dict(entry.get("run_kwargs") or {}))


def run_bench(workers: int = 1,
              cache_dir: Optional[Union[str, Path]] = None,
              workloads: Optional[Sequence[Mapping]] = None,
              rev: Optional[str] = None) -> Dict[str, object]:
    """Execute the pinned grid and return the bench document.

    The document is what :func:`write_bench` serializes: the revision,
    the grid, and per-workload phase timings plus the simulated
    headline numbers (seconds/joules/iterations) for context.
    """
    workloads = list(workloads if workloads is not None
                     else BENCH_WORKLOADS)
    runner = BatchRunner(workers=workers, cache_dir=cache_dir)
    jobs = [_job_from_entry(entry, runner) for entry in workloads]
    results = runner.run_jobs(jobs)
    rows: List[Dict[str, object]] = []
    for entry, job, result in zip(workloads, jobs, results):
        if not result.ok:
            raise JobError(f"bench workload "
                           f"{entry.get('label', job.label())} "
                           f"failed: {result.error}")
        stats = result.stats
        phases = phase_totals(stats.extra.get("trace"))
        rows.append({
            "label": str(entry.get("label", job.label())),
            "key": job.content_key(),
            "from_cache": result.from_cache,
            "phases": phases,
            "wall_s": sum(phases.values()),
            "simulated": {
                "seconds": stats.seconds,
                "joules": stats.joules,
                "iterations": stats.iterations,
            },
        })
    return {
        "schema": 1,
        "rev": rev or current_revision(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workers": workers,
        "workloads": rows,
    }


def write_bench(document: Mapping,
                out_path: Union[str, Path]) -> Path:
    """Serialize one bench document (pretty JSON, trailing newline)."""
    out_path = Path(out_path)
    out_path.write_text(json.dumps(document, indent=2,
                                   sort_keys=True) + "\n")
    return out_path


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    """Read a bench document back, validating the envelope."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise JobError(f"cannot read bench file {path}: {exc}") from exc
    if not isinstance(document, dict) \
            or not isinstance(document.get("workloads"), list):
        raise JobError(f"{path} is not a bench document "
                       f"(no 'workloads' list)")
    return document


# ----------------------------------------------------------------------
def compare(current: Mapping, baseline: Mapping,
            threshold: float = 0.25,
            min_seconds: float = 0.05) -> List[Dict[str, object]]:
    """Phase-time regressions of ``current`` against ``baseline``.

    A regression is a phase whose baseline time is at least
    ``min_seconds`` (sub-noise phases cannot regress — a 2 ms prepare
    doubling is jitter, not a finding) and whose current time exceeds
    the baseline by more than ``threshold`` (fractional).  Workloads
    present in only one document are skipped: the gate judges shared
    ground, renaming the grid is not a perf failure.
    """
    if threshold < 0:
        raise JobError("threshold must be >= 0")
    baseline_rows = {row["label"]: row
                     for row in baseline.get("workloads", [])
                     if isinstance(row, Mapping) and "label" in row}
    regressions: List[Dict[str, object]] = []
    for row in current.get("workloads", []):
        base = baseline_rows.get(row.get("label"))
        if base is None:
            continue
        base_phases = base.get("phases", {})
        for phase, seconds in row.get("phases", {}).items():
            ref = base_phases.get(phase)
            if ref is None or ref < min_seconds:
                continue
            if seconds > ref * (1.0 + threshold):
                regressions.append({
                    "label": row["label"],
                    "phase": phase,
                    "baseline_s": ref,
                    "current_s": seconds,
                    "ratio": seconds / ref if ref else float("inf"),
                })
    return regressions
