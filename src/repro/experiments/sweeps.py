"""Structured parameter-sweep utilities for design-space studies.

Each sweep runs one workload across a parameter axis on the analytic
accelerator and returns tidy rows; the design-space example and the
ablation benchmarks build on these instead of hand-rolling loops.

Sweeps accept either an in-memory :class:`~repro.graph.graph.Graph`
(executed in-process, as before) or a Table 3 dataset *code* — the
latter dispatches every configuration as a job through the batch
runtime, so a ``runner`` with ``workers > 1`` sweeps the axis across a
process pool and a ``cache_dir`` persists the points.

``runner`` may be any object with the :class:`BatchRunner` submission
surface (``make_job`` / ``run_jobs``) — in particular a
:class:`~repro.service.client.ServiceClient`, which executes the sweep
on a running ``repro serve`` daemon: points dedupe against every other
client's submissions and land in the service's shared result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.algorithms.registry import list_algorithms
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.partitioned import DeploymentSpec
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.hw.stats import RunStats
from repro.runtime.runner import BatchRunner

__all__ = ["SweepPoint", "geometry_sweep", "block_size_sweep",
           "bandwidth_sweep", "deployment_sweep", "run_sweep",
           "workload_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome in a sweep."""

    parameters: Dict[str, object]
    seconds: float
    joules: float
    iterations: int

    @classmethod
    def from_stats(cls, parameters: Dict[str, object],
                   stats: RunStats) -> "SweepPoint":
        """Condense a run's stats into a sweep row."""
        return cls(parameters=dict(parameters), seconds=stats.seconds,
                   joules=stats.joules, iterations=stats.iterations)


def run_sweep(graph: Union[Graph, str], algorithm: str,
              axis: List[Dict[str, object]],
              run_kwargs: Dict[str, object],
              runner: Optional[BatchRunner] = None) -> List[SweepPoint]:
    """Run one workload under every parameter override in ``axis``.

    ``graph`` may be a live :class:`Graph` (in-process execution) or a
    dataset code (batched through ``runner`` — a :class:`BatchRunner`
    or a service :class:`~repro.service.client.ServiceClient` — in
    parallel when the backend has workers).  The config-axis helpers
    funnel through here; :func:`deployment_sweep` and
    :func:`workload_sweep` build their heterogeneous job lists
    directly on the same runner surface.
    """
    if not axis:
        raise ConfigError("empty sweep")
    if isinstance(graph, str):
        runner = runner or BatchRunner()
        jobs = [runner.make_job(
                    algorithm, graph,
                    config=GraphRConfig(mode="analytic", **overrides),
                    **run_kwargs)
                for overrides in axis]
        return [SweepPoint.from_stats(overrides, result.unwrap())
                for overrides, result in zip(axis, runner.run_jobs(jobs))]
    points = []
    for overrides in axis:
        config = GraphRConfig(mode="analytic", **overrides)
        _, stats = GraphR(config).run(algorithm, graph, **run_kwargs)
        points.append(SweepPoint.from_stats(overrides, stats))
    return points


def geometry_sweep(graph: Union[Graph, str], algorithm: str = "pagerank",
                   crossbar_sizes: Iterable[int] = (4, 8, 16),
                   ge_counts: Iterable[int] = (16, 64, 256),
                   run_kwargs: Optional[Dict[str, object]] = None,
                   runner: Optional[BatchRunner] = None
                   ) -> List[SweepPoint]:
    """Sweep crossbar size x GE count (the paper's S and G)."""
    axis = [{"crossbar_size": s, "num_ges": g}
            for s in crossbar_sizes for g in ge_counts]
    return run_sweep(graph, algorithm, axis,
                     run_kwargs or {"max_iterations": 10}, runner)


def block_size_sweep(graph: Union[Graph, str],
                     algorithm: str = "pagerank",
                     block_sizes: Iterable[int] = (1024, 4096, 16384),
                     run_kwargs: Optional[Dict[str, object]] = None,
                     runner: Optional[BatchRunner] = None
                     ) -> List[SweepPoint]:
    """Sweep the out-of-core block size ``B``.

    Smaller blocks mean more blocks per pass (more per-block padding
    and boundary tiles) but a smaller memory-ReRAM footprint — the
    trade Figure 9's ``B`` parameter controls.
    """
    axis = [{"block_size": int(block)} for block in block_sizes]
    return run_sweep(graph, algorithm, axis,
                     run_kwargs or {"max_iterations": 10}, runner)


def deployment_sweep(dataset: str,
                     algorithm: str = "pagerank",
                     block_sizes: Iterable[int] = (1024, 4096),
                     node_counts: Iterable[int] = (1, 2, 4),
                     run_kwargs: Optional[Dict[str, object]] = None,
                     runner: Optional[BatchRunner] = None
                     ) -> List[SweepPoint]:
    """Sweep one workload across deployment scenarios.

    The grid is block sizes under the out-of-core single node plus
    node counts under the multi-node cluster (with an in-memory
    single-node anchor point first), all dispatched through the batch
    runtime — deployments participate in the job content keys, so a
    cached sweep re-prices only new points.  ``dataset`` must be a
    Table 3 code (deployments run where the workers are).
    """
    if not isinstance(dataset, str):
        raise ConfigError("deployment_sweep needs a dataset code")
    runner = runner or BatchRunner()
    run_kwargs = run_kwargs or {"max_iterations": 10}
    jobs = []
    parameters: List[Dict[str, object]] = []
    jobs.append(runner.make_job(algorithm, dataset,
                                config=GraphRConfig(mode="analytic"),
                                **run_kwargs))
    parameters.append({"deployment": "single"})
    for block in block_sizes:
        jobs.append(runner.make_job(
            algorithm, dataset,
            config=GraphRConfig(mode="analytic", block_size=int(block)),
            deployment=DeploymentSpec(kind="out-of-core"),
            **run_kwargs))
        parameters.append({"deployment": "out-of-core",
                           "block_size": int(block)})
    for nodes in node_counts:
        jobs.append(runner.make_job(
            algorithm, dataset,
            config=GraphRConfig(mode="analytic"),
            deployment=DeploymentSpec(kind="multi-node",
                                      num_nodes=int(nodes)),
            **run_kwargs))
        parameters.append({"deployment": "multi-node",
                           "num_nodes": int(nodes)})
    return [SweepPoint.from_stats(params, result.unwrap())
            for params, result in zip(parameters,
                                      runner.run_jobs(jobs))]


def workload_sweep(dataset: str,
                   algorithms: Optional[Iterable[str]] = None,
                   run_kwargs: Optional[Dict[str, Dict[str, object]]]
                   = None,
                   runner: Optional[BatchRunner] = None
                   ) -> List[SweepPoint]:
    """Sweep the *algorithm* axis on one dataset.

    Runs every registered algorithm (or an explicit subset) on the
    analytic accelerator through the batch runtime, with each
    algorithm's shipped default parameters
    (:data:`~repro.experiments.harness.DEFAULT_RUN_KWARGS`) unless
    ``run_kwargs`` overrides them per algorithm.  One call prices a
    whole workload portfolio — including registry additions, which
    appear here automatically.
    """
    from repro.experiments.harness import DEFAULT_RUN_KWARGS

    if not isinstance(dataset, str):
        raise ConfigError("workload_sweep needs a dataset code")
    chosen = tuple(algorithms) if algorithms is not None \
        else list_algorithms()
    if not chosen:
        raise ConfigError("empty sweep")
    runner = runner or BatchRunner()
    overrides = run_kwargs or {}
    jobs = []
    parameters: List[Dict[str, object]] = []
    for algorithm in chosen:
        kwargs = dict(overrides.get(algorithm,
                                    DEFAULT_RUN_KWARGS.get(algorithm,
                                                           {})))
        jobs.append(runner.make_job(
            algorithm, dataset,
            config=GraphRConfig(mode="analytic"), **kwargs))
        parameters.append({"algorithm": algorithm, **kwargs})
    return [SweepPoint.from_stats(params, result.unwrap())
            for params, result in zip(parameters,
                                      runner.run_jobs(jobs))]


def bandwidth_sweep(graph: Union[Graph, str],
                    algorithm: str = "pagerank",
                    bandwidths_bps: Iterable[float] = (32e9, 128e9,
                                                       512e9),
                    run_kwargs: Optional[Dict[str, object]] = None,
                    runner: Optional[BatchRunner] = None
                    ) -> List[SweepPoint]:
    """Sweep the memory-ReRAM sequential bandwidth feeding the GEs.

    Shows where the node flips from fetch-bound to compute-bound — the
    pipeline balance the cost model's ``max(fetch, program+compute)``
    captures.
    """
    axis = [{"mem_bandwidth_bps": float(bandwidth)}
            for bandwidth in bandwidths_bps]
    return run_sweep(graph, algorithm, axis,
                     run_kwargs or {"max_iterations": 10}, runner)
