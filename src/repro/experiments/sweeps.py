"""Structured parameter-sweep utilities for design-space studies.

Each sweep runs one workload across a parameter axis on the analytic
accelerator and returns tidy rows; the design-space example and the
ablation benchmarks build on these instead of hand-rolling loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.hw.stats import RunStats

__all__ = ["SweepPoint", "geometry_sweep", "block_size_sweep",
           "bandwidth_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome in a sweep."""

    parameters: Dict[str, object]
    seconds: float
    joules: float
    iterations: int

    @classmethod
    def from_stats(cls, parameters: Dict[str, object],
                   stats: RunStats) -> "SweepPoint":
        """Condense a run's stats into a sweep row."""
        return cls(parameters=dict(parameters), seconds=stats.seconds,
                   joules=stats.joules, iterations=stats.iterations)


def _run(graph: Graph, algorithm: str, overrides: Dict[str, object],
         run_kwargs: Dict[str, object]) -> RunStats:
    config = GraphRConfig(mode="analytic", **overrides)
    _, stats = GraphR(config).run(algorithm, graph, **run_kwargs)
    return stats


def geometry_sweep(graph: Graph, algorithm: str = "pagerank",
                   crossbar_sizes: Iterable[int] = (4, 8, 16),
                   ge_counts: Iterable[int] = (16, 64, 256),
                   run_kwargs: Optional[Dict[str, object]] = None
                   ) -> List[SweepPoint]:
    """Sweep crossbar size x GE count (the paper's S and G)."""
    run_kwargs = run_kwargs or {"max_iterations": 10}
    points: List[SweepPoint] = []
    for s in crossbar_sizes:
        for g in ge_counts:
            params = {"crossbar_size": s, "num_ges": g}
            stats = _run(graph, algorithm, params, run_kwargs)
            points.append(SweepPoint.from_stats(params, stats))
    if not points:
        raise ConfigError("empty sweep")
    return points


def block_size_sweep(graph: Graph, algorithm: str = "pagerank",
                     block_sizes: Iterable[int] = (1024, 4096, 16384),
                     run_kwargs: Optional[Dict[str, object]] = None
                     ) -> List[SweepPoint]:
    """Sweep the out-of-core block size ``B``.

    Smaller blocks mean more blocks per pass (more per-block padding
    and boundary tiles) but a smaller memory-ReRAM footprint — the
    trade Figure 9's ``B`` parameter controls.
    """
    run_kwargs = run_kwargs or {"max_iterations": 10}
    points: List[SweepPoint] = []
    for block in block_sizes:
        params = {"block_size": int(block)}
        stats = _run(graph, algorithm, params, run_kwargs)
        points.append(SweepPoint.from_stats(params, stats))
    if not points:
        raise ConfigError("empty sweep")
    return points


def bandwidth_sweep(graph: Graph, algorithm: str = "pagerank",
                    bandwidths_bps: Iterable[float] = (32e9, 128e9,
                                                       512e9),
                    run_kwargs: Optional[Dict[str, object]] = None
                    ) -> List[SweepPoint]:
    """Sweep the memory-ReRAM sequential bandwidth feeding the GEs.

    Shows where the node flips from fetch-bound to compute-bound — the
    pipeline balance the cost model's ``max(fetch, program+compute)``
    captures.
    """
    run_kwargs = run_kwargs or {"max_iterations": 10}
    points: List[SweepPoint] = []
    for bandwidth in bandwidths_bps:
        params = {"mem_bandwidth_bps": float(bandwidth)}
        stats = _run(graph, algorithm, params, run_kwargs)
        points.append(SweepPoint.from_stats(params, stats))
    if not points:
        raise ConfigError("empty sweep")
    return points
