"""Experiment harness regenerating the paper's evaluation.

One function per table/figure; each returns structured rows/series and
can render the same text the benchmarks print.  See DESIGN.md Section 4
for the experiment index and expected shapes.
"""

from repro.experiments.harness import (
    ComparisonRow,
    ExperimentRunner,
    geometric_mean,
)
from repro.experiments.figures import (
    figure17,
    figure18,
    figure19,
    figure20,
    figure21,
)
from repro.experiments.tables import table1, table2, table3
from repro.experiments.report import render_table
from repro.experiments.sweeps import (
    SweepPoint,
    bandwidth_sweep,
    block_size_sweep,
    deployment_sweep,
    geometry_sweep,
    run_sweep,
)
from repro.experiments.validation import (
    ValidationReport,
    validate,
    validate_matrix,
)
from repro.experiments.persistence import (
    figure_to_dict,
    load_figure_json,
    save_figure_json,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    "figure_to_dict",
    "load_figure_json",
    "save_figure_json",
    "stats_from_dict",
    "stats_to_dict",
    "run_sweep",
    "SweepPoint",
    "bandwidth_sweep",
    "block_size_sweep",
    "deployment_sweep",
    "geometry_sweep",
    "ValidationReport",
    "validate",
    "validate_matrix",
    "ComparisonRow",
    "ExperimentRunner",
    "geometric_mean",
    "figure17",
    "figure18",
    "figure19",
    "figure20",
    "figure21",
    "table1",
    "table2",
    "table3",
    "render_table",
]
