"""Cross-mode validation: functional device simulation vs analytic
event model vs exact reference.

The reproduction's central soundness argument is that its three views
of one computation agree:

1. the **reference** implementation (plain numpy) defines correctness;
2. the **functional** accelerator computes through simulated devices
   and must match (exactly for min-programs, within fixed-point
   tolerance for MAC programs);
3. the **analytic** accelerator charges the same events the functional
   one counts, so their simulated costs must agree for identical
   iteration counts.

:func:`validate` packages this three-way check for any (algorithm,
graph) pair and returns a structured report; a test asserts it on a
matrix of workloads, and users can run it on their own graphs before
trusting large analytic sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.algorithms.registry import run_reference
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.graph.graph import Graph

__all__ = ["ValidationReport", "validate"]

#: Absolute tolerance for MAC-pattern (quantised) value comparisons.
MAC_ATOL = 5e-2


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one three-way validation."""

    algorithm: str
    dataset: str
    values_match: bool
    max_value_error: float
    functional_iterations: int
    reference_iterations: int
    functional_seconds: float
    analytic_seconds: float
    cost_ratio: float

    @property
    def passed(self) -> bool:
        """Whether all three views agree within tolerance."""
        return self.values_match and 0.8 <= self.cost_ratio <= 1.25

    def describe(self) -> str:
        """One-paragraph text report."""
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.algorithm} on {self.dataset}: "
            f"max value error {self.max_value_error:.3g}, "
            f"functional {self.functional_seconds:.3e}s vs analytic "
            f"{self.analytic_seconds:.3e}s (ratio {self.cost_ratio:.3f}), "
            f"iterations {self.functional_iterations}/"
            f"{self.reference_iterations}"
        )


def validate(algorithm: str, graph: Graph,
             config: Optional[GraphRConfig] = None,
             **kwargs) -> ValidationReport:
    """Run the three-way check for one workload.

    ``kwargs`` go to the algorithm (``source=...`` etc.).  Collaborative
    filtering has no functional path and is rejected.
    """
    if algorithm == "cf":
        raise ConfigError("cf has no functional mode; nothing to validate")
    config = config or GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                                    num_ges=2, max_iterations=100)
    accel = GraphR(config)

    functional, f_stats = accel.run(algorithm, graph, mode="functional",
                                    **kwargs)
    analytic, a_stats = accel.run(algorithm, graph, mode="analytic",
                                  **kwargs)
    reference = run_reference(algorithm, graph, **kwargs)

    error = float(np.max(np.abs(functional.values - reference.values),
                         initial=0.0))
    # min/max relaxations and unit-coefficient peeling are exact on the
    # device chain; only genuinely accumulating MAC programs quantise.
    exact_required = algorithm in ("bfs", "sssp", "wcc", "sswp", "kcore")
    values_match = error == 0.0 if exact_required else error <= MAC_ATOL

    # Compare costs only when both modes executed the same number of
    # iterations (quantisation can change MAC convergence points).
    if f_stats.iterations == a_stats.iterations and a_stats.seconds > 0:
        cost_ratio = f_stats.seconds / a_stats.seconds
    else:
        per_f = f_stats.seconds / max(1, f_stats.iterations)
        per_a = a_stats.seconds / max(1, a_stats.iterations)
        cost_ratio = per_f / per_a if per_a > 0 else float("inf")

    return ValidationReport(
        algorithm=algorithm,
        dataset=graph.name,
        values_match=values_match,
        max_value_error=error,
        functional_iterations=f_stats.iterations,
        reference_iterations=reference.iterations,
        functional_seconds=f_stats.seconds,
        analytic_seconds=a_stats.seconds,
        cost_ratio=cost_ratio,
    )


def validate_matrix(graph: Graph,
                    config: Optional[GraphRConfig] = None
                    ) -> Dict[str, ValidationReport]:
    """Validate every functional-capable algorithm on one graph.

    k-core is excluded from the matrix: its functional path sweeps
    every edge each pass (the MAC mapper has no active-list skip)
    while the analytic path charges the firing frontier, so the two
    cost views legitimately diverge; its value equality is asserted by
    the algorithm's own test suite instead.
    """
    reports = {}
    for algorithm in ("pagerank", "bfs", "sssp", "spmv", "wcc",
                      "sswp", "ppr"):
        kwargs = {"source": 0} if algorithm in ("bfs", "sssp", "sswp",
                                                "ppr") else {}
        work = graph.symmetrized() if algorithm == "wcc" else graph
        if algorithm == "wcc":
            kwargs["symmetrize"] = False
        reports[algorithm] = validate(algorithm, work, config, **kwargs)
    return reports
