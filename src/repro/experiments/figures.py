"""Builders for Figures 17-21 of the paper.

Each function returns a :class:`FigureResult` carrying the same
rows/series the paper plots, plus the geometric means quoted in the
text.  ``describe()`` renders the figure as text; the matching
benchmark in ``benchmarks/`` prints it and asserts the expected shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (
    ComparisonRow,
    ExperimentRunner,
    geometric_mean,
)
from repro.experiments.report import render_table
from repro.graph.datasets import PAPER_DATASETS

__all__ = ["FigureResult", "figure17", "figure18", "figure19",
           "figure20", "figure21", "FIG17_ALGORITHMS", "FIG17_DATASETS"]

#: The 24 graph runs of Figures 17/18, plus CF on NF as the 25th.
FIG17_ALGORITHMS = ("pagerank", "bfs", "sssp", "spmv")
FIG17_DATASETS = ("WV", "SD", "AZ", "WG", "LJ", "OK")


@dataclass
class FigureResult:
    """Structured output of one figure builder."""

    figure: str
    title: str
    rows: List[ComparisonRow]
    geomean_speedup: Optional[float] = None
    geomean_energy: Optional[float] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def describe(self, metric: str = "both") -> str:
        """Text rendering of the figure's series."""
        header = ["algorithm", "dataset", "speedup", "energy_saving"]
        body = [[r.algorithm, r.dataset, f"{r.speedup:.2f}",
                 f"{r.energy_saving:.2f}"] for r in self.rows]
        lines = [f"{self.figure}: {self.title}",
                 render_table(header, body)]
        if self.geomean_speedup is not None:
            lines.append(f"geomean speedup      = "
                         f"{self.geomean_speedup:.2f}x")
        if self.geomean_energy is not None:
            lines.append(f"geomean energy saving = "
                         f"{self.geomean_energy:.2f}x")
        return "\n".join(lines)

    def cell(self, algorithm: str, dataset: str) -> ComparisonRow:
        """Look up one (algorithm, dataset) row."""
        for row in self.rows:
            if row.algorithm == algorithm and row.dataset == dataset:
                return row
        raise KeyError(f"no cell ({algorithm}, {dataset})")


def _figure17_rows(runner: ExperimentRunner) -> List[ComparisonRow]:
    cells = [(algorithm, code) for algorithm in FIG17_ALGORITHMS
             for code in FIG17_DATASETS]
    cells.append(("cf", "NF"))
    return runner.compare_cells("cpu", cells)


def figure17(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 17: GraphR speedup over the CPU platform (25 runs).

    Paper: geometric mean 16.01x, max 132.67x (SpMV on WV), min 2.40x
    (SSSP on OK); MAC-pattern algorithms above add-op ones.
    """
    runner = runner or ExperimentRunner()
    rows = _figure17_rows(runner)
    return FigureResult(
        figure="Figure 17",
        title="GraphR speedup over CPU (GridGraph/GraphChi)",
        rows=rows,
        geomean_speedup=geometric_mean(r.speedup for r in rows),
        geomean_energy=geometric_mean(r.energy_saving for r in rows),
    )


def figure18(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 18: GraphR energy saving over the CPU platform.

    Paper: geometric mean 33.82x, max 217.88x (SpMV on SD), min 4.50x
    (SSSP on OK).  Same 25 runs as Figure 17.
    """
    runner = runner or ExperimentRunner()
    rows = _figure17_rows(runner)
    return FigureResult(
        figure="Figure 18",
        title="GraphR energy saving over CPU",
        rows=rows,
        geomean_speedup=geometric_mean(r.speedup for r in rows),
        geomean_energy=geometric_mean(r.energy_saving for r in rows),
    )


def figure19(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 19: GraphR vs GPU (PR and SSSP on LJ, CF on NF).

    Paper: 1.69-2.19x speedup, 4.77-8.91x energy saving; the SSSP
    speedup is the lowest of the three perf gains.
    """
    runner = runner or ExperimentRunner()
    rows = runner.compare_cells("gpu", [("pagerank", "LJ"),
                                        ("sssp", "LJ"), ("cf", "NF")])
    return FigureResult(
        figure="Figure 19",
        title="GraphR vs GPU (Gunrock / cuMF_SGD on Tesla K40c)",
        rows=rows,
    )


def figure20(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 20: GraphR vs PIM/Tesseract (PR, SSSP on WV, AZ, LJ).

    Paper: 1.16-4.12x speedup, 3.67-10.96x energy saving.
    """
    runner = runner or ExperimentRunner()
    rows = runner.compare_matrix("pim", ("pagerank", "sssp"),
                                 ("WV", "AZ", "LJ"))
    return FigureResult(
        figure="Figure 20",
        title="GraphR vs PIM (Tesseract-like HMC)",
        rows=rows,
    )


def figure21(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 21: sensitivity to sparsity (PR and SSSP, WV..LJ).

    The x-axis is dataset density ``|E| / |V|^2`` (of the original
    datasets); performance and energy saving relative to CPU decrease
    mildly as density decreases (sparsity increases).
    """
    runner = runner or ExperimentRunner()
    codes = ("WV", "SD", "AZ", "WG", "LJ")
    rows = runner.compare_matrix("cpu", ("pagerank", "sssp"), codes)
    densities: Dict[str, float] = {}
    for code in codes:
        spec = PAPER_DATASETS[code]
        densities[code] = spec.paper_edges / spec.paper_vertices ** 2
    return FigureResult(
        figure="Figure 21",
        title="GraphR vs CPU as a function of dataset density",
        rows=rows,
        extra={"density": densities},
    )
