"""Plain-text table rendering for figure/table reports."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigError

__all__ = ["render_table"]


def render_table(header: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """ASCII table with per-column width fitting.

    >>> print(render_table(["a", "b"], [["1", "22"]]))
    a | b
    --+---
    1 | 22
    """
    if not header:
        raise ConfigError("header must be non-empty")
    for row in rows:
        if len(row) != len(header):
            raise ConfigError(
                f"row width {len(row)} != header width {len(header)}"
            )
    columns = [list(col) for col in zip(header, *rows)] if rows \
        else [[h] for h in header]
    widths = [max(len(cell) for cell in col) for col in columns]

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = [fmt(header)]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
