"""Single source of truth for the paper's published numbers and the
tolerance bands the benchmarks assert.

Keeping every number here (rather than scattered through bench files)
makes the reproduction contract auditable: each constant cites where in
the paper it comes from, and each band states why it is as wide as it
is (see EXPERIMENTS.md for the per-figure discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperNumbers", "Band", "PAPER", "BANDS"]


@dataclass(frozen=True)
class Band:
    """An inclusive [low, high] assertion band."""

    low: float
    high: float

    def contains(self, value: float) -> bool:
        """Whether a measured value falls inside the band."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class PaperNumbers:
    """Every quantitative claim of Section 5 used by the benchmarks."""

    # Figure 17 / abstract.
    speedup_geomean_vs_cpu: float = 16.01
    speedup_max_vs_cpu: float = 132.67        # SpMV on WV
    speedup_min_vs_cpu: float = 2.40          # SSSP on OK
    # Figure 18 / abstract.
    energy_geomean_vs_cpu: float = 33.82
    energy_max_vs_cpu: float = 217.88         # SpMV on SD
    energy_min_vs_cpu: float = 4.50           # SSSP on OK
    # Figure 19.
    speedup_vs_gpu_low: float = 1.69
    speedup_vs_gpu_high: float = 2.19
    energy_vs_gpu_low: float = 4.77
    energy_vs_gpu_high: float = 8.91
    # Figure 20.
    speedup_vs_pim_low: float = 1.16
    speedup_vs_pim_high: float = 4.12
    energy_vs_pim_low: float = 3.67
    energy_vs_pim_high: float = 10.96


#: The paper's numbers, importable anywhere.
PAPER = PaperNumbers()

#: Assertion bands used by the shipped benchmarks.  Bands are wider
#: than the paper's point values because the reproduction runs on
#: scaled synthetic analogs and calibrated analytical baselines
#: (EXPERIMENTS.md, "Reading guide").
BANDS = {
    # geometric means over the 25 CPU-comparison runs
    "speedup_geomean_vs_cpu": Band(6.0, 40.0),
    "energy_geomean_vs_cpu": Band(12.0, 90.0),
    # per-run extremes
    "speedup_vs_gpu": Band(1.2, 3.5),
    "speedup_vs_pim": Band(1.0, 6.5),
    "energy_vs_pim": Band(2.5, 16.0),
}
