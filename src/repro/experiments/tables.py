"""Builders for Tables 1-3 of the paper.

Table 1 is qualitative (architecture comparison); Table 2 maps
applications to vertex-program operations; Table 3 inventories the
datasets.  Each builder returns structured rows and a text rendering,
and the matching benchmark asserts consistency with the implementation
(e.g. Table 2 rows must agree with the registered programs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algorithms.registry import TABLE2_ROWS, Table2Row, get_program
from repro.algorithms.vertex_program import MappingPattern
from repro.experiments.report import render_table
from repro.graph.datasets import PAPER_DATASETS, dataset

__all__ = ["table1", "table2", "table3", "Table1Row"]


@dataclass(frozen=True)
class Table1Row:
    """One architecture column of Table 1 (transposed to rows here)."""

    architecture: str
    process_edge: str
    reduce: str
    processing_model: str
    memory_access: str
    generality: str


_TABLE1: Tuple[Table1Row, ...] = (
    Table1Row("CPU", "Instruction", "Instruction", "Sync/Async",
              "Random vertex, sequential edge list",
              "All algorithms"),
    Table1Row("GPU", "Instruction", "Instruction", "Sync",
              "Random vertex, sequential edge list",
              "Vertex program"),
    Table1Row("Tesseract", "Instruction",
              "Instruction and inter-cube communication", "Sync",
              "Random vertex, sequential edge list",
              "Vertex program"),
    Table1Row("GAA", "Specialized AU", "Specialized APU/SCU", "Async",
              "Random vertex, sequential edge list",
              "Vertex program"),
    Table1Row("Graphicionado", "Specialized unit", "Specialized unit",
              "Sync", "Reduced random with SPM; pipelined",
              "Vertex program"),
    Table1Row("GraphR", "ReRAM crossbar", "ReRAM crossbar or sALU",
              "Sync", "Sequential edge list (preprocessed)",
              "Vertex program in SpMV"),
)


def table1() -> Tuple[List[Table1Row], str]:
    """Table 1: comparison of graph-processing architectures."""
    rows = list(_TABLE1)
    text = render_table(
        ["architecture", "processEdge", "reduce", "model",
         "memory access", "generality"],
        [[r.architecture, r.process_edge, r.reduce, r.processing_model,
          r.memory_access, r.generality] for r in rows],
    )
    return rows, "Table 1: architectures for graph processing\n" + text


def table2() -> Tuple[List[Table2Row], str]:
    """Table 2: applications and their vertex-program operations.

    The rows are cross-checked against the registered programs: the
    reduce operation and active-list requirement printed here are read
    back from the implementations.
    """
    rows = list(TABLE2_ROWS)
    body = []
    for row in rows:
        program = get_program(row.application)
        pattern = ("parallel MAC"
                   if program.pattern is MappingPattern.PARALLEL_MAC
                   else "parallel add-op")
        body.append([row.application, row.process_edge, row.reduce,
                     program.reduce_op, pattern,
                     "yes" if program.needs_active_list else "no"])
    text = render_table(
        ["application", "processEdge()", "reduce()", "sALU op",
         "pattern", "active list"],
        body,
    )
    return rows, "Table 2: applications in GraphR\n" + text


def table3(generate: bool = False) -> Tuple[Dict[str, dict], str]:
    """Table 3: datasets — paper statistics and the generated analogs.

    With ``generate=True`` the analogs are built and their actual
    vertex/edge counts reported next to the paper's.
    """
    rows: Dict[str, dict] = {}
    body = []
    for code, spec in PAPER_DATASETS.items():
        entry = {
            "name": spec.full_name,
            "paper_vertices": spec.paper_vertices,
            "paper_edges": spec.paper_edges,
        }
        if generate:
            graph = dataset(code)
            entry["generated_vertices"] = graph.num_vertices
            entry["generated_edges"] = graph.num_edges
            entry["scale_factor"] = graph.scale_factor
        rows[code] = entry
        body.append([
            code, spec.full_name, f"{spec.paper_vertices:,}",
            f"{spec.paper_edges:,}",
            f"{entry.get('generated_vertices', '-'):,}"
            if generate else "-",
            f"{entry.get('generated_edges', '-'):,}" if generate else "-",
        ])
    text = render_table(
        ["code", "dataset", "paper |V|", "paper |E|",
         "generated |V|", "generated |E|"],
        body,
    )
    return rows, "Table 3: graph datasets\n" + text
