"""Run matrices of (platform x algorithm x dataset) comparisons.

The harness submits every simulation through the batch runtime
(:class:`~repro.runtime.runner.BatchRunner`), so figure builders get
process-pool parallelism and the persistent result cache for free; an
in-process memo on top keeps repeated lookups within one
:class:`ExperimentRunner` returning the same objects (Figures 17 and
18 share their 25 runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.algorithms.registry import weighted_algorithms
from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.graph.datasets import dataset
from repro.graph.graph import Graph
from repro.hw.stats import RunStats
from repro.runtime.job import PLATFORMS
from repro.runtime.runner import BatchRunner

__all__ = ["ComparisonRow", "ExperimentRunner", "geometric_mean",
           "DEFAULT_RUN_KWARGS"]

#: Per-algorithm run parameters used by every shipped benchmark.  The
#: PageRank iteration budget is capped so a full figure regenerates in
#: minutes; shapes are iteration-count invariant because both platforms
#: scale with the same trace.
DEFAULT_RUN_KWARGS: Dict[str, dict] = {
    "pagerank": {"max_iterations": 20},
    "bfs": {"source": 0},
    "sssp": {"source": 0},
    "spmv": {},
    "cf": {"epochs": 3},
    "wcc": {},
    "kcore": {"k": 2},
    "sswp": {"source": 0},
    "ppr": {"source": 0, "max_iterations": 20},
}

def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    if min(values) <= 0:
        raise ConfigError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ComparisonRow:
    """One cell of a figure: GraphR vs one baseline on one workload."""

    algorithm: str
    dataset: str
    speedup: float
    energy_saving: float
    graphr: RunStats
    baseline: RunStats

    def as_tuple(self) -> Tuple[str, str, float, float]:
        """Compact ``(algorithm, dataset, speedup, energy_saving)``."""
        return (self.algorithm, self.dataset, self.speedup,
                self.energy_saving)


class ExperimentRunner:
    """Executes and caches simulated runs for the figure builders.

    Parameters
    ----------
    config:
        GraphR configuration of the accelerator runs (analytic mode by
        default, like the shipped benchmarks).
    run_kwargs:
        Per-algorithm overrides merged over
        :data:`DEFAULT_RUN_KWARGS`.
    batch_runner:
        Pre-built :class:`BatchRunner` to submit through; mutually
        redundant with ``workers`` / ``cache_dir``, which construct
        one.
    workers:
        Process-pool size for batched submissions (1 = in-process).
    cache_dir:
        Persistent result-cache directory (``None`` disables it).
    """

    def __init__(self, config: Optional[GraphRConfig] = None,
                 run_kwargs: Optional[Dict[str, dict]] = None,
                 batch_runner: Optional[BatchRunner] = None,
                 workers: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.config = config or GraphRConfig(mode="analytic")
        self.runner = batch_runner or BatchRunner(
            workers=workers, cache_dir=cache_dir, config=self.config)
        self.run_kwargs = dict(DEFAULT_RUN_KWARGS)
        if run_kwargs:
            self.run_kwargs.update(run_kwargs)
        self._memo: Dict[Tuple[str, str, str], RunStats] = {}

    # ------------------------------------------------------------------
    def graph_for(self, algorithm: str, code: str) -> Graph:
        """Dataset analog with the weighting the algorithm needs."""
        return dataset(code,
                       weighted=(algorithm in weighted_algorithms()))

    def _job(self, platform: str, algorithm: str, code: str):
        if platform not in PLATFORMS:
            raise ConfigError(f"unknown platform {platform!r}")
        # Pass the harness config explicitly: a caller-supplied
        # batch_runner may carry a different default.
        return self.runner.make_job(
            algorithm, code, platform=platform, config=self.config,
            **self.run_kwargs.get(algorithm, {}))

    def prefetch(self, triples: Iterable[Tuple[str, str, str]]) -> None:
        """Batch-execute every missing ``(platform, algorithm,
        dataset)`` in one scheduler submission.

        This is the parallelism (and cache) entry point: figure
        builders prefetch their whole grid, then assemble rows from
        the memo.  Failed jobs raise with the worker's traceback.
        """
        wanted = []
        seen = set()
        for triple in triples:
            if triple not in self._memo and triple not in seen:
                seen.add(triple)
                wanted.append(triple)
        if not wanted:
            return
        jobs = [self._job(*triple) for triple in wanted]
        for triple, result in zip(wanted, self.runner.run_jobs(jobs)):
            self._memo[triple] = result.unwrap()

    def stats(self, platform: str, algorithm: str, code: str) -> RunStats:
        """Simulated stats of one run (memoised per runner)."""
        key = (platform, algorithm, code)
        if key not in self._memo:
            self.prefetch([key])
        return self._memo[key]

    def compare(self, baseline: str, algorithm: str,
                code: str) -> ComparisonRow:
        """GraphR vs one baseline on one workload."""
        graphr = self.stats("graphr", algorithm, code)
        base = self.stats(baseline, algorithm, code)
        return ComparisonRow(
            algorithm=algorithm,
            dataset=code,
            speedup=graphr.speedup_over(base),
            energy_saving=graphr.energy_saving_over(base),
            graphr=graphr,
            baseline=base,
        )

    def compare_cells(self, baseline: str,
                      cells: Sequence[Tuple[str, str]]
                      ) -> List[ComparisonRow]:
        """Comparisons for explicit ``(algorithm, dataset)`` cells,
        prefetched as one batch."""
        self.prefetch([(platform, algorithm, code)
                       for algorithm, code in cells
                       for platform in ("graphr", baseline)])
        return [self.compare(baseline, algorithm, code)
                for algorithm, code in cells]

    def compare_matrix(self, baseline: str, algorithms: Iterable[str],
                       codes: Iterable[str]) -> List[ComparisonRow]:
        """Cartesian product of comparisons."""
        return self.compare_cells(
            baseline, [(algorithm, code) for algorithm in algorithms
                       for code in codes])
