"""Run matrices of (platform x algorithm x dataset) comparisons.

The harness memoises per-run results inside one
:class:`ExperimentRunner` so the figure builders (which share cells,
e.g. Figures 17 and 18 use the same 25 runs) execute each simulation
once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines import CPUPlatform, GPUPlatform, PIMPlatform
from repro.baselines.base import Platform
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.errors import ConfigError
from repro.graph.datasets import dataset
from repro.graph.graph import Graph
from repro.hw.stats import RunStats

__all__ = ["ComparisonRow", "ExperimentRunner", "geometric_mean",
           "DEFAULT_RUN_KWARGS"]

#: Per-algorithm run parameters used by every shipped benchmark.  The
#: PageRank iteration budget is capped so a full figure regenerates in
#: minutes; shapes are iteration-count invariant because both platforms
#: scale with the same trace.
DEFAULT_RUN_KWARGS: Dict[str, dict] = {
    "pagerank": {"max_iterations": 20},
    "bfs": {"source": 0},
    "sssp": {"source": 0},
    "spmv": {},
    "cf": {"epochs": 3},
}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    if min(values) <= 0:
        raise ConfigError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ComparisonRow:
    """One cell of a figure: GraphR vs one baseline on one workload."""

    algorithm: str
    dataset: str
    speedup: float
    energy_saving: float
    graphr: RunStats
    baseline: RunStats

    def as_tuple(self) -> Tuple[str, str, float, float]:
        """Compact ``(algorithm, dataset, speedup, energy_saving)``."""
        return (self.algorithm, self.dataset, self.speedup,
                self.energy_saving)


class ExperimentRunner:
    """Executes and caches simulated runs for the figure builders."""

    def __init__(self, config: Optional[GraphRConfig] = None,
                 run_kwargs: Optional[Dict[str, dict]] = None) -> None:
        self.config = config or GraphRConfig(mode="analytic")
        self.accelerator = GraphR(self.config)
        self.platforms: Dict[str, Platform] = {
            "cpu": CPUPlatform(),
            "gpu": GPUPlatform(),
            "pim": PIMPlatform(),
        }
        self.run_kwargs = dict(DEFAULT_RUN_KWARGS)
        if run_kwargs:
            self.run_kwargs.update(run_kwargs)
        self._cache: Dict[Tuple[str, str, str], RunStats] = {}

    # ------------------------------------------------------------------
    def graph_for(self, algorithm: str, code: str) -> Graph:
        """Dataset analog with the weighting the algorithm needs."""
        return dataset(code, weighted=(algorithm == "sssp"))

    def stats(self, platform: str, algorithm: str, code: str) -> RunStats:
        """Simulated stats of one run (cached)."""
        key = (platform, algorithm, code)
        if key in self._cache:
            return self._cache[key]
        graph = self.graph_for(algorithm, code)
        kwargs = dict(self.run_kwargs.get(algorithm, {}))
        if platform == "graphr":
            _, stats = self.accelerator.run(algorithm, graph, **kwargs)
        elif platform in self.platforms:
            _, stats = self.platforms[platform].run(algorithm, graph,
                                                    **kwargs)
        else:
            raise ConfigError(f"unknown platform {platform!r}")
        self._cache[key] = stats
        return stats

    def compare(self, baseline: str, algorithm: str,
                code: str) -> ComparisonRow:
        """GraphR vs one baseline on one workload."""
        graphr = self.stats("graphr", algorithm, code)
        base = self.stats(baseline, algorithm, code)
        return ComparisonRow(
            algorithm=algorithm,
            dataset=code,
            speedup=graphr.speedup_over(base),
            energy_saving=graphr.energy_saving_over(base),
            graphr=graphr,
            baseline=base,
        )

    def compare_matrix(self, baseline: str, algorithms: Iterable[str],
                       codes: Iterable[str]) -> List[ComparisonRow]:
        """Cartesian product of comparisons."""
        return [self.compare(baseline, algorithm, code)
                for algorithm in algorithms for code in codes]
