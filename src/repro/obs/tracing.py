"""Per-job span trees: where a simulation's wall-clock actually went.

A trace is a tree of named :class:`Span`\\ s — submit → queue-wait →
prepare/shard-attach → per-iteration sweeps → reduce/merge — keyed by a
correlation id (the job content-key prefix).  The worker entry point
opens the root with :func:`trace`; instrumented library code wraps its
phases in :func:`span`, which attaches to whatever span is current on
this thread (a ``ContextVar``, so concurrent worker-slot threads in the
same process cannot cross-wire their trees).

Crucially, :func:`span` is a **no-op when no root trace is active**:
calling ``GraphR.run`` or ``execute_job`` directly — as most tests and
library users do — produces exactly the same ``RunStats`` as before
this package existed.  Only the job runtime opens roots, and the
serialized tree rides in ``RunStats.extra["trace"]``, which never
enters job content keys.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "current_span", "enabled", "set_enabled", "span",
           "trace"]

_enabled = True
_current: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span",
                                                    default=None)


def set_enabled(flag: bool) -> None:
    """Globally enable/disable tracing (process-wide).  While disabled,
    :func:`trace` yields ``None`` and no tree is built."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    """Whether tracing is on."""
    return _enabled


class Span:
    """One timed phase; children nest to form the trace tree."""

    __slots__ = ("name", "correlation_id", "start_s", "duration_s",
                 "meta", "children", "_t0")

    def __init__(self, name: str,
                 correlation_id: Optional[str] = None) -> None:
        self.name = name
        self.correlation_id = correlation_id
        self.start_s: Optional[float] = None
        self.duration_s: Optional[float] = None
        self.meta: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "Span":
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        return self

    def finish(self) -> "Span":
        if self._t0 is not None and self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0
        return self

    def annotate(self, **meta: Any) -> "Span":
        """Attach JSON-safe key/value details (tile counts, bytes...)."""
        self.meta.update(meta)
        return self

    def child(self, name: str) -> "Span":
        """Create and attach (but do not start) a child span."""
        child = Span(name, correlation_id=self.correlation_id)
        self.children.append(child)
        return child

    def add_child(self, name: str, duration_s: float,
                  **meta: Any) -> "Span":
        """Attach an already-measured phase (e.g. the supervisor
        injecting queue-wait computed from store timestamps)."""
        child = self.child(name)
        child.duration_s = float(duration_s)
        if meta:
            child.meta.update(meta)
        return child

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe tree (the ``RunStats.extra["trace"]`` payload)."""
        out: Dict[str, Any] = {"name": self.name}
        if self.correlation_id is not None:
            out["correlation_id"] = self.correlation_id
        if self.start_s is not None:
            out["start_s"] = self.start_s
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Span":
        """Rebuild a tree from :meth:`to_dict` output (bench tooling
        reading traces back out of cached stats)."""
        node = Span(str(payload.get("name", "")),
                    correlation_id=payload.get("correlation_id"))
        node.start_s = payload.get("start_s")
        node.duration_s = payload.get("duration_s")
        node.meta = dict(payload.get("meta", {}))
        node.children = [Span.from_dict(c)
                         for c in payload.get("children", [])]
        return node

    def walk(self) -> Iterator["Span"]:
        """This span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span in the tree with the given name."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        dur = (f"{self.duration_s:.6f}s"
               if self.duration_s is not None else "open")
        return (f"Span({self.name!r}, {dur}, "
                f"children={len(self.children)})")


def current_span() -> Optional[Span]:
    """The span active on this thread, or ``None`` outside a trace."""
    return _current.get()


@contextmanager
def trace(name: str, correlation_id: Optional[str] = None
          ) -> Iterator[Optional[Span]]:
    """Open a **root** span and make it current.

    Yields the root (or ``None`` when tracing is disabled — callers
    must guard).  Only job-runtime entry points open roots; everything
    downstream uses :func:`span`.
    """
    if not _enabled:
        yield None
        return
    root = Span(name, correlation_id=correlation_id).start()
    token = _current.set(root)
    try:
        yield root
    finally:
        root.finish()
        _current.reset(token)


@contextmanager
def span(name: str, **meta: Any) -> Iterator[Optional[Span]]:
    """Time one phase under the current span.

    A no-op (yields ``None``) when no trace is active or tracing is
    disabled, so library code can call this unconditionally without
    ever changing behaviour for direct, untracked runs.
    """
    parent = _current.get()
    if parent is None or not _enabled:
        yield None
        return
    child = parent.child(name).start()
    if meta:
        child.meta.update(meta)
    token = _current.set(child)
    try:
        yield child
    finally:
        child.finish()
        _current.reset(token)
