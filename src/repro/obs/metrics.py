"""Mergeable metrics registry: counters, gauges, histograms.

The runtime is a tree of processes — a daemon (or batch parent) plus N
warm workers — and every process has its *own* registry: instrumented
library code records into the process-current registry
(:func:`get_registry`), worker entry points swap in a fresh registry
per job (:func:`use_registry`) and ship its :meth:`snapshot` back over
the existing result pipe, and the parent folds each delta into its own
registry with :meth:`MetricsRegistry.merge`.  Merge semantics make the
snapshots deltas: counters and histogram cells *add*, gauges
last-write-win.

Everything is stdlib + thread-safe (one lock per registry — the HTTP
handler threads and the worker-slot threads record concurrently), and
:meth:`to_prometheus` renders the standard text exposition for
scrapers.

Metrics are observational only: they never feed back into simulated
results, and :func:`set_enabled` turns every record call into a no-op.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "get_registry",
    "set_enabled",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds (seconds) — spans sub-ms HTTP
#: handling through multi-minute simulations; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
    300.0)

_enabled = True


def set_enabled(flag: bool) -> None:
    """Globally enable/disable metric recording (process-wide)."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    """Whether metric recording is on."""
    return _enabled


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = lock or threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value (queue depth, resident bytes)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = lock or threading.Lock()

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution (latencies, sizes).

    ``buckets`` are upper bounds in ascending order; an implicit +Inf
    bucket catches the rest.  Bucket boundaries are part of a
    histogram's identity: merging snapshots with different boundaries
    is rejected rather than silently misbinned.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 lock: Optional[threading.Lock] = None) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be ascending and non-empty")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = lock or threading.Lock()

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        return list(self._counts)


class MetricsRegistry:
    """One process's named metrics, snapshot-able and mergeable."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        """The named counter (created on first use)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_fresh(name)
                metric = Counter(name, help)
                self._counters[name] = metric
            return metric

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        """The named gauge (created on first use)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_fresh(name)
                metric = Gauge(name, help)
                self._gauges[name] = metric
            return metric

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        """The named histogram (created on first use; an existing
        histogram keeps its original buckets)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_fresh(name)
                metric = Histogram(name, help, buckets)
                self._histograms[name] = metric
            return metric

    def _check_fresh(self, name: str) -> None:
        if name in self._counters or name in self._gauges \
                or name in self._histograms:
            raise ValueError(
                f"metric {name!r} already registered with another type")

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state of every metric (a shippable delta)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(gauges.items())},
            "histograms": {
                name: {
                    "buckets": list(metric.buckets),
                    "counts": metric.counts,
                    "sum": metric.sum,
                    "count": metric.count,
                }
                for name, metric in sorted(histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram cells add; gauges take the snapshot's
        value (last write wins).  Unknown metrics are created, so a
        parent needs no advance knowledge of what its workers measure.
        A malformed snapshot raises ``ValueError`` — deltas ride the
        worker result pipe, and silent miscounting would be worse than
        a contained failure.
        """
        if not isinstance(snapshot, Mapping):
            raise ValueError("metrics snapshot must be a mapping")
        for name, value in dict(snapshot.get("counters", {})).items():
            counter = self.counter(name)
            with counter._lock:
                counter._value += float(value)
        for name, value in dict(snapshot.get("gauges", {})).items():
            gauge = self.gauge(name)
            with gauge._lock:
                gauge._value = float(value)
        for name, payload in dict(snapshot.get("histograms",
                                               {})).items():
            buckets = tuple(float(b) for b in payload["buckets"])
            histogram = self.histogram(name, buckets=buckets)
            if histogram.buckets != buckets:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{histogram.buckets} vs {buckets}")
            counts = [int(c) for c in payload["counts"]]
            if len(counts) != len(histogram._counts):
                raise ValueError(
                    f"histogram {name!r} has {len(counts)} cells, "
                    f"expected {len(histogram._counts)}")
            with histogram._lock:
                for i, c in enumerate(counts):
                    histogram._counts[i] += c
                histogram._sum += float(payload["sum"])
                histogram._count += int(payload["count"])

    def clear(self) -> None:
        """Drop every metric (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Standard Prometheus text exposition (version 0.0.4).

        Histogram bucket counts are cumulative with an explicit +Inf
        bucket, per the format; names are emitted as registered (the
        runtime registers only ``[a-z0-9_]`` names).
        """
        lines: List[str] = []
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format(value)}")
        for name, value in snap["gauges"].items():
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format(value)}")
        for name, payload in snap["histograms"].items():
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(payload["buckets"],
                                    payload["counts"]):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_format(bound)}"}} '
                             f"{cumulative}")
            cumulative += payload["counts"][-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format(payload['sum'])}")
            lines.append(f"{name}_count {payload['count']}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")


def _format(value: float) -> str:
    """Integers without a trailing ``.0``; floats via repr."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


# ----------------------------------------------------------------------
# Process-current registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def _reset_locks_after_fork() -> None:
    """Replace locks a forked child inherited from the parent.

    If another parent thread held ``_registry_lock`` (or the
    registry's internal lock) at fork time, the child's copy is locked
    forever with no owner left to release it — fresh locks make the
    child's first ``set_registry`` safe.
    """
    global _registry_lock
    _registry_lock = threading.Lock()
    _registry._lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_locks_after_fork)


def get_registry() -> MetricsRegistry:
    """The process-current registry instrumented code records into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as process-current; returns the previous
    one (workers swap in a fresh registry per job to capture a
    delta)."""
    global _registry
    with _registry_lock:
        previous = _registry
        _registry = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None
                 ) -> Iterator[MetricsRegistry]:
    """Temporarily record into ``registry`` (default: a fresh one).

    Yields the installed registry; on exit the previous registry is
    restored — the worker entry point wraps each job in this and ships
    ``registry.snapshot()`` back as the job's metric delta.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
