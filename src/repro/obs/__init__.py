"""Telemetry substrate: metrics, tracing and structured logging.

Three small, dependency-free modules every layer of the runtime can
import without cycles:

* :mod:`repro.obs.metrics` — a process-safe registry of counters,
  gauges and fixed-bucket histograms whose snapshots *merge*, so worker
  processes ship per-job deltas back over the existing result pipe and
  the daemon folds them into one fleet-wide view;
* :mod:`repro.obs.tracing` — a lightweight span-tree context manager
  keyed by a correlation id; traces serialize into
  ``RunStats.extra["trace"]`` and persist with cached results;
* :mod:`repro.obs.logsetup` — stdlib logging with an optional JSON
  formatter and correlation ids on every line.

Telemetry is strictly observational: nothing here participates in job
content keys, and disabling it (``tracing.set_enabled(False)``,
``metrics.set_enabled(False)``) changes no simulated value, second, or
joule — asserted by the telemetry-invisibility test suite.
"""

from repro.obs.logsetup import (get_correlation_id, set_correlation_id,
                                setup_logging)
from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.obs.tracing import Span, span, trace

__all__ = [
    "MetricsRegistry",
    "Span",
    "get_correlation_id",
    "get_registry",
    "set_correlation_id",
    "setup_logging",
    "span",
    "trace",
    "use_registry",
]
