"""Stdlib logging with correlation ids and an optional JSON formatter.

The runtime had zero logging before this package; the rules here:

* every record carries a ``correlation_id`` (the job content-key
  prefix) via a ``ContextVar``-backed filter, so one job's lines are
  greppable across daemon, supervisor and worker;
* :func:`setup_logging` is idempotent and configures only the
  ``"repro"`` logger subtree — never the root logger — so embedding
  applications and pytest keep their own handlers untouched;
* ``--log-json`` swaps the human one-liner for one JSON object per
  line (machine-shippable, stable keys).
"""

from __future__ import annotations

import json
import logging
import sys
from contextvars import ContextVar
from typing import Optional

__all__ = ["CorrelationFilter", "JsonFormatter", "get_correlation_id",
           "get_logger", "set_correlation_id", "setup_logging"]

_correlation_id: ContextVar[str] = ContextVar("repro_correlation_id",
                                              default="-")

# Library-logging etiquette: a NullHandler on the subtree root keeps
# ``logging.lastResort`` from dumping warnings (and tracebacks) to
# stderr when nobody called setup_logging().  Records still propagate,
# so an embedding application's root handlers see them if configured.
logging.getLogger("repro").addHandler(logging.NullHandler())

_TEXT_FORMAT = ("%(asctime)s %(levelname)s %(name)s "
                "[%(correlation_id)s] %(message)s")


def set_correlation_id(value: Optional[str]) -> None:
    """Set this thread/context's correlation id (``None`` clears)."""
    _correlation_id.set(value if value else "-")


def get_correlation_id() -> str:
    """The current correlation id (``"-"`` outside any job)."""
    return _correlation_id.get()


class CorrelationFilter(logging.Filter):
    """Stamp every record with the context's correlation id."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "correlation_id"):
            record.correlation_id = _correlation_id.get()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line with stable keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "correlation_id": getattr(record, "correlation_id", "-"),
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


def setup_logging(level: str = "WARNING", json_lines: bool = False,
                  stream=None) -> logging.Logger:
    """Configure the ``repro`` logger subtree; safe to call twice.

    Returns the ``repro`` logger.  Handlers installed by a previous
    call are replaced (so the CLI can re-run in one process, e.g. under
    tests) but nothing outside the subtree is touched.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper(), logging.WARNING))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.addFilter(CorrelationFilter())
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger with the correlation filter.

    Modules use ``log = get_logger(__name__)``; records flow to the
    subtree handler installed by :func:`setup_logging` (or nowhere, by
    default — the runtime stays silent unless asked).
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    if not any(isinstance(f, CorrelationFilter) for f in logger.filters):
        logger.addFilter(CorrelationFilter())
    return logger
