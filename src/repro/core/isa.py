"""Controller instruction traces (Figure 10).

The paper's controller "could execute simple instructions to:
1) coordinate graph data movements between memory ReRAM and GEs ...
2) convert edges ... to sparse matrix format in GEs; 3) perform
convergence check."  This module makes that control flow inspectable:
:func:`trace_iteration` emits the exact instruction sequence one
streaming-apply iteration issues, and :func:`events_from_trace` folds a
trace back into the cost model's event record.

The round trip ``events_from_trace(trace_iteration(...)) ==
streamer.iteration_events(...)`` is asserted in tests: the vectorised
analytic path and the instruction-level view count identical work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.vertex_program import MappingPattern
from repro.core.cost import IterationEvents
from repro.core.streaming import SubgraphStreamer

__all__ = ["Opcode", "Instruction", "trace_iteration",
           "events_from_trace", "trace_summary"]


class Opcode(enum.Enum):
    """The controller's instruction repertoire."""

    LOAD_BLOCK = "load_block"            # disk/memory -> memory ReRAM
    CONVERT = "convert"                  # COO slice -> dense tiles
    PROGRAM_SUBGRAPH = "program_subgraph"  # write tiles into crossbars
    PRESENT = "present"                  # drive wordlines, read bitlines
    REDUCE = "reduce"                    # sALU fold into RegO
    APPLY = "apply"                      # per-vertex post-processing
    CHECK_CONVERGENCE = "check_convergence"


@dataclass(frozen=True)
class Instruction:
    """One controller instruction with its operand fields."""

    opcode: Opcode
    operands: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in sorted(
            self.operands.items()))
        return f"{self.opcode.value}({args})"


def trace_iteration(streamer: SubgraphStreamer,
                    pattern: MappingPattern,
                    frontier: Optional[np.ndarray] = None
                    ) -> List[Instruction]:
    """Instruction sequence of one streaming-apply iteration.

    Mirrors Figure 10's loop body: load, then per non-empty subgraph
    convert/program/present/reduce, then apply + convergence check.
    """
    config = streamer.config
    s = config.crossbar_size
    program: List[Instruction] = [
        Instruction(Opcode.LOAD_BLOCK,
                    {"edges": streamer.graph.num_edges}),
    ]
    destinations: set[int] = set()
    for tile in streamer.iter_subgraphs(frontier):
        crossbar_tiles = int(np.unique(tile.cols_local // s).size)
        touched_rows = int(np.unique(
            (tile.cols_local // s).astype(np.int64) * s
            + tile.rows_local).size)
        program.append(Instruction(Opcode.CONVERT,
                                   {"edges": tile.nnz}))
        program.append(Instruction(
            Opcode.PROGRAM_SUBGRAPH,
            {"subgraph": tile.index, "tiles": crossbar_tiles,
             "rows": touched_rows}))
        if pattern is MappingPattern.PARALLEL_MAC:
            presentations = crossbar_tiles
        else:
            presentations = touched_rows
        program.append(Instruction(
            Opcode.PRESENT,
            {"subgraph": tile.index, "count": presentations}))
        program.append(Instruction(
            Opcode.REDUCE,
            {"subgraph": tile.index, "lanes": presentations * s}))
        destinations.update(
            (tile.col_base + tile.cols_local).tolist())
    program.append(Instruction(Opcode.APPLY,
                               {"vertices": len(destinations)}))
    program.append(Instruction(Opcode.CHECK_CONVERGENCE,
                               {"vertices": streamer.graph.num_vertices}))
    return program


def events_from_trace(trace: List[Instruction],
                      pattern: MappingPattern) -> IterationEvents:
    """Fold an instruction trace back into cost-model events."""
    events = IterationEvents(
        addop=pattern is MappingPattern.PARALLEL_ADD_OP)
    for instruction in trace:
        ops = instruction.operands
        if instruction.opcode is Opcode.LOAD_BLOCK:
            events.scanned_edges += ops["edges"]
        elif instruction.opcode is Opcode.CONVERT:
            events.edges += ops["edges"]
        elif instruction.opcode is Opcode.PROGRAM_SUBGRAPH:
            events.subgraphs += 1
            events.tiles += ops["tiles"]
            events.touched_rows += ops["rows"]
        elif instruction.opcode is Opcode.PRESENT:
            events.presentations += ops["count"]
        elif instruction.opcode is Opcode.REDUCE:
            events.reduce_ops += ops["lanes"]
        elif instruction.opcode is Opcode.APPLY:
            events.apply_ops += ops["vertices"]
    return events


def trace_summary(trace: List[Instruction]) -> Dict[str, int]:
    """Instruction count per opcode (diagnostics / tests)."""
    summary: Dict[str, int] = {}
    for instruction in trace:
        key = instruction.opcode.value
        summary[key] = summary.get(key, 0) + 1
    return summary
