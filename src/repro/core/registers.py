"""Input/output register files (RegI / RegO in Figure 8).

RegI caches the source-vertex properties driven onto wordlines; RegO
accumulates destination-vertex reductions for the subgraph column being
streamed.  Column-major streaming keeps RegO no larger than one
subgraph's width — the reason the paper prefers it (Section 3.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError

__all__ = ["RegisterFile"]


class RegisterFile:
    """A fixed-capacity vector register with access counting."""

    def __init__(self, capacity: int, name: str = "reg") -> None:
        if capacity <= 0:
            raise DeviceError("register capacity must be positive")
        self.capacity = int(capacity)
        self.name = name
        self._data = np.zeros(capacity, dtype=np.float64)
        self.reads = 0
        self.writes = 0

    def load(self, values: np.ndarray, offset: int = 0) -> None:
        """Write a contiguous span starting at ``offset``."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise DeviceError("register values must be a vector")
        if offset < 0 or offset + values.shape[0] > self.capacity:
            raise DeviceError(
                f"{self.name}: span [{offset}, {offset + values.shape[0]}) "
                f"exceeds capacity {self.capacity}"
            )
        self._data[offset:offset + values.shape[0]] = values
        self.writes += int(values.shape[0])

    def read(self, offset: int = 0, length: int | None = None) -> np.ndarray:
        """Read a contiguous span (whole register by default)."""
        if length is None:
            length = self.capacity - offset
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise DeviceError(f"{self.name}: bad read span")
        self.reads += int(length)
        return self._data[offset:offset + length].copy()

    def fill(self, value: float) -> None:
        """Set every entry (e.g. the reduce identity)."""
        self._data[:] = float(value)
        self.writes += self.capacity

    @property
    def data(self) -> np.ndarray:
        """Unaccounted view for assertions in tests."""
        view = self._data.view()
        view.flags.writeable = False
        return view
