"""Out-of-core GraphR workflow (Figure 9), with explicit disk blocks.

The paper's deployment: a software framework preprocesses the edge list
once, stores it on disk ordered by block/subgraph (Section 3.4), and a
GraphR node consumes one block at a time over sequential I/O.  This
module makes that pipeline concrete:

* :func:`prepare_on_disk` — preprocess a graph and write one binary
  file per block into a directory (the "disk");
* :class:`OutOfCoreRunner` — iterate an algorithm by loading blocks
  from that directory, running the accelerator per block column, and
  charging disk I/O time/energy (which the paper's execution-time
  numbers exclude — the runner reports both views).

Results are identical to in-memory runs (asserted by tests): blocking
changes where the data lives, never what is computed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.cost import EDGE_BYTES
from repro.errors import ConfigError, GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph
from repro.graph.io import load_binary, save_binary
from repro.graph.partition import BlockPartition
from repro.graph.preprocess import GraphROrdering, preprocess_edge_list
from repro.hw.params import DiskParams
from repro.hw.stats import RunStats

__all__ = ["prepare_on_disk", "OutOfCoreRunner", "BlockManifest"]

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class BlockManifest:
    """What :func:`prepare_on_disk` wrote."""

    name: str
    num_vertices: int
    num_edges: int
    block_size: int
    blocks_per_side: int
    weighted: bool
    files: Tuple[str, ...]


def prepare_on_disk(graph: Graph, directory: Union[str, Path],
                    config: GraphRConfig) -> BlockManifest:
    """Preprocess ``graph`` and persist it block by block.

    Each ``B x B`` vertex block becomes one binary file holding its
    edges in streaming-apply order; a JSON manifest ties them together.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    block = config.effective_block_size(graph.num_vertices)
    ordering = GraphROrdering(
        num_vertices=graph.num_vertices,
        block_size=block,
        crossbar_size=config.crossbar_size,
        crossbars_per_ge=config.logical_crossbars_per_ge,
        num_ges=config.num_ges,
    )
    ordered = preprocess_edge_list(graph.adjacency, ordering)
    partition = BlockPartition(graph.num_vertices, block)

    rows = np.asarray(ordered.rows)
    cols = np.asarray(ordered.cols)
    values = np.asarray(ordered.values)
    files: List[str] = []
    for bi, bj in partition.iter_blocks():
        lo_r, hi_r = bi * block, (bi + 1) * block
        lo_c, hi_c = bj * block, (bj + 1) * block
        mask = ((rows >= lo_r) & (rows < hi_r)
                & (cols >= lo_c) & (cols < hi_c))
        piece = COOMatrix((graph.num_vertices, graph.num_vertices),
                          rows[mask], cols[mask], values[mask])
        filename = f"block_{bi}_{bj}.bin"
        save_binary(Graph(adjacency=piece, name=filename,
                          weighted=graph.weighted),
                    directory / filename)
        files.append(filename)

    manifest = BlockManifest(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        block_size=block,
        blocks_per_side=partition.blocks_per_side,
        weighted=graph.weighted,
        files=tuple(files),
    )
    (directory / _MANIFEST).write_text(json.dumps({
        "name": manifest.name,
        "num_vertices": manifest.num_vertices,
        "num_edges": manifest.num_edges,
        "block_size": manifest.block_size,
        "blocks_per_side": manifest.blocks_per_side,
        "weighted": manifest.weighted,
        "files": list(manifest.files),
    }, indent=2))
    return manifest


def _read_manifest(directory: Path) -> BlockManifest:
    payload = json.loads((directory / _MANIFEST).read_text())
    return BlockManifest(
        name=payload["name"],
        num_vertices=payload["num_vertices"],
        num_edges=payload["num_edges"],
        block_size=payload["block_size"],
        blocks_per_side=payload["blocks_per_side"],
        weighted=payload["weighted"],
        files=tuple(payload["files"]),
    )


class OutOfCoreRunner:
    """Drive a GraphR node over a block directory (Figure 9).

    The runner reassembles the full (ordered) edge list from the block
    files — verifying per-block integrity on the way — executes the
    algorithm on the accelerator, and adds the disk-side costs: every
    iteration streams all blocks from disk sequentially.
    """

    def __init__(self, directory: Union[str, Path],
                 config: GraphRConfig | None = None,
                 disk: DiskParams | None = None) -> None:
        self.directory = Path(directory)
        if not (self.directory / _MANIFEST).exists():
            raise ConfigError(
                f"{self.directory} has no manifest; run prepare_on_disk"
            )
        self.manifest = _read_manifest(self.directory)
        self.config = config or GraphRConfig(mode="analytic")
        self.disk = disk or DiskParams()

    # ------------------------------------------------------------------
    def load_graph(self) -> Graph:
        """Concatenate the block files back into one graph."""
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        values: List[np.ndarray] = []
        total = 0
        for filename in self.manifest.files:
            piece = load_binary(self.directory / filename)
            if piece.num_vertices != self.manifest.num_vertices:
                raise GraphFormatError(
                    f"{filename}: vertex count mismatch with manifest"
                )
            rows.append(np.asarray(piece.adjacency.rows))
            cols.append(np.asarray(piece.adjacency.cols))
            values.append(np.asarray(piece.adjacency.values))
            total += piece.num_edges
        if total != self.manifest.num_edges:
            raise GraphFormatError(
                f"block files hold {total} edges, manifest says "
                f"{self.manifest.num_edges}"
            )
        n = self.manifest.num_vertices
        coo = COOMatrix((n, n), np.concatenate(rows),
                        np.concatenate(cols), np.concatenate(values))
        return Graph(adjacency=coo, name=self.manifest.name,
                     weighted=self.manifest.weighted)

    def run(self, algorithm: str, **kwargs) -> Tuple[object, RunStats]:
        """Execute ``algorithm`` out of core.

        The returned stats carry two timings: ``stats.seconds`` is the
        paper-comparable execution time (disk I/O excluded, Section
        5.2) and ``stats.extra["seconds_with_disk"]`` includes the
        per-iteration sequential block streaming.
        """
        graph = self.load_graph()
        accelerator = GraphR(self.config)
        result, stats = accelerator.run(algorithm, graph,
                                        mode="analytic", **kwargs)

        bytes_per_pass = self.manifest.num_edges * EDGE_BYTES
        passes = max(1, stats.iterations)
        disk_seconds = (passes * bytes_per_pass
                        / self.disk.sequential_bandwidth_bps)
        stats.extra["seconds_with_disk"] = stats.seconds + disk_seconds
        stats.extra["disk_seconds"] = disk_seconds
        stats.extra["blocks"] = len(self.manifest.files)
        stats.energy.charge_joules("disk",
                                   self.disk.power_w * disk_seconds)
        return result, stats
