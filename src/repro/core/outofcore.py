"""Out-of-core GraphR workflow (Figure 9), with explicit disk blocks.

The paper's deployment: a software framework preprocesses the edge list
once, stores it on disk ordered by block/subgraph (Section 3.4), and a
GraphR node consumes one block at a time over sequential I/O.  This
module makes that pipeline concrete:

* :func:`prepare_on_disk` — preprocess a graph and write one binary
  file per block into a directory (the "disk");
* :class:`OutOfCoreRunner` — iterate an algorithm by streaming blocks
  from that directory **one at a time** (never reassembling the edge
  list: peak in-memory edge residency is O(block) — at most two blocks
  during the load handover — measured by a garbage-collection-tracking
  ``peak_edge_residency`` counter in ``stats.extra``), running the
  accelerator per block, and charging disk I/O time/energy (which the
  paper's execution-time numbers exclude — the runner reports both
  views).

Blocks stream in the global column-major block order, so the node's
tile stream is the same sequence a whole-graph run produces; analytic
values come from the algorithm's chunked
:class:`~repro.algorithms.kernels.StreamKernel` and functional values
from the shared partitioned loop, and both are bit-identical to
in-memory runs on the same preprocessed edge list (asserted by tests).
Blocking changes where the data lives, never what is computed.
"""

from __future__ import annotations

import json
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.registry import (PROGRAM_INIT_KEYS,
                                       get_stream_kernel,
                                       resolve_program)
from repro.core.accelerator import (choose_execution_mode,
                                    config_summary)
from repro.core.config import GraphRConfig
from repro.core.cost import EDGE_BYTES, CostModel, IterationEvents
from repro.core.partitioned import (
    GraphPartition,
    PartitionedFunctionalRunner,
    accumulate_pass_events,
    partition_pass_events,
)
from repro.core.streaming import SubgraphStreamer
from repro.errors import ConfigError, GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph
from repro.graph.io import load_binary, save_binary
from repro.graph.partition import BlockPartition
from repro.graph.preprocess import GraphROrdering, preprocess_edge_list
from repro.hw.params import DiskParams
from repro.hw.stats import RunStats
from repro.obs import metrics, tracing

__all__ = ["prepare_on_disk", "OutOfCoreRunner", "BlockManifest"]

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class BlockManifest:
    """What :func:`prepare_on_disk` wrote."""

    name: str
    num_vertices: int
    num_edges: int
    block_size: int
    blocks_per_side: int
    weighted: bool
    files: Tuple[str, ...]


def prepare_on_disk(graph: Graph, directory: Union[str, Path],
                    config: GraphRConfig) -> BlockManifest:
    """Preprocess ``graph`` and persist it block by block.

    Each ``B x B`` vertex block becomes one binary file holding its
    edges in streaming-apply order; a JSON manifest ties them together.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    block = config.effective_block_size(graph.num_vertices)
    ordering = GraphROrdering(
        num_vertices=graph.num_vertices,
        block_size=block,
        crossbar_size=config.crossbar_size,
        crossbars_per_ge=config.logical_crossbars_per_ge,
        num_ges=config.num_ges,
    )
    ordered = preprocess_edge_list(graph.adjacency, ordering)
    partition = BlockPartition(graph.num_vertices, block)

    rows = np.asarray(ordered.rows)
    cols = np.asarray(ordered.cols)
    values = np.asarray(ordered.values)
    files: List[str] = []
    for bi, bj in partition.iter_blocks():
        lo_r, hi_r = bi * block, (bi + 1) * block
        lo_c, hi_c = bj * block, (bj + 1) * block
        mask = ((rows >= lo_r) & (rows < hi_r)
                & (cols >= lo_c) & (cols < hi_c))
        piece = COOMatrix((graph.num_vertices, graph.num_vertices),
                          rows[mask], cols[mask], values[mask])
        filename = f"block_{bi}_{bj}.bin"
        save_binary(Graph(adjacency=piece, name=filename,
                          weighted=graph.weighted),
                    directory / filename)
        files.append(filename)

    manifest = BlockManifest(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        block_size=block,
        blocks_per_side=partition.blocks_per_side,
        weighted=graph.weighted,
        files=tuple(files),
    )
    (directory / _MANIFEST).write_text(json.dumps({
        "name": manifest.name,
        "num_vertices": manifest.num_vertices,
        "num_edges": manifest.num_edges,
        "block_size": manifest.block_size,
        "blocks_per_side": manifest.blocks_per_side,
        "weighted": manifest.weighted,
        "files": list(manifest.files),
    }, indent=2))
    return manifest


def _read_manifest(directory: Path) -> BlockManifest:
    payload = json.loads((directory / _MANIFEST).read_text())
    return BlockManifest(
        name=payload["name"],
        num_vertices=payload["num_vertices"],
        num_edges=payload["num_edges"],
        block_size=payload["block_size"],
        blocks_per_side=payload["blocks_per_side"],
        weighted=payload["weighted"],
        files=tuple(payload["files"]),
    )


@dataclass
class _DiskMetadata:
    """Vertex-level facts gathered by the preprocessing scan."""

    out_degrees: np.ndarray
    nonempty_subgraphs: int
    max_block_edges: int


class OutOfCoreRunner:
    """Drive a GraphR node over a block directory (Figure 9).

    The runner streams the block files in global (column-major) block
    order — verifying per-block integrity on the way — executes the
    algorithm one block at a time in the configuration's execution
    mode, and adds the disk-side costs: every pass streams all blocks
    from disk sequentially.  Only the vertex property arrays and the
    block in flight (plus its predecessor during the handover) are
    ever resident.
    """

    def __init__(self, directory: Union[str, Path],
                 config: GraphRConfig | None = None,
                 disk: DiskParams | None = None,
                 mmap_blocks: bool = False) -> None:
        self.directory = Path(directory)
        #: Attach block files as zero-copy read-only mmap views instead
        #: of heap copies.  The block files are immutable content-keyed
        #: artifacts, so this changes only where the bytes live; the
        #: residency counter still counts each block's edges the same
        #: way and every computed value is bit-identical.
        self.mmap_blocks = bool(mmap_blocks)
        if not (self.directory / _MANIFEST).exists():
            raise ConfigError(
                f"{self.directory} has no manifest; run prepare_on_disk"
            )
        self.manifest = _read_manifest(self.directory)
        side = self.manifest.blocks_per_side
        if len(self.manifest.files) != side ** 2:
            raise GraphFormatError(
                f"manifest lists {len(self.manifest.files)} block files "
                f"for a {side}x{side} grid"
            )
        self.config = config or GraphRConfig(mode="analytic")
        self.disk = disk or DiskParams()
        self._metadata: Optional[_DiskMetadata] = None
        self._resident_edges = 0
        self._peak_residency = 0

    # ------------------------------------------------------------------
    @property
    def peak_edge_residency(self) -> int:
        """Most edge records held in memory at once so far."""
        return self._peak_residency

    def _validate_block(self, index: int, piece: Graph) -> None:
        """Per-block integrity: vertex space and block bounds."""
        manifest = self.manifest
        filename = manifest.files[index]
        if piece.num_vertices != manifest.num_vertices:
            raise GraphFormatError(
                f"{filename}: vertex count mismatch with manifest"
            )
        side = manifest.blocks_per_side
        block = manifest.block_size
        bi, bj = index % side, index // side
        rows = np.asarray(piece.adjacency.rows)
        cols = np.asarray(piece.adjacency.cols)
        if rows.size == 0:
            return
        if (rows.min() < bi * block or rows.max() >= (bi + 1) * block
                or cols.min() < bj * block
                or cols.max() >= (bj + 1) * block):
            raise GraphFormatError(
                f"{filename}: edges outside block ({bi}, {bj}) bounds "
                f"[{bi * block}, {(bi + 1) * block}) x "
                f"[{bj * block}, {(bj + 1) * block})"
            )

    def _release_edges(self, num_edges: int) -> None:
        self._resident_edges -= num_edges

    def iter_partitions(self) -> Iterator[GraphPartition]:
        """Stream blocks as partitions, one resident at a time.

        Blocks arrive in the manifest's (column-major, i.e. global
        streaming) order.  The residency counter decrements when a
        block's graph is actually garbage-collected (weakref
        finalizer), so it measures what is truly live: a consumer that
        retains partitions drives the counter towards O(graph), and
        the honest steady state is at most two blocks — the consumer
        still references block ``k`` while ``k+1`` loads.
        """
        manifest = self.manifest
        side = manifest.blocks_per_side
        block = manifest.block_size
        n = manifest.num_vertices
        for index, filename in enumerate(manifest.files):
            piece = load_binary(self.directory / filename,
                                mmap=self.mmap_blocks)
            self._validate_block(index, piece)
            graph = Graph(adjacency=piece.adjacency,
                          name=f"{manifest.name}#{filename}",
                          weighted=manifest.weighted)
            del piece
            self._resident_edges += graph.num_edges
            self._peak_residency = max(self._peak_residency,
                                       self._resident_edges)
            weakref.finalize(graph, self._release_edges,
                             graph.num_edges)
            bj = index // side
            yield GraphPartition(
                index=index, graph=graph,
                streamer=SubgraphStreamer(graph, self.config),
                col_lo=bj * block,
                col_hi=min((bj + 1) * block, n),
            )
            del graph

    # ------------------------------------------------------------------
    def load_graph(self) -> Graph:
        """Concatenate the block files back into one (ordered) graph.

        Not used by :meth:`run` — it exists for tests and for callers
        that want the preprocessed edge list in memory (e.g. to compare
        against an in-memory run of the same deployment input).
        """
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        values: List[np.ndarray] = []
        total = 0
        for index, filename in enumerate(self.manifest.files):
            piece = load_binary(self.directory / filename,
                                mmap=self.mmap_blocks)
            self._validate_block(index, piece)
            rows.append(np.asarray(piece.adjacency.rows))
            cols.append(np.asarray(piece.adjacency.cols))
            values.append(np.asarray(piece.adjacency.values))
            total += piece.num_edges
        if total != self.manifest.num_edges:
            raise GraphFormatError(
                f"block files hold {total} edges, manifest says "
                f"{self.manifest.num_edges}"
            )
        n = self.manifest.num_vertices
        coo = COOMatrix((n, n), np.concatenate(rows),
                        np.concatenate(cols), np.concatenate(values))
        return Graph(adjacency=coo, name=self.manifest.name,
                     weighted=self.manifest.weighted)

    # ------------------------------------------------------------------
    def _scan_metadata(self) -> _DiskMetadata:
        """One preprocessing pass: global degrees, subgraph census and
        integrity checks — all O(|V|) state."""
        if self._metadata is not None:
            return self._metadata
        n = self.manifest.num_vertices
        out_degrees = np.zeros(n, dtype=np.int64)
        nonempty = 0
        max_block = 0
        total = 0
        for partition in self.iter_partitions():
            adj = partition.graph.adjacency
            out_degrees += np.bincount(np.asarray(adj.rows), minlength=n)
            nonempty += partition.streamer.num_nonempty_subgraphs
            max_block = max(max_block, adj.nnz)
            total += adj.nnz
        if total != self.manifest.num_edges:
            raise GraphFormatError(
                f"block files hold {total} edges, manifest says "
                f"{self.manifest.num_edges}"
            )
        self._metadata = _DiskMetadata(
            out_degrees=out_degrees,
            nonempty_subgraphs=nonempty,
            max_block_edges=max_block,
        )
        return self._metadata

    def _graph_view(self) -> Graph:
        """Edgeless stand-in handed to program hooks (they only consult
        the vertex count; the edges stay on disk)."""
        n = self.manifest.num_vertices
        empty = COOMatrix((n, n), np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int64), np.zeros(0))
        return Graph(adjacency=empty, name=self.manifest.name,
                     weighted=self.manifest.weighted)

    def _total_subgraph_slots(self) -> int:
        ordering = GraphROrdering(
            num_vertices=self.manifest.num_vertices,
            block_size=self.manifest.block_size,
            crossbar_size=self.config.crossbar_size,
            crossbars_per_ge=self.config.logical_crossbars_per_ge,
            num_ges=self.config.num_ges,
        )
        grid_r, grid_c = ordering.subgraph_grid
        return ordering.blocks_per_side ** 2 * grid_r * grid_c

    # ------------------------------------------------------------------
    def run(self, algorithm: str, mode: Optional[str] = None,
            **kwargs) -> Tuple[object, RunStats]:
        """Execute ``algorithm`` out of core, honouring the execution
        mode (``mode`` argument, else ``config.mode``; ``auto``
        resolves exactly like the in-memory accelerator).

        The returned stats carry two timings: ``stats.seconds`` is the
        paper-comparable execution time (disk I/O excluded, Section
        5.2) and ``stats.extra["seconds_with_disk"]`` includes the
        per-pass sequential block streaming (algorithm passes plus the
        one preprocessing scan).
        """
        program, reference_kwargs = resolve_program(algorithm, kwargs)
        if program.name == "cf":
            raise ConfigError(
                "collaborative filtering is not supported out-of-core: "
                "its matrix-valued factor state has no streamed kernel; "
                "run it on the in-memory accelerator"
            )
        config = self.config
        if not config.skip_empty_subgraphs:
            # Each partition's streamer reports the whole grid's slot
            # count, so summing over partitions would bill the empty
            # slots once per block — the ablation only means something
            # on the in-memory single node.
            raise ConfigError(
                "the skip_empty_subgraphs=False ablation is supported "
                "on the in-memory single node only"
            )
        self._resident_edges = 0
        self._peak_residency = 0
        with tracing.span("scan-metadata",
                          blocks=len(self.manifest.files)):
            meta = self._scan_metadata()
        max_iterations = kwargs.get("max_iterations")

        chosen = mode or config.mode
        if chosen == "auto":
            chosen = choose_execution_mode(config, program,
                                           meta.nonempty_subgraphs,
                                           max_iterations)
        if chosen not in ("analytic", "functional"):
            raise ConfigError(
                f"unsupported out-of-core execution mode {chosen!r}"
            )

        n = self.manifest.num_vertices
        stats = RunStats(platform="graphr", algorithm=program.name,
                         dataset=self.manifest.name)
        stats.seconds += config.setup_overhead_s
        stats.latency.add("setup", config.setup_overhead_s)
        cost = CostModel(config)

        if chosen == "analytic":
            result = self._run_analytic(program, meta, cost, stats,
                                        reference_kwargs)
        else:
            result = self._run_functional(program, meta, cost, stats,
                                          max_iterations, kwargs)

        stats.iterations = result.iterations
        stats.extra["mode"] = chosen
        stats.extra["deployment"] = "out-of-core"
        stats.extra["nonempty_subgraphs"] = meta.nonempty_subgraphs
        stats.extra["subgraph_slots"] = self._total_subgraph_slots()
        stats.extra["config"] = config_summary(config)

        # Disk-side accounting: every pass streams every block
        # sequentially, plus the one preprocessing/metadata scan.
        bytes_per_pass = self.manifest.num_edges * EDGE_BYTES
        passes = max(1, stats.iterations) + 1
        disk_seconds = (passes * bytes_per_pass
                        / self.disk.sequential_bandwidth_bps)
        stats.extra["seconds_with_disk"] = stats.seconds + disk_seconds
        stats.extra["disk_seconds"] = disk_seconds
        stats.extra["blocks"] = len(self.manifest.files)
        stats.extra["peak_edge_residency"] = self._peak_residency
        stats.extra["max_block_edges"] = meta.max_block_edges
        stats.energy.charge_joules("disk",
                                   self.disk.power_w * disk_seconds)
        return result, stats

    # ------------------------------------------------------------------
    def _run_analytic(self, program, meta: _DiskMetadata,
                      cost: CostModel, stats: RunStats,
                      reference_kwargs: Dict[str, object]):
        """Streamed exact kernel + per-pass merged event charging."""
        n = self.manifest.num_vertices
        kernel = get_stream_kernel(program.name)(
            n, meta.out_degrees, **reference_kwargs)
        iteration = 0
        while not kernel.finished:
            iteration += 1
            with tracing.span("iteration", index=iteration) as it_span:
                frontier = kernel.frontier
                kernel.begin_pass()
                merged = IterationEvents()
                touched = np.zeros(n, dtype=bool)
                with tracing.span("sweep"):
                    for partition in self.iter_partitions():
                        adj = partition.graph.adjacency
                        kernel.process_edges(np.asarray(adj.rows),
                                             np.asarray(adj.cols),
                                             np.asarray(adj.values))
                        events = partition_pass_events(
                            partition, program.pattern, frontier,
                            work_factor=1, config=self.config)
                        accumulate_pass_events(merged, touched,
                                               partition, events,
                                               frontier)
                if frontier is not None and merged.edges == 0:
                    # A frontier of sinks activates no edge anywhere;
                    # the single-node streamer charges such a pass
                    # nothing (early return), so mirror it exactly.
                    merged = IterationEvents()
                else:
                    merged.apply_ops = int(np.count_nonzero(touched))
                kernel.end_pass()
                with tracing.span("merge"):
                    stats.seconds += cost.charge_iteration(
                        merged, stats.energy, stats.latency)
                if it_span is not None:
                    it_span.annotate(active_edges=merged.edges)
                metrics.get_registry().counter(
                    "repro_active_edges_total",
                    "Active edges processed across all iterations"
                ).inc(merged.edges)
        return kernel.result()

    def _run_functional(self, program, meta: _DiskMetadata,
                        cost: CostModel, stats: RunStats,
                        max_iterations: Optional[int],
                        kwargs: Dict[str, object]):
        """Device-model execution over the block stream."""
        runner = PartitionedFunctionalRunner(
            self.config, program, self.manifest.num_vertices,
            graph_view=self._graph_view(),
            out_degrees=meta.out_degrees,
            partitions=self.iter_partitions,
        )
        program_kwargs = {k: v for k, v in kwargs.items()
                          if k in PROGRAM_INIT_KEYS}

        def charge(merged: IterationEvents, per_partition) -> float:
            # Accumulate straight into the stats so the floating-point
            # summation order matches the in-memory controller's
            # (setup + pass + pass + ...) exactly.
            seconds = cost.charge_iteration(merged, stats.energy,
                                            stats.latency)
            stats.seconds += seconds
            return seconds

        result, _ = runner.run(charge, max_iterations=max_iterations,
                               **program_kwargs)
        return result
