"""GraphR node configuration (architecture parameters of Figure 9/12).

The evaluation configuration of the paper (Section 5.2) is the default:
crossbar size ``S = 8``, ``C = 32`` crossbars per graph engine and
``G = 64`` graph engines, 16-bit fixed-point data on 4-bit cells.

Naming note: the paper overloads ``C`` (crossbar size in Figure 12,
crossbars-per-GE in Section 5.2).  Here ``crossbar_size`` is always the
array dimension and ``crossbars_per_ge`` the *physical* crossbar count
per GE; since each 16-bit value needs ``data_bits / cell_bits`` bit-
slice arrays, the *logical* (full-precision) crossbars per GE are
``crossbars_per_ge / slices``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError
from repro.hw.params import (TechnologyParams, default_technology,
                             technology_from_dict, technology_to_dict)

__all__ = ["GraphRConfig"]


@dataclass(frozen=True)
class GraphRConfig:
    """Architecture and simulation knobs of one GraphR node.

    Attributes
    ----------
    crossbar_size:
        ``S`` — rows/columns of one ReRAM crossbar (8 in the paper).
    crossbars_per_ge:
        ``C`` — physical crossbars per graph engine (32).
    num_ges:
        ``G`` — graph engines per node (64).
    block_size:
        ``B`` — vertices per out-of-core block.  ``None`` sizes the
        block to the whole graph (pure in-memory setting).
    data_bits / frac_bits:
        Fixed-point width and fractional bits of vertex properties and
        edge coefficients (16 / 8).
    streaming_order:
        ``"column"`` (paper default: smaller RegO, fewer ReRAM writes)
        or ``"row"`` (the Figure 11b alternative, kept for the
        ablation).
    skip_empty_subgraphs:
        Skip subgraph tiles with no edges (paper behaviour).  Disabling
        it quantifies how much sparsity-skipping buys.
    noise_sigma:
        Gaussian read-noise level (in cell-level units) injected in
        functional crossbar MVMs; 0 disables.
    programming_sigma / ir_drop_alpha:
        Device non-idealities applied to MAC coefficients in functional
        mode (see :mod:`repro.reram.variation`); 0 disables.
    selective_block_scan:
        Optimisation study (off by default, the paper scans every
        block): skip streaming blocks that contain no active-source
        edges during frontier algorithms.
    mode:
        ``"functional"`` — execute every tile through the device models
        (exact algorithm semantics);
        ``"analytic"`` — run the exact reference algorithm and charge
        time/energy from vectorised event counts (very large graphs);
        ``"auto"`` — functional below ``functional_tile_budget``
        projected streamed tiles, analytic above.
    functional_tile_budget:
        Max projected (tiles x iterations) the auto mode will simulate
        functionally.  The batched engine streams tiles vectorised, so
        the default covers paper-scale runs (WV/SD PageRank and SSSP).
    functional_batch_size:
        Non-empty ``S x S`` crossbar tiles stacked per batched engine
        call in functional mode.  ``0`` selects the per-tile reference
        loop (bit-identical to the batched path, kept for equivalence
        testing and ablation).
    mem_bandwidth_bps:
        Internal sequential bandwidth of the memory-ReRAM region
        feeding the GEs (edge fetch).
    controller_edges_per_second:
        COO -> matrix conversion throughput of the controller.
    iteration_overhead_s / setup_overhead_s:
        Controller bookkeeping charged per iteration and once per run
        (convergence check, block orchestration, metadata setup).
    max_iterations:
        Iteration budget of the controller loop.
    tolerance:
        Convergence tolerance passed to iterative programs.
    technology:
        Device constants bundle.
    """

    crossbar_size: int = 8
    crossbars_per_ge: int = 32
    num_ges: int = 64
    block_size: Optional[int] = None
    data_bits: int = 16
    frac_bits: int = 8
    streaming_order: str = "column"
    skip_empty_subgraphs: bool = True
    noise_sigma: float = 0.0
    programming_sigma: float = 0.0
    ir_drop_alpha: float = 0.0
    selective_block_scan: bool = False
    mode: str = "auto"
    functional_tile_budget: int = 2_000_000
    functional_batch_size: int = 256
    mem_bandwidth_bps: float = 320e9
    controller_edges_per_second: float = 8e9
    iteration_overhead_s: float = 2e-6
    setup_overhead_s: float = 4e-5
    max_iterations: int = 100
    tolerance: float = 1e-4
    seed: int = 0
    technology: TechnologyParams = field(default_factory=default_technology)

    def __post_init__(self) -> None:
        if min(self.crossbar_size, self.crossbars_per_ge, self.num_ges) <= 0:
            raise ConfigError("crossbar_size, crossbars_per_ge and num_ges "
                              "must be positive")
        if self.block_size is not None and self.block_size <= 0:
            raise ConfigError("block_size must be positive when given")
        if self.data_bits <= 0 or self.data_bits % self.technology.reram.cell_bits:
            raise ConfigError(
                f"data_bits {self.data_bits} must be a positive multiple of "
                f"cell_bits {self.technology.reram.cell_bits}"
            )
        if not 0 <= self.frac_bits < self.data_bits:
            raise ConfigError("frac_bits must be in [0, data_bits)")
        if self.streaming_order not in ("column", "row"):
            raise ConfigError("streaming_order must be 'column' or 'row'")
        if self.mode not in ("auto", "functional", "analytic"):
            raise ConfigError("mode must be auto, functional or analytic")
        if self.functional_tile_budget < 0:
            raise ConfigError("functional_tile_budget must be non-negative")
        if self.functional_batch_size < 0:
            raise ConfigError("functional_batch_size must be non-negative")
        if self.crossbars_per_ge % self.slices:
            raise ConfigError(
                f"crossbars_per_ge {self.crossbars_per_ge} must be a "
                f"multiple of the slice count {self.slices}"
            )
        if self.noise_sigma < 0:
            raise ConfigError("noise_sigma must be non-negative")
        if self.programming_sigma < 0:
            raise ConfigError("programming_sigma must be non-negative")
        if not 0.0 <= self.ir_drop_alpha < 1.0:
            raise ConfigError("ir_drop_alpha must be in [0, 1)")
        if self.max_iterations <= 0:
            raise ConfigError("max_iterations must be positive")
        if self.tolerance <= 0:
            raise ConfigError("tolerance must be positive")
        if min(self.mem_bandwidth_bps, self.controller_edges_per_second) <= 0:
            raise ConfigError("bandwidth parameters must be positive")

    # ------------------------------------------------------------------
    @property
    def slices(self) -> int:
        """Bit-slice arrays per full-precision value."""
        return self.data_bits // self.technology.reram.cell_bits

    @property
    def logical_crossbars_per_ge(self) -> int:
        """Full-precision ``S x S`` tiles one GE holds at a time."""
        return self.crossbars_per_ge // self.slices

    @property
    def logical_crossbars(self) -> int:
        """Full-precision tiles across the whole node."""
        return self.logical_crossbars_per_ge * self.num_ges

    @property
    def tile_rows(self) -> int:
        """Subgraph height (source vertices per streaming step)."""
        return self.crossbar_size

    @property
    def tile_cols(self) -> int:
        """Subgraph width (destination vertices per streaming step)."""
        return self.crossbar_size * self.logical_crossbars

    @property
    def adcs_per_ge(self) -> int:
        """ADCs needed so one GE's bitlines convert within a GE cycle
        (the paper's 8-crossbars-per-ADC sizing)."""
        conversions = self.crossbar_size * self.crossbars_per_ge
        per_adc = (self.technology.adc.sample_rate_sps
                   * self.technology.reram.ge_cycle_s)
        return max(1, int(-(-conversions // per_adc)))

    def effective_block_size(self, num_vertices: int) -> int:
        """The block size actually used for a graph (``B`` or ``|V|``)."""
        if self.block_size is None:
            return num_vertices
        return min(self.block_size, num_vertices)

    def with_overrides(self, **kwargs) -> "GraphRConfig":
        """Copy with fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Canonical serialization — the parallel runtime keys its result
    # cache on this, so the dictionary must round-trip exactly and the
    # hash must be stable across processes and machines.
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary of every configuration field.

        Round-trips exactly through :meth:`from_dict`; the technology
        bundle is expanded to plain numbers so two configs with equal
        constants serialize identically.
        """
        payload: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "technology":
                value = technology_to_dict(value)
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "GraphRConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Partial dictionaries are allowed (absent fields keep their
        defaults) so job files can specify only overrides; unknown
        fields raise :class:`ConfigError`.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown config field(s): {', '.join(sorted(unknown))}")
        kwargs = dict(payload)
        if "technology" in kwargs:
            kwargs["technology"] = technology_from_dict(kwargs["technology"])
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict` (sorted keys,
        no whitespace) — the hashing pre-image."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical JSON form.

        Equal configurations hash equally in every process; the batch
        runtime folds this into each job's content key.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()
