"""Controller: the Figure 10 loop, in both execution modes.

The controller coordinates data movement between memory ReRAM and the
GEs, runs the streaming-apply iteration, reduces with the sALU, and
checks convergence.  :class:`Controller` implements that loop twice:

* :meth:`run_functional` — every tile goes through the functional
  :class:`~repro.core.engine.GraphEngine`, so the returned values are
  computed by the simulated device chain;
* :meth:`run_analytic` — the exact reference algorithm provides the
  values and the per-iteration frontier trace, and the streaming
  scheduler converts each iteration into event counts.  Identical work
  is charged identically (same :class:`~repro.core.cost.CostModel`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.registry import run_reference
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.core.addop_mapper import run_addop_iteration
from repro.core.config import GraphRConfig
from repro.core.cost import CostModel
from repro.core.engine import GraphEngine
from repro.core.mac_mapper import run_mac_iteration
from repro.core.streaming import SubgraphStreamer
from repro.errors import MappingError
from repro.graph.graph import Graph
from repro.hw.stats import RunStats
from repro.reram.fixed_point import FixedPointFormat

__all__ = ["Controller"]


class Controller:
    """Iteration-loop driver for one (graph, program, config) run."""

    def __init__(self, config: GraphRConfig, graph: Graph,
                 program: VertexProgram) -> None:
        self.config = config
        self.graph = graph
        self.program = program
        self.streamer = SubgraphStreamer(graph, config)
        self.cost = CostModel(config)
        if program.pattern is MappingPattern.PARALLEL_MAC:
            # Probability-style programs get maximal fractional
            # precision; general MAC programs need integer range for
            # weighted coefficients.
            frac = (config.data_bits - 1
                    if program.unit_interval_coefficients
                    else config.frac_bits)
            fmt = FixedPointFormat(config.data_bits, frac)
        else:
            fmt = FixedPointFormat(config.data_bits, 0)
        self.engine = GraphEngine(config, coeff_fmt=fmt, input_fmt=fmt)

    # ------------------------------------------------------------------
    def run_functional(self, max_iterations: Optional[int] = None,
                       **program_kwargs) -> Tuple[AlgorithmResult,
                                                  RunStats]:
        """Run the loop through the functional device models.

        ``max_iterations`` overrides the config's iteration budget for
        this run (the same knob ``run_kwargs`` gives the analytic
        reference), so both modes honour a job's budget identically.
        """
        program = self.program
        graph = self.graph
        budget = (self.config.max_iterations if max_iterations is None
                  else max_iterations)
        if program.name == "cf":
            raise MappingError(
                "collaborative filtering has matrix-valued properties; "
                "use analytic mode"
            )
        stats = RunStats(platform="graphr", algorithm=program.name,
                         dataset=graph.name)
        stats.seconds += self.config.setup_overhead_s
        stats.latency.add("setup", self.config.setup_overhead_s)
        coefficients = program.crossbar_coefficient(graph)
        properties = program.initial_properties(graph, **program_kwargs)
        frontier: Optional[np.ndarray] = None
        if program.needs_active_list:
            frontier = properties != program.reduce_identity

        trace = IterationTrace(
            frontiers=[] if program.needs_active_list else None)
        converged = False
        iterations = 0
        for iteration in range(1, budget + 1):
            if program.needs_active_list and not frontier.any():
                converged = True
                break
            iterations = iteration
            new_props, changed, events = self._run_one(
                properties, coefficients, frontier)
            stats.seconds += self.cost.charge_iteration(
                events, stats.energy, stats.latency)
            trace.record(
                vertices=(int(frontier.sum()) if frontier is not None
                          else graph.num_vertices),
                edges=events.edges,
                frontier=frontier if program.needs_active_list else None,
            )
            done = program.has_converged(properties, new_props, iteration)
            properties = new_props
            if program.needs_active_list:
                frontier = changed
                done = not changed.any()
            if done:
                converged = True
                break
        stats.iterations = iterations
        stats.extra["mode"] = "functional"
        stats.extra["nonempty_subgraphs"] = self.streamer.num_nonempty_subgraphs
        stats.extra["subgraph_slots"] = self.streamer.total_subgraph_slots
        result = AlgorithmResult(
            algorithm=program.name,
            values=properties,
            iterations=iterations,
            converged=converged,
            trace=trace,
        )
        return result, stats

    def _run_one(self, properties: np.ndarray, coefficients: np.ndarray,
                 frontier: Optional[np.ndarray]):
        """Dispatch one iteration to the pattern's mapper."""
        if self.program.pattern is MappingPattern.PARALLEL_MAC:
            return run_mac_iteration(self.streamer, self.engine,
                                     self.program, self.graph,
                                     properties, coefficients,
                                     frontier=None)
        return run_addop_iteration(self.streamer, self.engine,
                                   self.program, self.graph,
                                   properties, coefficients,
                                   frontier=frontier)

    # ------------------------------------------------------------------
    def run_analytic(self, **reference_kwargs) -> Tuple[AlgorithmResult,
                                                        RunStats]:
        """Run the reference algorithm and charge event-counted costs."""
        program = self.program
        graph = self.graph
        stats = RunStats(platform="graphr", algorithm=program.name,
                         dataset=graph.name)
        stats.seconds += self.config.setup_overhead_s
        stats.latency.add("setup", self.config.setup_overhead_s)
        result = run_reference(program.name, graph, **reference_kwargs)

        work_factor = getattr(program, "features", 1) \
            if program.name == "cf" else 1
        if program.needs_active_list and result.trace.frontiers:
            for frontier in result.trace.frontiers:
                events = self.streamer.iteration_events(
                    program.pattern, frontier=frontier)
                stats.seconds += self.cost.charge_iteration(
                    events, stats.energy, stats.latency)
        else:
            events = self.streamer.iteration_events(
                program.pattern, frontier=None, work_factor=work_factor)
            for _ in range(max(1, result.iterations)):
                stats.seconds += self.cost.charge_iteration(
                    events, stats.energy, stats.latency)
        stats.iterations = result.iterations
        stats.extra["mode"] = "analytic"
        stats.extra["nonempty_subgraphs"] = self.streamer.num_nonempty_subgraphs
        stats.extra["subgraph_slots"] = self.streamer.total_subgraph_slots
        return result, stats
