"""Controller: the Figure 10 loop, in both execution modes.

The controller coordinates data movement between memory ReRAM and the
GEs, runs the streaming-apply iteration, reduces with the sALU, and
checks convergence.  :class:`Controller` implements that loop twice:

* :meth:`run_functional` — every tile goes through the functional
  :class:`~repro.core.engine.GraphEngine`, so the returned values are
  computed by the simulated device chain;
* :meth:`run_analytic` — the exact reference algorithm provides the
  values and the per-iteration frontier trace, and the streaming
  scheduler converts each iteration into event counts.  Identical work
  is charged identically (same :class:`~repro.core.cost.CostModel`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algorithms.registry import run_reference
from repro.algorithms.vertex_program import AlgorithmResult, VertexProgram
from repro.core.config import GraphRConfig
from repro.core.cost import CostModel
from repro.core.partitioned import (
    GraphPartition,
    PartitionedFunctionalRunner,
    engine_for_program,
)
from repro.core.streaming import SubgraphStreamer
from repro.graph.graph import Graph
from repro.hw.stats import RunStats
from repro.obs import tracing

__all__ = ["Controller"]


class Controller:
    """Iteration-loop driver for one (graph, program, config) run."""

    def __init__(self, config: GraphRConfig, graph: Graph,
                 program: VertexProgram) -> None:
        self.config = config
        self.graph = graph
        self.program = program
        self.streamer = SubgraphStreamer(graph, config)
        self.cost = CostModel(config)
        self.engine = engine_for_program(config, program)

    # ------------------------------------------------------------------
    def run_functional(self, max_iterations: Optional[int] = None,
                       **program_kwargs) -> Tuple[AlgorithmResult,
                                                  RunStats]:
        """Run the loop through the functional device models.

        ``max_iterations`` overrides the config's iteration budget for
        this run (the same knob ``run_kwargs`` gives the analytic
        reference), so both modes honour a job's budget identically.
        The loop itself is the shared partitioned one, driven with a
        single whole-graph partition — out-of-core and multi-node
        deployments execute the identical code, which is what keeps
        them bit-identical to this path by construction.
        """
        program = self.program
        graph = self.graph
        stats = RunStats(platform="graphr", algorithm=program.name,
                         dataset=graph.name)
        stats.seconds += self.config.setup_overhead_s
        stats.latency.add("setup", self.config.setup_overhead_s)

        whole = GraphPartition(index=0, graph=graph,
                               streamer=self.streamer,
                               col_lo=0, col_hi=graph.num_vertices)
        runner = PartitionedFunctionalRunner(
            self.config, program, graph.num_vertices,
            graph_view=graph, out_degrees=graph.out_degrees(),
            partitions=lambda: (whole,), engine=self.engine,
            persistent_partitions=True)

        def charge(merged, per_partition) -> float:
            seconds = self.cost.charge_iteration(merged, stats.energy,
                                                 stats.latency)
            stats.seconds += seconds
            return seconds

        result, _ = runner.run(charge, max_iterations=max_iterations,
                               **program_kwargs)
        stats.iterations = result.iterations
        stats.extra["mode"] = "functional"
        stats.extra["nonempty_subgraphs"] = self.streamer.num_nonempty_subgraphs
        stats.extra["subgraph_slots"] = self.streamer.total_subgraph_slots
        return result, stats

    # ------------------------------------------------------------------
    def run_analytic(self, **reference_kwargs) -> Tuple[AlgorithmResult,
                                                        RunStats]:
        """Run the reference algorithm and charge event-counted costs."""
        program = self.program
        graph = self.graph
        stats = RunStats(platform="graphr", algorithm=program.name,
                         dataset=graph.name)
        stats.seconds += self.config.setup_overhead_s
        stats.latency.add("setup", self.config.setup_overhead_s)
        with tracing.span("reference", algorithm=program.name):
            result = run_reference(program.name, graph,
                                   **reference_kwargs)

        work_factor = getattr(program, "features", 1) \
            if program.name == "cf" else 1
        with tracing.span("merge",
                          iterations=max(1, result.iterations)):
            if program.needs_active_list and result.trace.frontiers:
                for frontier in result.trace.frontiers:
                    events = self.streamer.iteration_events(
                        program.pattern, frontier=frontier,
                        work_factor=work_factor)
                    stats.seconds += self.cost.charge_iteration(
                        events, stats.energy, stats.latency)
            else:
                events = self.streamer.iteration_events(
                    program.pattern, frontier=None,
                    work_factor=work_factor)
                for _ in range(max(1, result.iterations)):
                    stats.seconds += self.cost.charge_iteration(
                        events, stats.energy, stats.latency)
        stats.iterations = result.iterations
        stats.extra["mode"] = "analytic"
        stats.extra["nonempty_subgraphs"] = self.streamer.num_nonempty_subgraphs
        stats.extra["subgraph_slots"] = self.streamer.total_subgraph_slots
        return result, stats
