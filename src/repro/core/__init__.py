"""GraphR accelerator core — the paper's primary contribution.

The public entry point is :class:`~repro.core.accelerator.GraphR`:

>>> from repro.core import GraphR, GraphRConfig
>>> from repro.graph import rmat
>>> accel = GraphR(GraphRConfig())
>>> result, stats = accel.run("pagerank", rmat(8, 400, seed=1))

Internally a run flows through the controller's iteration loop
(Figure 10), the streaming-apply scheduler (Figure 11), and either the
parallel-MAC or parallel-add-op mapper (Section 4) executing on
functional graph engines; every event is charged to the cost model so
``stats`` carries the simulated time and energy.
"""

from repro.core.config import GraphRConfig
from repro.core.cost import CostModel, IterationEvents
from repro.core.registers import RegisterFile
from repro.core.engine import GraphEngine
from repro.core.streaming import SubgraphStreamer, Tile, TileBatch
from repro.core.accelerator import GraphR, choose_execution_mode
from repro.core.partitioned import (
    DeploymentSpec,
    GraphPartition,
    PartitionedFunctionalRunner,
    partition_by_destination,
)
from repro.core.multinode import MultiNodeConfig, MultiNodeGraphR
from repro.core.outofcore import (
    BlockManifest,
    OutOfCoreRunner,
    prepare_on_disk,
)
from repro.core.isa import (
    Instruction,
    Opcode,
    events_from_trace,
    trace_iteration,
    trace_summary,
)

__all__ = [
    "Instruction",
    "Opcode",
    "events_from_trace",
    "trace_iteration",
    "trace_summary",
    "BlockManifest",
    "OutOfCoreRunner",
    "prepare_on_disk",
    "DeploymentSpec",
    "GraphPartition",
    "PartitionedFunctionalRunner",
    "partition_by_destination",
    "choose_execution_mode",
    "MultiNodeConfig",
    "MultiNodeGraphR",
    "GraphRConfig",
    "CostModel",
    "IterationEvents",
    "RegisterFile",
    "GraphEngine",
    "SubgraphStreamer",
    "Tile",
    "TileBatch",
    "GraphR",
]
