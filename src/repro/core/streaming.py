"""Streaming-apply scheduler (Section 3.3, Figure 11).

:class:`SubgraphStreamer` owns the preprocessed edge order of one graph
under one :class:`~repro.core.config.GraphRConfig` and serves both
execution modes:

* :meth:`iter_subgraphs` — yields non-empty subgraph tiles in the
  global streaming order (column-major blocks, column-major subgraphs)
  for the functional engines;
* :meth:`iter_tile_batches` — stacks consecutive non-empty ``S x S``
  crossbar tiles into dense ``(batch, S, S)`` blocks with one
  vectorised scatter over the preprocessed edge arrays (no per-tile
  Python work), feeding the batched functional engine; crossbar
  granularity is the hardware's sparsity skip — empty crossbars inside
  a subgraph are never materialised;
* :meth:`iteration_events` — vectorised event extraction (non-empty
  subgraphs / crossbar tiles / touched rows / presentations) for the
  analytic cost path, optionally restricted to an active-source
  frontier.

All views derive from the same per-edge precomputation, so functional
and analytic runs of the same iteration count identical events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.algorithms.vertex_program import MappingPattern
from repro.core.config import GraphRConfig
from repro.core.cost import IterationEvents
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.graph.preprocess import GraphROrdering, global_order_id

__all__ = ["SubgraphStreamer", "Tile", "TileBatch"]


@dataclass
class Tile:
    """One non-empty subgraph in streaming order.

    Coordinates are split into the global vertex ranges the tile covers
    (``row_base`` + ``tile_rows`` sources, ``col_base`` + ``tile_cols``
    destinations) and tile-local edge arrays.
    """

    index: int
    row_base: int
    col_base: int
    rows_local: np.ndarray
    cols_local: np.ndarray
    edge_ids: np.ndarray

    @property
    def nnz(self) -> int:
        """Edges in the tile."""
        return int(self.rows_local.shape[0])


@dataclass
class TileBatch:
    """A stack of consecutive non-empty crossbar tiles in streaming
    order.

    ``dense`` is a ``(count, S, S)`` block of scattered coefficients —
    a *view into a reused buffer*, valid only until the next batch is
    produced; consumers must not retain it.  ``row_bases`` /
    ``col_bases`` give each crossbar tile's global vertex origin,
    ``edges`` counts the edge records scattered into the batch, and
    ``subgraph_starts`` counts the subgraphs whose first active
    crossbar lies in this batch (so summing it over an iteration's
    batches counts distinct active subgraphs exactly once).
    """

    dense: np.ndarray
    row_bases: np.ndarray
    col_bases: np.ndarray
    edges: int
    subgraph_starts: int

    @property
    def count(self) -> int:
        """Crossbar tiles stacked in this batch."""
        return int(self.dense.shape[0])


class SubgraphStreamer:
    """Precomputed streaming order of one (graph, config) pair."""

    def __init__(self, graph: Graph, config: GraphRConfig) -> None:
        self.graph = graph
        self.config = config
        block = config.effective_block_size(graph.num_vertices)
        self.ordering = GraphROrdering(
            num_vertices=graph.num_vertices,
            block_size=block,
            crossbar_size=config.crossbar_size,
            crossbars_per_ge=config.logical_crossbars_per_ge,
            num_ges=config.num_ges,
        )
        rows = np.asarray(graph.adjacency.rows)
        cols = np.asarray(graph.adjacency.cols)
        gid = global_order_id(self.ordering, rows, cols)

        # Sort edges into streaming order once (the Section 3.4 pass).
        order = np.argsort(gid, kind="stable")
        self._perm = order
        self._gid = gid[order]
        self._src = rows[order]
        self._dst = cols[order]

        per_tile = self.ordering.entries_per_subgraph
        s = config.crossbar_size
        self._subgraph_of_edge = self._gid // per_tile
        sub_order = self._gid % per_tile
        self._row_in_tile = sub_order % s
        self._col_in_tile = sub_order // s
        self._crossbar_of_edge = (
            self._subgraph_of_edge * config.logical_crossbars
            + self._col_in_tile // s
        )
        self._rowkey_of_edge = (
            self._crossbar_of_edge * s + self._row_in_tile
        )

        # Subgraph boundaries for functional iteration.
        self._boundaries = np.flatnonzero(
            np.concatenate(([True],
                            self._subgraph_of_edge[1:]
                            != self._subgraph_of_edge[:-1]))
        )
        # Crossbar-granular view for the batched functional path: the
        # streaming sort is column-major inside each subgraph, so the
        # sorted edges are also grouped by S x S crossbar tile.  Each
        # non-empty crossbar gets an ordinal, and each edge knows its
        # ordinal plus in-crossbar coordinates — the keys of the
        # vectorised batch scatter.
        self._col_in_crossbar = self._col_in_tile % s
        if self._gid.size:
            cb_bounds = np.flatnonzero(
                np.concatenate(([True],
                                self._crossbar_of_edge[1:]
                                != self._crossbar_of_edge[:-1]))
            )
        else:
            cb_bounds = np.zeros(0, dtype=np.int64)
        cb_counts = np.diff(np.concatenate((cb_bounds, [self._gid.size])))
        self._cb_ordinal_of_edge = np.repeat(
            np.arange(cb_bounds.size, dtype=np.int64), cb_counts)
        cb_keys = self._crossbar_of_edge[cb_bounds]
        self._cb_subgraph = cb_keys // config.logical_crossbars
        sub_rows, sub_cols = self._subgraph_origins(self._cb_subgraph)
        self._cb_row_base = sub_rows
        self._cb_col_base = sub_cols + (cb_keys % config.logical_crossbars) * s
        # Scratch buffer reused across batches and iterations.
        self._batch_buffer: Optional[np.ndarray] = None

        # Block-level bookkeeping for the selective-scan optimisation.
        grid_r, grid_c = self.ordering.subgraph_grid
        per_block = grid_r * grid_c
        self._block_of_edge = self._subgraph_of_edge // per_block
        num_blocks = self.ordering.blocks_per_side ** 2
        self._block_edge_counts = np.bincount(
            self._block_of_edge, minlength=num_blocks).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_nonempty_subgraphs(self) -> int:
        """Non-empty subgraphs in the whole graph."""
        return int(self._boundaries.size)

    @property
    def total_subgraph_slots(self) -> int:
        """All subgraph positions, empty ones included."""
        o = self.ordering
        grid_r, grid_c = o.subgraph_grid
        return o.blocks_per_side ** 2 * grid_r * grid_c

    @property
    def preprocessed_order(self) -> np.ndarray:
        """Permutation applied to the graph's edges (read-only)."""
        view = self._perm.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    def _subgraph_origins(self, subgraph_indices: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised global (source, destination) origins of subgraph
        slots."""
        o = self.ordering
        grid_r, grid_c = o.subgraph_grid
        per_block = grid_r * grid_c
        idx = np.asarray(subgraph_indices, dtype=np.int64)
        block_order, within = np.divmod(idx, per_block)
        block_j, block_i = np.divmod(block_order, o.blocks_per_side)
        tile_j, tile_i = np.divmod(within, grid_r)
        rows = block_i * o.block_size + tile_i * o.tile_rows
        cols = block_j * o.block_size + tile_j * o.tile_cols
        return rows, cols

    def subgraph_origin(self, subgraph_index: int) -> tuple[int, int]:
        """Global (source, destination) vertex origin of a subgraph slot."""
        rows, cols = self._subgraph_origins(
            np.asarray([subgraph_index], dtype=np.int64))
        return int(rows[0]), int(cols[0])

    def iter_subgraphs(self,
                       frontier: Optional[np.ndarray] = None
                       ) -> Iterator[Tile]:
        """Yield non-empty subgraphs in streaming order.

        ``frontier`` (boolean over vertices) restricts to subgraphs
        containing at least one edge from an active source; the tile's
        edge arrays still contain only active-source edges, matching
        the controller's active-list filtering.
        """
        starts = self._boundaries
        stops = np.concatenate((starts[1:], [self._gid.size]))
        for start, stop in zip(starts, stops):
            sl = slice(int(start), int(stop))
            src = self._src[sl]
            if frontier is not None:
                keep = frontier[src]
                if not keep.any():
                    continue
                src = src[keep]
                dst = self._dst[sl][keep]
                edge_ids = self._perm[sl][keep]
                rows_in = self._row_in_tile[sl][keep]
            else:
                dst = self._dst[sl]
                edge_ids = self._perm[sl]
                rows_in = self._row_in_tile[sl]
            sub_index = int(self._subgraph_of_edge[start])
            row_base, col_base = self.subgraph_origin(sub_index)
            yield Tile(
                index=sub_index,
                row_base=row_base,
                col_base=col_base,
                rows_local=rows_in,
                cols_local=dst - col_base,
                edge_ids=edge_ids,
            )

    # ------------------------------------------------------------------
    def iter_tile_batches(self, coefficients: np.ndarray,
                          batch_size: int,
                          frontier: Optional[np.ndarray] = None,
                          fill_value: float = 0.0,
                          combine: str = "add") -> Iterator[TileBatch]:
        """Yield stacked ``(batch, S, S)`` dense crossbar blocks in
        streaming order, built by one vectorised scatter per batch.

        ``coefficients`` is aligned with the *original* edge order of
        the graph's adjacency (like :attr:`Tile.edge_ids` indexing);
        ``frontier`` restricts the scatter to edges from active sources
        and drops crossbar tiles left empty, exactly like
        :meth:`iter_subgraphs` drops subgraphs.  Duplicate coordinates
        are merged by ``combine`` — ``"add"`` sums parallel edges (MAC
        semantics, matching
        :meth:`~repro.graph.coo.COOMatrix.to_dense`), ``"min"`` keeps
        the lightest (relaxation semantics) and ``"max"`` the widest
        (bottleneck semantics).  The ``dense`` block of each yielded
        batch is a view into one reused scratch buffer (initialised to
        ``fill_value``), so consumers must finish with a batch before
        advancing the iterator.
        """
        if batch_size <= 0:
            raise PartitionError("batch_size must be positive")
        if combine not in ("add", "min", "max"):
            raise PartitionError(f"unknown combine mode {combine!r}")
        values = np.asarray(coefficients, dtype=np.float64)[self._perm]
        ordinals = self._cb_ordinal_of_edge
        rows = self._row_in_tile
        cols = self._col_in_crossbar
        if frontier is not None:
            frontier = np.asarray(frontier, dtype=bool)
            if frontier.shape != (self.graph.num_vertices,):
                raise PartitionError("frontier length must equal |V|")
            keep = frontier[self._src]
            values = values[keep]
            rows = rows[keep]
            cols = cols[keep]
            active, ordinals = np.unique(ordinals[keep],
                                         return_inverse=True)
        else:
            active = np.arange(self._cb_row_base.size, dtype=np.int64)
        if active.size == 0:
            return
        row_bases = self._cb_row_base[active]
        col_bases = self._cb_col_base[active]
        # A subgraph "starts" at its first active crossbar; summing the
        # per-batch start counts therefore counts each active subgraph
        # exactly once, however batches split its crossbars.
        subs = self._cb_subgraph[active]
        sub_start = np.concatenate(([True], subs[1:] != subs[:-1]))
        sub_starts_before = np.concatenate(([0], np.cumsum(sub_start)))
        # Edges arrive sorted by streaming order, hence by ordinal:
        # every batch of crossbar tiles owns one contiguous edge range.
        counts = np.bincount(ordinals, minlength=active.size)
        starts = np.concatenate(([0], np.cumsum(counts)))

        s = self.config.crossbar_size
        if self._batch_buffer is None or \
                self._batch_buffer.shape[0] < min(batch_size, active.size):
            self._batch_buffer = np.empty((batch_size, s, s))
        scatter = {"add": np.add.at, "min": np.minimum.at,
                   "max": np.maximum.at}[combine]
        for base in range(0, active.size, batch_size):
            stop = min(base + batch_size, active.size)
            dense = self._batch_buffer[:stop - base]
            dense.fill(fill_value)
            span = slice(starts[base], starts[stop])
            scatter(dense, (ordinals[span] - base, rows[span],
                            cols[span]), values[span])
            yield TileBatch(
                dense=dense,
                row_bases=row_bases[base:stop],
                col_bases=col_bases[base:stop],
                edges=int(starts[stop] - starts[base]),
                subgraph_starts=int(sub_starts_before[stop]
                                    - sub_starts_before[base]),
            )

    # ------------------------------------------------------------------
    def iteration_events(self, pattern: MappingPattern,
                         frontier: Optional[np.ndarray] = None,
                         work_factor: int = 1) -> IterationEvents:
        """Event counts of one iteration (the analytic path).

        ``work_factor`` multiplies presentations/reduces for algorithms
        that make several passes per iteration (collaborative filtering
        presents once per feature).  Programming work does *not* scale
        with it: the coefficients are static across passes, so tiles are
        written once per subgraph step regardless of how many vectors
        are driven through them.
        """
        if frontier is None:
            mask = slice(None)
            edges = int(self._gid.size)
        else:
            frontier = np.asarray(frontier, dtype=bool)
            if frontier.shape != (self.graph.num_vertices,):
                raise PartitionError("frontier length must equal |V|")
            mask = frontier[self._src]
            edges = int(np.count_nonzero(mask))
            if edges == 0:
                return IterationEvents()

        if self.config.skip_empty_subgraphs:
            subgraphs = int(np.unique(self._subgraph_of_edge[mask]).size)
            tiles = int(np.unique(self._crossbar_of_edge[mask]).size)
            touched_rows = int(np.unique(self._rowkey_of_edge[mask]).size)
        else:
            # Ablation: without sparsity skipping, every subgraph slot is
            # streamed and every crossbar/row in it pays program/compute.
            subgraphs = self.total_subgraph_slots
            tiles = subgraphs * self.config.logical_crossbars
            touched_rows = tiles * self.config.crossbar_size
        if pattern is MappingPattern.PARALLEL_MAC:
            presentations = tiles
        else:
            presentations = touched_rows
        presentations *= work_factor
        s = self.config.crossbar_size
        if frontier is None:
            destinations = int(np.unique(self._dst).size)
        else:
            destinations = int(np.unique(self._dst[mask]).size)

        # Selective block scan (optimisation study, off by default —
        # the paper's controller streams every block): with per-block
        # activity metadata, blocks without any active-source edge need
        # not be read from memory ReRAM at all.
        if self.config.selective_block_scan and frontier is not None:
            active_blocks = np.unique(self._block_of_edge[mask])
            scanned = int(self._block_edge_counts[active_blocks].sum())
        else:
            scanned = int(self._gid.size)
        return IterationEvents(
            edges=edges,
            scanned_edges=scanned,
            subgraphs=subgraphs,
            tiles=tiles,
            presentations=presentations,
            touched_rows=touched_rows,
            reduce_ops=presentations * s,
            apply_ops=destinations,
            addop=pattern is MappingPattern.PARALLEL_ADD_OP,
        )
