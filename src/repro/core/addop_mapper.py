"""Parallel-add-op mapping (Section 4.2): SSSP/BFS relaxations.

One streaming-apply iteration: only subgraphs containing edges from
*active* sources are loaded; each active source row is presented in its
own time slot (one-hot wordline plus the bias row carrying
``dist(u)``), and the sALU's comparator array folds candidates into the
destination register with ``min`` (Figure 16 c3).  The iteration is
synchronous across subgraphs — destination updates become visible as
source values in the *next* iteration, exactly the semantics of the
frontier-driven Bellman-Ford reference.

As in the MAC mapper, the default path stacks non-empty crossbar tiles
into ``(batch, S, S)`` blocks for
:meth:`~repro.core.engine.GraphEngine.addop_batch`; ``batch_size=0``
runs the bit-identical per-tile loop.  Parallel edges merge with
``min`` in both paths — the lightest of two parallel relaxations is
the one that survives the comparator anyway.

:func:`run_addop_scan` is the tile loop alone, folding into a
caller-provided padded register; the partitioned-execution layer runs
one scan per partition of the same pass, so partitioned and
whole-graph iterations execute the identical tile stream.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.vertex_program import VertexProgram
from repro.core.cost import IterationEvents
from repro.core.engine import GraphEngine
from repro.core.streaming import SubgraphStreamer
from repro.graph.graph import Graph

__all__ = ["run_addop_iteration", "run_addop_scan"]


def run_addop_scan(
    streamer: SubgraphStreamer,
    engine: GraphEngine,
    padded_dist: np.ndarray,
    accum: np.ndarray,
    coefficients: np.ndarray,
    absent: float,
    frontier: Optional[np.ndarray] = None,
    batch_size: Optional[int] = None,
    reduce_op: str = "min",
) -> IterationEvents:
    """Stream one graph (or partition) of add-op tiles into ``accum``.

    ``padded_dist`` holds the pass's (old) source values and ``accum``
    the folded candidates, both padded to ``padded_vertices +
    tile_cols``; convergence/frontier bookkeeping is the caller's job.
    ``reduce_op`` selects the comparator polarity: ``"min"`` relaxes
    (SSSP/BFS/WCC), ``"max"`` widens (SSWP) — parallel edges merge with
    the same operation, since only the winning candidate survives the
    fold either way.
    """
    cfg = streamer.config
    s = cfg.crossbar_size
    if batch_size is None:
        batch_size = cfg.functional_batch_size

    fold_at = np.minimum.at if reduce_op == "min" else np.maximum.at
    fold = np.minimum if reduce_op == "min" else np.maximum
    events = IterationEvents()
    all_rows = np.arange(s)
    if batch_size > 0:
        for batch in streamer.iter_tile_batches(
                coefficients, batch_size, frontier=frontier,
                fill_value=absent, combine=reduce_op):
            source_values = padded_dist[batch.row_bases[:, None]
                                        + all_rows]
            out, tile_events = engine.addop_batch(batch.dense,
                                                  source_values, absent,
                                                  reduce_op=reduce_op)
            fold_at(accum, batch.col_bases[:, None] + all_rows, out)
            events.merge(tile_events)
            events.edges += batch.edges
            events.subgraphs += batch.subgraph_starts
    else:
        for batch in streamer.iter_tile_batches(
                coefficients, 1, frontier=frontier,
                fill_value=absent, combine=reduce_op):
            row = int(batch.row_bases[0])
            col = int(batch.col_bases[0])
            source_values = padded_dist[row:row + s]
            # All-absent rows fold to the identity, so presenting every
            # row is equivalent to presenting only the active ones.
            out, tile_events = engine.addop_tile(batch.dense[0],
                                                 source_values,
                                                 all_rows, absent,
                                                 reduce_op=reduce_op)
            accum[col:col + s] = fold(accum[col:col + s], out)
            events.merge(tile_events)
            events.edges += batch.edges
            events.subgraphs += batch.subgraph_starts
    events.addop = True
    return events


def run_addop_iteration(
    streamer: SubgraphStreamer,
    engine: GraphEngine,
    program: VertexProgram,
    graph: Graph,
    properties: np.ndarray,
    coefficients: np.ndarray,
    frontier: Optional[np.ndarray] = None,
    batch_size: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, IterationEvents]:
    """Execute one parallel-add-op iteration functionally.

    Returns ``(new_properties, changed_mask, events)``; the changed
    mask is the next iteration's frontier (the paper's active
    indicators).
    """
    cfg = streamer.config
    n = graph.num_vertices
    absent = float(program.reduce_identity)
    padded = streamer.ordering.padded_vertices

    padded_dist = np.full(padded + cfg.tile_cols, absent)
    padded_dist[:n] = properties
    accum = np.full(padded + cfg.tile_cols, absent)
    accum[:n] = properties

    events = run_addop_scan(streamer, engine, padded_dist, accum,
                            coefficients, absent, frontier=frontier,
                            batch_size=batch_size,
                            reduce_op=program.reduce_op)

    new_properties = accum[:n]
    changed = program.improved(new_properties, properties)
    events.apply_ops += int(changed.sum())
    events.scanned_edges = graph.num_edges
    events.addop = True
    return new_properties, changed, events
