"""Parallel-add-op mapping (Section 4.2): SSSP/BFS relaxations.

One streaming-apply iteration: only subgraphs containing edges from
*active* sources are loaded; each active source row is presented in its
own time slot (one-hot wordline plus the bias row carrying
``dist(u)``), and the sALU's comparator array folds candidates into the
destination register with ``min`` (Figure 16 c3).  The iteration is
synchronous across subgraphs — destination updates become visible as
source values in the *next* iteration, exactly the semantics of the
frontier-driven Bellman-Ford reference.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.vertex_program import VertexProgram
from repro.core.cost import IterationEvents
from repro.core.engine import GraphEngine
from repro.core.streaming import SubgraphStreamer
from repro.graph.graph import Graph

__all__ = ["run_addop_iteration"]


def run_addop_iteration(
    streamer: SubgraphStreamer,
    engine: GraphEngine,
    program: VertexProgram,
    graph: Graph,
    properties: np.ndarray,
    coefficients: np.ndarray,
    frontier: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, IterationEvents]:
    """Execute one parallel-add-op iteration functionally.

    Returns ``(new_properties, changed_mask, events)``; the changed
    mask is the next iteration's frontier (the paper's active
    indicators).
    """
    cfg = streamer.config
    s = cfg.tile_rows
    w = cfg.tile_cols
    n = graph.num_vertices
    absent = float(program.reduce_identity)
    padded = streamer.ordering.padded_vertices

    padded_dist = np.full(padded + w, absent)
    padded_dist[:n] = properties
    accum = np.full(padded + w, absent)
    accum[:n] = properties

    events = IterationEvents()
    for tile in streamer.iter_subgraphs(frontier):
        dense = np.full((s, w), absent)
        dense[tile.rows_local, tile.cols_local] = coefficients[tile.edge_ids]
        source_values = padded_dist[tile.row_base:tile.row_base + s]
        active_rows = np.unique(tile.rows_local)
        out, tile_events = engine.addop_tile(dense, source_values,
                                             active_rows, absent)
        span = slice(tile.col_base, tile.col_base + w)
        accum[span] = np.minimum(accum[span], out)
        events.merge(tile_events)
        events.edges += tile.nnz
        events.subgraphs += 1

    new_properties = accum[:n]
    changed = new_properties < properties
    events.apply_ops += int(changed.sum())
    events.scanned_edges = graph.num_edges
    events.addop = True
    return new_properties, changed, events
