"""Shared partitioned-execution layer for non-single-node deployments.

The paper's two scaling deployments split the adjacency matrix along
destination ranges and run the same streaming-apply work per piece:

* **out-of-core** (Section 3.4 / Figure 9): one node consumes the
  preprocessed blocks sequentially from disk — partition times *sum*
  and events of one pass merge into a single charge;
* **multi-node** (Section 3.1): each stripe of block columns lives on
  its own node — partitions run concurrently, so per-iteration time is
  the *max* over nodes plus a property exchange.

This module is the machinery both runners drive:

* :class:`DeploymentSpec` — the serializable deployment description
  jobs carry (participates in the runtime's content keys);
* :class:`GraphPartition` + :func:`partition_by_destination` — one
  destination range's subgraph with its own streaming scheduler;
* :func:`partition_pass_events` / :func:`accumulate_pass_events` — the
  analytic event path, per partition and folded per pass (pass-level
  merging reproduces the single-node event record exactly: subgraph
  ids are globally unique, destinations are deduplicated across
  partitions, and inactive partitions still charge their sequential
  scan while globally-inactive passes charge nothing);
* :class:`PartitionedFunctionalRunner` — the controller's functional
  iteration loop over partition scans.  Partitions stream their tiles
  in the same global order a whole-graph streamer produces, into the
  same shared engine and accumulator, so partitioned functional runs
  are bit-identical to single-node functional runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.core.addop_mapper import run_addop_scan
from repro.core.config import GraphRConfig
from repro.core.cost import IterationEvents
from repro.core.engine import GraphEngine
from repro.core.mac_mapper import run_mac_scan
from repro.core.streaming import SubgraphStreamer
from repro.errors import ConfigError, MappingError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph
from repro.obs import metrics, tracing
from repro.reram.fixed_point import FixedPointFormat

__all__ = [
    "DEPLOYMENT_KINDS",
    "DeploymentSpec",
    "GraphPartition",
    "PartitionedFunctionalRunner",
    "accumulate_pass_events",
    "engine_for_program",
    "merge_events_apply_aside",
    "partition_by_destination",
    "partition_pass_events",
]

#: Deployment scenarios a job may request.
DEPLOYMENT_KINDS: Tuple[str, ...] = ("single", "out-of-core", "multi-node")


@dataclass(frozen=True)
class DeploymentSpec:
    """How a GraphR job is deployed (Section 3.1's three settings).

    ``single`` is the in-memory node every plain run uses;
    ``out-of-core`` streams preprocessed blocks from disk on one node;
    ``multi-node`` splits destination stripes across ``num_nodes``
    nodes linked at ``link_bandwidth_bps`` / ``link_latency_s``.  The
    node-architecture knobs stay in :class:`GraphRConfig` (including
    the out-of-core block size ``B``).
    """

    kind: str = "single"
    num_nodes: int = 4
    link_bandwidth_bps: float = 16e9
    link_latency_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.kind not in DEPLOYMENT_KINDS:
            raise ConfigError(
                f"unknown deployment {self.kind!r}; available: "
                f"{', '.join(DEPLOYMENT_KINDS)}"
            )
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be positive")
        if self.link_bandwidth_bps <= 0 or self.link_latency_s < 0:
            raise ConfigError("invalid link parameters")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (cluster fields only when they
        matter, so equivalent specs serialize identically)."""
        payload: Dict[str, object] = {"kind": self.kind}
        if self.kind == "multi-node":
            payload["num_nodes"] = self.num_nodes
            payload["link_bandwidth_bps"] = self.link_bandwidth_bps
            payload["link_latency_s"] = self.link_latency_s
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DeploymentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a job-file
        entry); unknown fields raise :class:`ConfigError`."""
        known = {"kind", "num_nodes", "link_bandwidth_bps",
                 "link_latency_s"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown deployment field(s): "
                f"{', '.join(sorted(unknown))}")
        return cls(**dict(payload))


@dataclass
class GraphPartition:
    """One destination range's edges, with its streaming schedule.

    ``graph`` keeps global vertex ids (frontier masks and property
    registers line up across partitions); ``col_lo``/``col_hi`` is the
    destination range the partition owns for apply accounting.
    """

    index: int
    graph: Graph
    streamer: SubgraphStreamer
    col_lo: int = 0
    col_hi: int = 0


def partition_by_destination(graph: Graph,
                             bounds: Sequence[Tuple[int, int]],
                             config: GraphRConfig) -> List[GraphPartition]:
    """Split a graph into destination-range partitions (stripes).

    Each partition holds every edge whose destination falls in its
    ``[lo, hi)`` range — column partitioning, so every node reduces its
    own vertices and no cross-partition reduction is needed.
    """
    adj = graph.adjacency
    src = np.asarray(adj.rows)
    dst = np.asarray(adj.cols)
    values = np.asarray(adj.values)
    partitions = []
    for index, (lo, hi) in enumerate(bounds):
        mask = (dst >= lo) & (dst < hi)
        sub = COOMatrix(adj.shape, src[mask], dst[mask], values[mask])
        piece = Graph(adjacency=sub, name=f"{graph.name}[{lo}:{hi}]",
                      weighted=graph.weighted,
                      scale_factor=graph.scale_factor)
        partitions.append(GraphPartition(
            index=index, graph=piece,
            streamer=SubgraphStreamer(piece, config),
            col_lo=int(lo), col_hi=int(hi)))
    return partitions


# ----------------------------------------------------------------------
# Analytic event path
# ----------------------------------------------------------------------
def partition_pass_events(partition: GraphPartition,
                          pattern: MappingPattern,
                          frontier: Optional[np.ndarray],
                          work_factor: int,
                          config: GraphRConfig) -> IterationEvents:
    """One partition's event record for one pass.

    A partition with no active edge still streams past the controller
    (GraphR's disk/memory accesses are strictly sequential), so its
    ``scanned_edges`` are charged unless the selective-block-scan
    optimisation is on.  That matches the single-node streamer, which
    charges the full sequential scan whenever the pass has *any*
    active edge — but a pass with **zero** active edges anywhere
    (a frontier of sinks) charges nothing in the single-node analytic
    path, so callers must drop the whole pass's partition events when
    no partition saw an active edge (the in-memory early return).
    """
    events = partition.streamer.iteration_events(
        pattern, frontier=frontier, work_factor=work_factor)
    if frontier is not None and events.edges == 0 \
            and not config.selective_block_scan:
        events.scanned_edges = partition.graph.num_edges
    return events


def merge_events_apply_aside(merged: IterationEvents,
                             events: IterationEvents) -> None:
    """Fold partition events into a pass record, apply aside.

    ``apply_ops`` is a pass-level quantity (distinct destinations, or
    one apply per vertex in functional mode) — it never sums across
    partitions, so the partition's own count is preserved for
    node-level charging while the pass record gets it separately.
    """
    apply_ops = events.apply_ops
    events.apply_ops = 0
    merged.merge(events)
    events.apply_ops = apply_ops


def accumulate_pass_events(merged: IterationEvents,
                           touched: np.ndarray,
                           partition: GraphPartition,
                           events: IterationEvents,
                           frontier: Optional[np.ndarray]) -> None:
    """Fold one partition's events into a pass-level record.

    Block/subgraph/tile counts are globally unique per partition so
    they sum exactly; ``apply_ops`` (distinct destinations touched)
    must be deduplicated across partitions of the same block column,
    so destinations are marked in the shared ``touched`` mask and the
    caller sets ``merged.apply_ops`` from it once the pass ends.
    Incremental by design: out-of-core providers release each
    partition before loading the next.
    """
    merge_events_apply_aside(merged, events)
    dst = np.asarray(partition.graph.adjacency.cols)
    if frontier is None:
        touched[dst] = True
    else:
        active = frontier[np.asarray(partition.graph.adjacency.rows)]
        touched[dst[active]] = True


# ----------------------------------------------------------------------
# Functional path
# ----------------------------------------------------------------------
def engine_for_program(config: GraphRConfig,
                       program: VertexProgram) -> GraphEngine:
    """The functional engine with the program's fixed-point formats.

    Probability-style MAC programs get maximal fractional precision;
    general MAC programs need integer range for weighted coefficients;
    add-op programs store integer-valued addends.
    """
    if program.pattern is MappingPattern.PARALLEL_MAC:
        frac = (config.data_bits - 1
                if program.unit_interval_coefficients
                else config.frac_bits)
        fmt = FixedPointFormat(config.data_bits, frac)
    else:
        fmt = FixedPointFormat(config.data_bits, 0)
    return GraphEngine(config, coeff_fmt=fmt, input_fmt=fmt)


class PartitionedFunctionalRunner:
    """The controller's functional loop, executed partition by
    partition.

    Parameters
    ----------
    config / program:
        As for :class:`~repro.core.controller.Controller`.
    num_vertices:
        Global vertex count (partitions keep global ids).
    graph_view:
        Graph handed to the program hooks (``initial_properties``,
        ``source_input``, ``apply``).  Deployments that cannot hold the
        edge list pass an edgeless stand-in — the supported programs
        only consult the vertex count.
    out_degrees:
        Global out-degree vector (drives
        :meth:`~repro.algorithms.vertex_program.VertexProgram.edge_coefficients`).
    partitions:
        Zero-argument callable yielding the pass's
        :class:`GraphPartition` sequence in global streaming order; a
        fresh call per pass lets out-of-core providers stream from
        disk without retaining blocks.
    persistent_partitions:
        True when ``partitions`` returns the same objects every pass
        (in-memory deployments): per-partition coefficients are then
        computed once and cached.  Must stay False for streaming
        providers — caching would accumulate O(graph) coefficient
        arrays.
    """

    def __init__(self, config: GraphRConfig, program: VertexProgram,
                 num_vertices: int, graph_view: Graph,
                 out_degrees: np.ndarray,
                 partitions: Callable[[], Iterable[GraphPartition]],
                 engine: Optional[GraphEngine] = None,
                 persistent_partitions: bool = False) -> None:
        if program.name == "cf":
            raise MappingError(
                "collaborative filtering has matrix-valued properties; "
                "use analytic mode"
            )
        self.config = config
        self.program = program
        self.num_vertices = int(num_vertices)
        self.graph_view = graph_view
        self.out_degrees = np.asarray(out_degrees)
        self.partitions = partitions
        self.engine = engine or engine_for_program(config, program)
        self._coeff_cache: Optional[Dict[int, np.ndarray]] = \
            {} if persistent_partitions else None
        block = config.effective_block_size(self.num_vertices)
        # Same padding every partition's streamer derives.
        self._padded = -(-self.num_vertices // block) * block

    # ------------------------------------------------------------------
    def _coefficients(self, partition: GraphPartition) -> np.ndarray:
        if self._coeff_cache is not None \
                and partition.index in self._coeff_cache:
            return self._coeff_cache[partition.index]
        adj = partition.graph.adjacency
        coefficients = self.program.edge_coefficients(
            np.asarray(adj.rows), np.asarray(adj.values),
            self.out_degrees)
        if self._coeff_cache is not None:
            self._coeff_cache[partition.index] = coefficients
        return coefficients

    def _mac_pass(self, properties: np.ndarray):
        cfg = self.config
        n = self.num_vertices
        padded_inputs = np.zeros(self._padded + cfg.tile_cols)
        padded_inputs[:n] = self.program.source_input(properties,
                                                      self.graph_view)
        accum = np.zeros(self._padded + cfg.tile_cols)
        per_partition: List[IterationEvents] = []
        merged = IterationEvents()
        # Partitions are consumed one at a time and released — only
        # their (small) event records survive the loop.
        for partition in self.partitions():
            events = run_mac_scan(
                partition.streamer, self.engine, padded_inputs, accum,
                self._coefficients(partition), frontier=None,
                batch_size=cfg.functional_batch_size)
            events.scanned_edges = partition.graph.num_edges
            events.apply_ops = partition.col_hi - partition.col_lo
            per_partition.append(events)
            merge_events_apply_aside(merged, events)
        new_properties = self.program.apply(accum[:n], properties,
                                            self.graph_view)
        # The single-node mapper applies every vertex once per pass.
        merged.apply_ops = n
        changed = ~np.isclose(new_properties, properties,
                              rtol=0.0, atol=cfg.tolerance)
        return new_properties, changed, merged, per_partition

    def _addop_pass(self, properties: np.ndarray,
                    frontier: Optional[np.ndarray]):
        cfg = self.config
        n = self.num_vertices
        absent = float(self.program.reduce_identity)
        reduce_op = self.program.reduce_op
        padded_dist = np.full(self._padded + cfg.tile_cols, absent)
        padded_dist[:n] = properties
        accum = np.full(self._padded + cfg.tile_cols, absent)
        accum[:n] = properties
        per_partition: List[IterationEvents] = []
        spans: List[Tuple[int, int]] = []
        merged = IterationEvents()
        for partition in self.partitions():
            events = run_addop_scan(
                partition.streamer, self.engine, padded_dist, accum,
                self._coefficients(partition), absent,
                frontier=frontier,
                batch_size=cfg.functional_batch_size,
                reduce_op=reduce_op)
            events.scanned_edges = partition.graph.num_edges
            per_partition.append(events)
            spans.append((partition.col_lo, partition.col_hi))
            merge_events_apply_aside(merged, events)
        new_properties = accum[:n]
        changed = self.program.improved(new_properties, properties)
        for (lo, hi), events in zip(spans, per_partition):
            events.apply_ops = int(changed[lo:hi].sum())
        merged.apply_ops = int(changed.sum())
        merged.addop = True
        return new_properties, changed, merged, per_partition

    # ------------------------------------------------------------------
    def run(self, charge: Callable[[IterationEvents,
                                    List[IterationEvents]], float],
            max_iterations: Optional[int] = None,
            **program_kwargs) -> Tuple[AlgorithmResult, float]:
        """Run the functional loop; ``charge(merged, per_partition)``
        prices each pass (sequential deployments charge the merged
        record once, parallel ones max over partitions).

        Returns ``(result, seconds)`` where seconds excludes setup.
        """
        program = self.program
        n = self.num_vertices
        budget = (self.config.max_iterations if max_iterations is None
                  else max_iterations)
        properties = program.initial_properties(self.graph_view,
                                                **program_kwargs)
        frontier: Optional[np.ndarray] = None
        if program.needs_active_list:
            frontier = properties != program.reduce_identity

        trace = IterationTrace(
            frontiers=[] if program.needs_active_list else None)
        seconds = 0.0
        converged = False
        iterations = 0
        for iteration in range(1, budget + 1):
            if program.needs_active_list and not frontier.any():
                converged = True
                break
            iterations = iteration
            with tracing.span("iteration", index=iteration) as it_span:
                with tracing.span("sweep"):
                    if program.pattern is MappingPattern.PARALLEL_MAC:
                        new_props, changed, merged, per_partition = \
                            self._mac_pass(properties)
                    else:
                        new_props, changed, merged, per_partition = \
                            self._addop_pass(properties, frontier)
                with tracing.span("merge"):
                    seconds += charge(merged, per_partition)
                    trace.record(
                        vertices=(int(frontier.sum())
                                  if frontier is not None else n),
                        edges=merged.edges,
                        frontier=(frontier if program.needs_active_list
                                  else None),
                    )
                if it_span is not None:
                    it_span.annotate(active_edges=merged.edges)
                metrics.get_registry().counter(
                    "repro_active_edges_total",
                    "Active edges processed across all iterations"
                ).inc(merged.edges)
            done = program.has_converged(properties, new_props, iteration)
            properties = new_props
            if program.needs_active_list:
                frontier = changed
                done = not changed.any()
            if done:
                converged = True
                break
        result = AlgorithmResult(
            algorithm=program.name,
            values=properties,
            iterations=iterations,
            converged=converged,
            trace=trace,
        )
        return result, seconds
