"""Multi-node GraphR (the paper's other deployment setting).

Section 3.1: "multi-node: one can connect different GraphR nodes ...
to process large graphs.  In this case, each block is processed by a
GraphR node.  Data movements happen between GraphR nodes."  The paper
evaluates only the out-of-core single node and leaves multi-node as
future work; this module provides the extension on top of the shared
partitioned-execution layer.

Model
-----
The vertex space is split into ``num_nodes`` contiguous destination
stripes; node ``k`` owns every edge whose destination falls in stripe
``k`` (column partitioning, so each node reduces its own vertices and
no cross-node reduction is needed).  When the node configuration sets
an explicit block size, stripe boundaries snap to block columns — each
node then owns whole disk blocks, which is also what makes cluster
event totals match a single node's exactly.  Per iteration:

* every node runs streaming-apply over its stripe (its own streamer +
  the shared cost model) — nodes work in parallel, so the compute time
  is the **max** over nodes;
* afterwards the updated vertex properties are exchanged: every node
  broadcasts its stripe to the others over the inter-node links
  (all-gather), charged at ``link_bandwidth_bps`` with a per-message
  latency.

Both execution modes run: analytic (reference values + event-counted
cost, as before) and functional (every stripe's tiles through the
shared device-model engine — stripes own disjoint destination ranges,
so the cluster's values are bit-identical to a single-node functional
run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.registry import (PROGRAM_INIT_KEYS,
                                       resolve_program,
                                       run_reference)
from repro.algorithms.vertex_program import AlgorithmResult
from repro.core.accelerator import choose_execution_mode
from repro.core.config import GraphRConfig
from repro.core.cost import CostModel, IterationEvents
from repro.core.partitioned import (
    PartitionedFunctionalRunner,
    partition_by_destination,
    partition_pass_events,
)
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.hw.stats import RunStats
from repro.obs import tracing

__all__ = ["MultiNodeConfig", "MultiNodeGraphR"]

#: Bytes per exchanged vertex property (16-bit value + id packing).
PROPERTY_BYTES = 4


@dataclass(frozen=True)
class MultiNodeConfig:
    """Cluster parameters for a multi-node GraphR deployment.

    ``link_bandwidth_bps`` models the point-to-point inter-node links
    (PCIe/NVLink-class by default); ``link_latency_s`` is charged once
    per exchange round.
    """

    num_nodes: int = 4
    node: GraphRConfig = None  # type: ignore[assignment]
    link_bandwidth_bps: float = 16e9
    link_latency_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.link_bandwidth_bps <= 0 or self.link_latency_s < 0:
            raise ConfigError("invalid link parameters")
        if self.node is None:
            object.__setattr__(self, "node",
                               GraphRConfig(mode="analytic"))


class MultiNodeGraphR:
    """A cluster of GraphR nodes processing one graph cooperatively."""

    def __init__(self, config: MultiNodeConfig | None = None) -> None:
        self.config = config or MultiNodeConfig()

    # ------------------------------------------------------------------
    def _stripes(self, graph: Graph) -> List[Tuple[int, int]]:
        """Contiguous destination ranges, one per node.

        With an explicit node ``block_size`` (and at least one block
        column per node) bounds snap to block columns; otherwise the
        vertex space splits evenly.
        """
        n = graph.num_vertices
        k = min(self.config.num_nodes, max(1, n))
        node_cfg = self.config.node
        if node_cfg.block_size is not None:
            block = node_cfg.effective_block_size(n)
            side = -(-n // block)
            if side >= k:
                cuts = np.linspace(0, side, k + 1).astype(int)
                bounds = np.minimum(cuts * block, n)
                return [(int(bounds[i]), int(bounds[i + 1]))
                        for i in range(k)]
        bounds = np.linspace(0, n, k + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(k)]

    def _node_graph(self, graph: Graph, stripe: Tuple[int, int]) -> Graph:
        """Subgraph of edges whose destination lies in the stripe
        (kept for diagnostics; vertex ids stay global so the
        streamer's frontier masks line up across nodes)."""
        return partition_by_destination(
            graph, [stripe], self.config.node)[0].graph

    # ------------------------------------------------------------------
    def run(self, algorithm: str, graph: Graph,
            mode: Optional[str] = None,
            **kwargs) -> Tuple[AlgorithmResult, RunStats]:
        """Execute ``algorithm`` across the cluster.

        Returns the result and the cluster-level stats: per-iteration
        time is ``max`` over nodes plus the property exchange; energy
        sums every node's ledger plus link energy.
        """
        program, reference_kwargs = resolve_program(algorithm, kwargs)
        node_cfg = self.config.node
        if not node_cfg.skip_empty_subgraphs:
            # Per-stripe streamers each report the whole grid's slot
            # count; summing over nodes would overbill the ablation.
            raise ConfigError(
                "the skip_empty_subgraphs=False ablation is supported "
                "on the in-memory single node only"
            )
        stats = RunStats(platform="graphr-multinode",
                         algorithm=program.name, dataset=graph.name)

        partitions = partition_by_destination(graph,
                                              self._stripes(graph),
                                              node_cfg)
        cost = CostModel(node_cfg)

        exchange_bytes = graph.num_vertices * PROPERTY_BYTES
        exchange_s = (exchange_bytes / self.config.link_bandwidth_bps
                      + self.config.link_latency_s)

        def charge_round(per_node: List[IterationEvents]) -> float:
            """One cluster iteration: slowest node + all-gather."""
            node_times = [cost.charge_iteration(events, stats.energy,
                                                stats.latency)
                          for events in per_node]
            stats.latency.add("exchange", exchange_s)
            stats.energy.charge_joules(
                "internode_links",
                exchange_bytes * len(partitions) * 10e-12)  # ~10 pJ/byte
            return max(node_times) + exchange_s

        chosen = mode or node_cfg.mode
        if chosen == "auto":
            nonempty = sum(p.streamer.num_nonempty_subgraphs
                           for p in partitions)
            chosen = choose_execution_mode(node_cfg, program, nonempty,
                                           kwargs.get("max_iterations"))

        seconds = node_cfg.setup_overhead_s
        if chosen == "functional":
            runner = PartitionedFunctionalRunner(
                node_cfg, program, graph.num_vertices,
                graph_view=graph, out_degrees=graph.out_degrees(),
                partitions=lambda: partitions,
            )
            program_kwargs = {k: v for k, v in kwargs.items()
                              if k in PROGRAM_INIT_KEYS}
            result, loop_seconds = runner.run(
                lambda merged, per_node: charge_round(per_node),
                max_iterations=kwargs.get("max_iterations"),
                **program_kwargs)
            seconds += loop_seconds
        else:
            with tracing.span("reference", algorithm=program.name):
                result = run_reference(program.name, graph,
                                       **reference_kwargs)
            work_factor = program.features \
                if program.name == "cf" else 1
            frontiers = (result.trace.frontiers
                         if program.needs_active_list
                         and result.trace.frontiers else None)
            iterations = max(1, result.iterations)
            for it in range(iterations):
                frontier = (frontiers[it] if frontiers is not None
                            else None)
                with tracing.span("iteration", index=it + 1):
                    with tracing.span("sweep"):
                        per_node = [partition_pass_events(
                            p, program.pattern, frontier, work_factor,
                            node_cfg) for p in partitions]
                    if frontier is not None \
                            and not any(ev.edges for ev in per_node):
                        # No node sees an active edge: charge the pass
                        # like the single-node early return does.
                        per_node = [IterationEvents()
                                    for _ in per_node]
                    with tracing.span("merge"):
                        seconds += charge_round(per_node)

        stats.seconds = seconds
        stats.iterations = result.iterations
        stats.extra["mode"] = f"multinode-{chosen}"
        stats.extra["num_nodes"] = len(partitions)
        stats.extra["stripe_edges"] = [p.graph.num_edges
                                       for p in partitions]
        return result, stats

    def __repr__(self) -> str:
        return (f"MultiNodeGraphR(nodes={self.config.num_nodes}, "
                f"link={self.config.link_bandwidth_bps / 1e9:.0f} GB/s)")
