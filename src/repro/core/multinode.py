"""Multi-node GraphR (the paper's other deployment setting).

Section 3.1: "multi-node: one can connect different GraphR nodes ...
to process large graphs.  In this case, each block is processed by a
GraphR node.  Data movements happen between GraphR nodes."  The paper
evaluates only the out-of-core single node and leaves multi-node as
future work; this module provides the extension.

Model
-----
The vertex space is split into ``num_nodes`` contiguous destination
stripes; node ``k`` owns every edge whose destination falls in stripe
``k`` (column partitioning, so each node reduces its own vertices and
no cross-node reduction is needed).  Per iteration:

* every node runs streaming-apply over its stripe (its own streamer +
  the shared cost model) — nodes work in parallel, so the compute time
  is the **max** over nodes;
* afterwards the updated vertex properties are exchanged: every node
  broadcasts its stripe to the others over the inter-node links
  (all-gather), charged at ``link_bandwidth_bps`` with a per-message
  latency.

Results are computed once by the exact reference (the partitioning is
value-preserving by construction), exactly like single-node analytic
mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.algorithms.registry import get_program, run_reference
from repro.algorithms.vertex_program import AlgorithmResult, VertexProgram
from repro.core.config import GraphRConfig
from repro.core.cost import CostModel
from repro.core.streaming import SubgraphStreamer
from repro.errors import ConfigError
from repro.graph.coo import COOMatrix
from repro.graph.graph import Graph
from repro.hw.stats import RunStats

__all__ = ["MultiNodeConfig", "MultiNodeGraphR"]

#: Bytes per exchanged vertex property (16-bit value + id packing).
PROPERTY_BYTES = 4


@dataclass(frozen=True)
class MultiNodeConfig:
    """Cluster parameters for a multi-node GraphR deployment.

    ``link_bandwidth_bps`` models the point-to-point inter-node links
    (PCIe/NVLink-class by default); ``link_latency_s`` is charged once
    per exchange round.
    """

    num_nodes: int = 4
    node: GraphRConfig = None  # type: ignore[assignment]
    link_bandwidth_bps: float = 16e9
    link_latency_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.link_bandwidth_bps <= 0 or self.link_latency_s < 0:
            raise ConfigError("invalid link parameters")
        if self.node is None:
            object.__setattr__(self, "node",
                               GraphRConfig(mode="analytic"))


class MultiNodeGraphR:
    """A cluster of GraphR nodes processing one graph cooperatively."""

    def __init__(self, config: MultiNodeConfig | None = None) -> None:
        self.config = config or MultiNodeConfig()

    # ------------------------------------------------------------------
    def _stripes(self, graph: Graph) -> List[Tuple[int, int]]:
        """Contiguous destination ranges, one per node."""
        n = graph.num_vertices
        k = min(self.config.num_nodes, max(1, n))
        bounds = np.linspace(0, n, k + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(k)]

    def _node_graph(self, graph: Graph, stripe: Tuple[int, int]) -> Graph:
        """Subgraph of edges whose destination lies in the stripe.

        Vertex ids are kept global so the streamer's frontier masks
        line up across nodes.
        """
        lo, hi = stripe
        adj = graph.adjacency
        dst = np.asarray(adj.cols)
        mask = (dst >= lo) & (dst < hi)
        sub = COOMatrix(adj.shape, np.asarray(adj.rows)[mask],
                        dst[mask], np.asarray(adj.values)[mask])
        return Graph(adjacency=sub, name=f"{graph.name}[{lo}:{hi}]",
                     weighted=graph.weighted,
                     scale_factor=graph.scale_factor)

    # ------------------------------------------------------------------
    def run(self, algorithm: str, graph: Graph,
            **kwargs) -> Tuple[AlgorithmResult, RunStats]:
        """Execute ``algorithm`` across the cluster (analytic mode).

        Returns the reference-exact result and the cluster-level stats:
        per-iteration time is ``max`` over nodes plus the property
        exchange; energy sums every node's ledger plus link energy.
        """
        program = get_program(algorithm)
        result = run_reference(algorithm, graph, **kwargs)
        stats = RunStats(platform="graphr-multinode", algorithm=algorithm,
                         dataset=graph.name, iterations=result.iterations)

        stripes = self._stripes(graph)
        node_cfg = self.config.node
        cost = CostModel(node_cfg)
        streamers = [SubgraphStreamer(self._node_graph(graph, s), node_cfg)
                     for s in stripes]

        frontiers = (result.trace.frontiers
                     if program.needs_active_list
                     and result.trace.frontiers else None)
        iterations = max(1, result.iterations)

        exchange_bytes = graph.num_vertices * PROPERTY_BYTES
        exchange_s = (exchange_bytes / self.config.link_bandwidth_bps
                      + self.config.link_latency_s)

        work_factor = getattr(program, "features", 1) \
            if algorithm == "cf" else 1
        seconds = node_cfg.setup_overhead_s
        for it in range(iterations):
            frontier = frontiers[it] if frontiers is not None else None
            node_times = []
            for streamer in streamers:
                events = streamer.iteration_events(
                    program.pattern, frontier=frontier,
                    work_factor=work_factor)
                node_seconds = cost.charge_iteration(
                    events, stats.energy, stats.latency)
                node_times.append(node_seconds)
            slowest = max(node_times)
            seconds += slowest + exchange_s
            stats.latency.add("exchange", exchange_s)
            stats.energy.charge_joules(
                "internode_links",
                exchange_bytes * len(stripes) * 10e-12)  # ~10 pJ/byte

        stats.seconds = seconds
        stats.extra["mode"] = "multinode-analytic"
        stats.extra["num_nodes"] = len(stripes)
        stats.extra["stripe_edges"] = [s.graph.num_edges
                                       for s in streamers]
        return result, stats

    def __repr__(self) -> str:
        return (f"MultiNodeGraphR(nodes={self.config.num_nodes}, "
                f"link={self.config.link_bandwidth_bps / 1e9:.0f} GB/s)")
