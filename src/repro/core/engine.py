"""Functional graph engine (Figure 8): tile-level crossbar math.

The engine executes one subgraph tile's worth of analog work with the
same arithmetic the device chain (driver -> bit-sliced crossbars ->
S/H -> ADC -> shift-add) produces, but vectorised at tile granularity:
values are quantised through the configured fixed-point format, the
dot products are computed exactly on the quantised codes, and optional
Gaussian noise models analog read disturbance.  Unit tests assert this
shortcut is bit-equivalent to composing the individual device models.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.config import GraphRConfig
from repro.core.cost import IterationEvents
from repro.errors import DeviceError
from repro.reram.fixed_point import FixedPointFormat
from repro.reram.variation import VariationModel

__all__ = ["GraphEngine"]


class GraphEngine:
    """Tile-level functional model of a GE array.

    Parameters
    ----------
    config:
        Node configuration (crossbar size, slices, noise).
    coeff_fmt / input_fmt:
        Fixed-point formats for stored coefficients and driven inputs.
    """

    def __init__(self, config: GraphRConfig,
                 coeff_fmt: Optional[FixedPointFormat] = None,
                 input_fmt: Optional[FixedPointFormat] = None) -> None:
        self.config = config
        self.coeff_fmt = coeff_fmt or FixedPointFormat(
            config.data_bits, config.data_bits - 1)
        self.input_fmt = input_fmt or FixedPointFormat(
            config.data_bits, config.data_bits - 1)
        self._rng = np.random.default_rng(config.seed)
        if config.programming_sigma > 0 or config.ir_drop_alpha > 0:
            # Variation is applied to the composed coefficient codes —
            # a first-order stand-in for per-slice cell variation.
            self._variation: Optional[VariationModel] = VariationModel(
                programming_sigma=config.programming_sigma,
                ir_drop_alpha=config.ir_drop_alpha,
                seed=config.seed,
            )
        else:
            self._variation = None

    # ------------------------------------------------------------------
    def mac_tile(self, dense_tile: np.ndarray,
                 inputs: np.ndarray) -> Tuple[np.ndarray, IterationEvents]:
        """Parallel-MAC presentation: ``out = inputs @ tile``.

        ``dense_tile`` is ``(S, W)`` coefficients, ``inputs`` length S.
        Both are quantised to their fixed-point formats; the product is
        exact on the quantised codes (the bit-sliced shift-add chain
        reconstructs full precision).
        """
        tile = np.asarray(dense_tile, dtype=np.float64)
        x = np.asarray(inputs, dtype=np.float64)
        if tile.ndim != 2 or tile.shape[0] != x.shape[0]:
            raise DeviceError(
                f"tile {tile.shape} incompatible with inputs {x.shape}"
            )
        coeff_codes = self.coeff_fmt.encode(tile)
        input_codes = self.input_fmt.encode(x)
        effective = coeff_codes.astype(np.float64)
        if self._variation is not None:
            effective = self._variation.effective_levels(effective)
        raw = input_codes.astype(np.float64) @ effective
        out = raw * self.coeff_fmt.scale * self.input_fmt.scale
        out = self._maybe_noise(out)
        events = self._tile_events(coeff_codes, presentations_per_tile=1)
        return out, events

    def addop_tile(self, dense_weights: np.ndarray,
                   source_values: np.ndarray,
                   active_rows: np.ndarray,
                   absent_value: float) -> Tuple[np.ndarray, IterationEvents]:
        """Parallel-add-op presentations (Figure 16 c3).

        For every active row ``r``, compute ``w[r, :] + source_values[r]``
        with absent cells pinned at ``absent_value`` (the reserved cell
        maximum ``M``), then fold rows with elementwise minimum — the
        comparator array the sALU provides.  Returns the folded
        candidate vector (length W).
        """
        w = np.asarray(dense_weights, dtype=np.float64)
        src = np.asarray(source_values, dtype=np.float64)
        active = np.asarray(active_rows, dtype=np.int64)
        if w.ndim != 2 or src.shape != (w.shape[0],):
            raise DeviceError("weights/source shape mismatch")
        if active.size == 0:
            return np.full(w.shape[1], absent_value), IterationEvents()
        if active.min() < 0 or active.max() >= w.shape[0]:
            raise DeviceError("active row out of range")

        candidates = w[active] + src[active, None]
        # Saturating add: anything involving an absent cell stays absent.
        absent = w[active] >= absent_value
        candidates = np.where(absent, absent_value, candidates)
        candidates = np.minimum(candidates, absent_value)
        out = candidates.min(axis=0)
        out = self._maybe_noise(out, clip_max=absent_value)

        # Mark a cell "stored" when an edge exists (absent cells hold M
        # but belong to the same written rows).
        stored = np.where(w >= absent_value, 0.0, np.maximum(w, 1e-12))
        coeff_codes = (stored > 0).astype(np.int64)
        events = self._tile_events(coeff_codes, presentations_per_tile=0)
        # One presentation per (non-empty crossbar tile, active row) pair:
        # each time slot drives one wordline of the tiles that hold that
        # row's edges.
        s = self.config.crossbar_size
        events.presentations = events.touched_rows
        events.reduce_ops = events.presentations * s
        return out, events

    # ------------------------------------------------------------------
    def _tile_events(self, coeff_codes: np.ndarray,
                     presentations_per_tile: int) -> IterationEvents:
        """Count non-empty S x S crossbar tiles and touched rows."""
        s = self.config.crossbar_size
        rows, cols = coeff_codes.shape
        n_tiles = -(-cols // s)
        padded = np.zeros((rows, n_tiles * s), dtype=bool)
        padded[:, :cols] = coeff_codes != 0
        per_tile = padded.reshape(rows, n_tiles, s)
        row_touched = per_tile.any(axis=2)          # (rows, n_tiles)
        tile_nonempty = row_touched.any(axis=0)     # (n_tiles,)
        tiles = int(tile_nonempty.sum())
        touched = int(row_touched.sum())
        presentations = tiles * presentations_per_tile
        return IterationEvents(
            tiles=tiles,
            touched_rows=touched,
            presentations=presentations,
            reduce_ops=presentations * s,
        )

    def _maybe_noise(self, values: np.ndarray,
                     clip_max: Optional[float] = None) -> np.ndarray:
        """Inject analog read noise when configured."""
        if self.config.noise_sigma <= 0:
            return values
        sigma = self.config.noise_sigma * self.coeff_fmt.scale
        noisy = values + self._rng.normal(0.0, sigma, size=values.shape)
        noisy = np.maximum(noisy, 0.0)
        if clip_max is not None:
            noisy = np.minimum(noisy, clip_max)
        return noisy
