"""Functional graph engine (Figure 8): tile-level crossbar math.

The engine executes subgraph tiles' worth of analog work with the
same arithmetic the device chain (driver -> bit-sliced crossbars ->
S/H -> ADC -> shift-add) produces, but vectorised at tile granularity:
values are quantised through the configured fixed-point format, the
dot products are computed exactly on the quantised codes, and optional
Gaussian noise models analog read disturbance.  Unit tests assert this
shortcut is bit-equivalent to composing the individual device models.

The primitives are *batched*: :meth:`GraphEngine.mac_batch` and
:meth:`GraphEngine.addop_batch` take ``(B, S, W)`` stacks of dense
tiles and contract a whole batch with a single einsum / fold, which is
what lets the functional mode run paper-scale graphs.  The per-tile
entry points (:meth:`mac_tile`, :meth:`addop_tile`) delegate to the
batched kernels with ``B = 1``, so both granularities execute the
exact same arithmetic (einsum reduction order, RNG draw order) and
stay bit-identical.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.core.config import GraphRConfig
from repro.core.cost import IterationEvents
from repro.errors import DeviceError
from repro.obs import metrics
from repro.reram.fixed_point import FixedPointFormat
from repro.reram.variation import VariationModel

__all__ = ["GraphEngine"]


class GraphEngine:
    """Tile-level functional model of a GE array.

    Parameters
    ----------
    config:
        Node configuration (crossbar size, slices, noise).
    coeff_fmt / input_fmt:
        Fixed-point formats for stored coefficients and driven inputs.
    """

    def __init__(self, config: GraphRConfig,
                 coeff_fmt: Optional[FixedPointFormat] = None,
                 input_fmt: Optional[FixedPointFormat] = None) -> None:
        self.config = config
        self.coeff_fmt = coeff_fmt or FixedPointFormat(
            config.data_bits, config.data_bits - 1)
        self.input_fmt = input_fmt or FixedPointFormat(
            config.data_bits, config.data_bits - 1)
        # Read noise and programming variation are physically distinct
        # processes; spawn independent child streams off the one config
        # seed so their draws never correlate.  (Results therefore
        # differ from engines that shared the raw seed between both;
        # this fix adds no config field, so any noisy/variational
        # cached stats keyed on an unchanged config simply regenerate
        # with the decorrelated draws.)
        noise_seq, variation_seq = \
            np.random.SeedSequence(config.seed).spawn(2)
        self._rng = np.random.default_rng(noise_seq)
        if config.programming_sigma > 0 or config.ir_drop_alpha > 0:
            # Variation is applied to the composed coefficient codes —
            # a first-order stand-in for per-slice cell variation.
            self._variation: Optional[VariationModel] = VariationModel(
                programming_sigma=config.programming_sigma,
                ir_drop_alpha=config.ir_drop_alpha,
                seed=variation_seq,
            )
        else:
            self._variation = None

    # ------------------------------------------------------------------
    # Parallel-MAC (Section 4.1)
    # ------------------------------------------------------------------
    def mac_batch(self, dense_tiles: np.ndarray,
                  inputs: np.ndarray) -> Tuple[np.ndarray, IterationEvents]:
        """Parallel-MAC presentations for a stack of tiles.

        ``dense_tiles`` is ``(B, S, W)`` coefficients, ``inputs`` is
        ``(B, S)``; returns the ``(B, W)`` bitline sums.  Both operands
        are quantised to their fixed-point formats; the contraction is
        exact on the quantised codes (the bit-sliced shift-add chain
        reconstructs full precision), done in one einsum for the whole
        batch.
        """
        tiles = np.asarray(dense_tiles, dtype=np.float64)
        x = np.asarray(inputs, dtype=np.float64)
        if tiles.ndim != 3 or x.shape != tiles.shape[:2]:
            raise DeviceError(
                f"tile batch {tiles.shape} incompatible with inputs "
                f"{x.shape}"
            )
        observing = metrics.enabled()
        t0 = time.perf_counter() if observing else 0.0
        coeff_codes = self.coeff_fmt.encode(tiles)
        input_codes = self.input_fmt.encode(x)
        effective = coeff_codes.astype(np.float64)
        if self._variation is not None:
            effective = self._variation.effective_levels_batch(effective)
        raw = np.einsum("bs,bsw->bw", input_codes.astype(np.float64),
                        effective)
        out = raw * self.coeff_fmt.scale * self.input_fmt.scale
        out = self._maybe_noise(out)
        events = self._batch_events(coeff_codes != 0,
                                    presentations_per_tile=1)
        if observing:
            registry = metrics.get_registry()
            registry.counter(
                "repro_engine_mac_batches_total",
                "Batched parallel-MAC contractions executed").inc()
            registry.counter(
                "repro_engine_tiles_total",
                "Dense tiles pushed through the functional engine").inc(
                    tiles.shape[0])
            registry.counter(
                "repro_engine_einsum_seconds_total",
                "Host seconds inside the functional tile kernels").inc(
                    time.perf_counter() - t0)
        return out, events

    def mac_tile(self, dense_tile: np.ndarray,
                 inputs: np.ndarray) -> Tuple[np.ndarray, IterationEvents]:
        """Single-tile parallel-MAC presentation: ``out = inputs @ tile``.

        ``dense_tile`` is ``(S, W)`` coefficients, ``inputs`` length S.
        Delegates to :meth:`mac_batch` with a batch of one.
        """
        tile = np.asarray(dense_tile, dtype=np.float64)
        x = np.asarray(inputs, dtype=np.float64)
        if tile.ndim != 2 or x.ndim != 1 or tile.shape[0] != x.shape[0]:
            raise DeviceError(
                f"tile {tile.shape} incompatible with inputs {x.shape}"
            )
        out, events = self.mac_batch(tile[None], x[None])
        return out[0], events

    # ------------------------------------------------------------------
    # Parallel-add-op (Section 4.2, Figure 16 c3)
    # ------------------------------------------------------------------
    def addop_batch(self, dense_tiles: np.ndarray,
                    source_values: np.ndarray,
                    absent_value: float,
                    active_mask: Optional[np.ndarray] = None,
                    reduce_op: str = "min",
                    ) -> Tuple[np.ndarray, IterationEvents]:
        """Parallel-add-op presentations for a stack of tiles.

        With ``reduce_op="min"`` (SSSP-style relaxation): for every
        tile ``b`` and row ``r``, compute ``w[b, r, :] +
        source_values[b, r]`` with absent cells pinned at
        ``absent_value`` (the reserved cell maximum ``M``), then fold
        rows with elementwise minimum — the comparator array the sALU
        provides.  With ``reduce_op="max"`` (SSWP-style widening):
        candidates are ``min(w[b, r, :], source_values[b, r])`` — the
        bottleneck of extending row ``r``'s path over each cell — with
        absent cells pinned at ``absent_value`` (the reserved width 0),
        folded with elementwise maximum (the same comparators, other
        polarity).  In both polarities rows whose cells are all absent
        contribute only the identity, so folding every row is
        equivalent to folding the active ones; ``active_mask``
        (``(B, S)`` booleans) additionally silences rows that hold
        edges but whose sources are inactive.  Returns the folded
        ``(B, W)`` candidate block.
        """
        if reduce_op not in ("min", "max"):
            raise DeviceError(f"unsupported add-op reduce {reduce_op!r}")
        observing = metrics.enabled()
        t0 = time.perf_counter() if observing else 0.0
        w = np.asarray(dense_tiles, dtype=np.float64)
        src = np.asarray(source_values, dtype=np.float64)
        if w.ndim != 3 or src.shape != w.shape[:2]:
            raise DeviceError("weights/source shape mismatch")
        if reduce_op == "min":
            candidates = w + src[:, :, None]
            # Saturating add: anything involving an absent cell stays
            # absent.
            absent_cells = w >= absent_value
            candidates = np.where(absent_cells, absent_value, candidates)
            candidates = np.minimum(candidates, absent_value)
        else:
            candidates = np.minimum(w, src[:, :, None])
            absent_cells = w <= absent_value
            candidates = np.where(absent_cells, absent_value, candidates)
            candidates = np.maximum(candidates, absent_value)
        if active_mask is not None:
            candidates = np.where(active_mask[:, :, None], candidates,
                                  absent_value)
        if reduce_op == "min":
            out = candidates.min(axis=1)
            out = self._maybe_noise(out, clip_max=absent_value)
        else:
            out = candidates.max(axis=1)
            # The comparator output still saturates at the physical
            # cell maximum (the min polarity's absent value), so noisy
            # widths cannot exceed what a real read can produce.
            out = self._maybe_noise(
                out, clip_max=float(2 ** self.config.data_bits - 1))

        # A cell is "stored" when an edge exists (absent cells hold M
        # but belong to the same written rows).
        events = self._batch_events(~absent_cells,
                                    presentations_per_tile=0)
        # One presentation per (non-empty crossbar tile, active row)
        # pair: each time slot drives one wordline of the tiles that
        # hold that row's edges.
        events.presentations = events.touched_rows
        events.reduce_ops = events.presentations * self.config.crossbar_size
        if observing:
            registry = metrics.get_registry()
            registry.counter(
                "repro_engine_addop_batches_total",
                "Batched parallel-add-op folds executed").inc()
            registry.counter(
                "repro_engine_tiles_total",
                "Dense tiles pushed through the functional engine").inc(
                    w.shape[0])
            registry.counter(
                "repro_engine_einsum_seconds_total",
                "Host seconds inside the functional tile kernels").inc(
                    time.perf_counter() - t0)
        return out, events

    def addop_tile(self, dense_weights: np.ndarray,
                   source_values: np.ndarray,
                   active_rows: np.ndarray,
                   absent_value: float,
                   reduce_op: str = "min"
                   ) -> Tuple[np.ndarray, IterationEvents]:
        """Single-tile parallel-add-op presentations.

        ``active_rows`` lists the source rows driven this iteration;
        delegates to :meth:`addop_batch` with a batch of one.
        """
        w = np.asarray(dense_weights, dtype=np.float64)
        src = np.asarray(source_values, dtype=np.float64)
        active = np.asarray(active_rows, dtype=np.int64)
        if w.ndim != 2 or src.shape != (w.shape[0],):
            raise DeviceError("weights/source shape mismatch")
        if active.size == 0:
            return np.full(w.shape[1], absent_value), IterationEvents()
        if active.min() < 0 or active.max() >= w.shape[0]:
            raise DeviceError("active row out of range")
        mask = np.zeros((1, w.shape[0]), dtype=bool)
        mask[0, active] = True
        out, events = self.addop_batch(w[None], src[None], absent_value,
                                       active_mask=mask,
                                       reduce_op=reduce_op)
        return out[0], events

    # ------------------------------------------------------------------
    def _batch_events(self, stored: np.ndarray,
                      presentations_per_tile: int) -> IterationEvents:
        """Count non-empty S x S crossbar tiles and touched rows across
        a ``(B, rows, cols)`` boolean occupancy stack."""
        s = self.config.crossbar_size
        batch, rows, cols = stored.shape
        n_tiles = -(-cols // s)
        padded = np.zeros((batch, rows, n_tiles * s), dtype=bool)
        padded[:, :, :cols] = stored
        per_tile = padded.reshape(batch, rows, n_tiles, s)
        row_touched = per_tile.any(axis=3)          # (B, rows, n_tiles)
        tile_nonempty = row_touched.any(axis=1)     # (B, n_tiles)
        tiles = int(tile_nonempty.sum())
        touched = int(row_touched.sum())
        presentations = tiles * presentations_per_tile
        return IterationEvents(
            tiles=tiles,
            touched_rows=touched,
            presentations=presentations,
            reduce_ops=presentations * s,
        )

    def _maybe_noise(self, values: np.ndarray,
                     clip_max: Optional[float] = None) -> np.ndarray:
        """Inject analog read noise when configured.

        Draws are consumed in C order, so one call over a ``(B, W)``
        batch reads the same stream as B sequential ``(W,)`` calls —
        batched and per-tile execution share noise realisations.
        """
        if self.config.noise_sigma <= 0:
            return values
        sigma = self.config.noise_sigma * self.coeff_fmt.scale
        noisy = values + self._rng.normal(0.0, sigma, size=values.shape)
        noisy = np.maximum(noisy, 0.0)
        if clip_max is not None:
            noisy = np.minimum(noisy, clip_max)
        return noisy
