"""Parallel-MAC mapping (Section 4.1): PageRank-style iterations.

One streaming-apply iteration: every non-empty subgraph is written to
the GEs, the source properties are driven once, and the bitline sums
accumulate into the destination register through the sALU's ``add``.
After the full scan the per-vertex ``apply`` step (e.g. PageRank's
teleport term) produces the new property vector.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.vertex_program import VertexProgram
from repro.core.cost import IterationEvents
from repro.core.engine import GraphEngine
from repro.core.streaming import SubgraphStreamer
from repro.graph.graph import Graph

__all__ = ["run_mac_iteration"]


def run_mac_iteration(
    streamer: SubgraphStreamer,
    engine: GraphEngine,
    program: VertexProgram,
    graph: Graph,
    properties: np.ndarray,
    coefficients: np.ndarray,
    frontier: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, IterationEvents]:
    """Execute one parallel-MAC iteration functionally.

    Parameters
    ----------
    coefficients:
        Per-edge crossbar coefficients, aligned with the *original*
        edge order of ``graph.adjacency`` (``tile.edge_ids`` indexes
        into it).

    Returns ``(new_properties, changed_mask, events)``.
    """
    cfg = streamer.config
    s = cfg.tile_rows
    w = cfg.tile_cols
    n = graph.num_vertices
    padded = streamer.ordering.padded_vertices
    # Pad once so tiles at the matrix edge slice uniformly.
    padded_inputs = np.zeros(padded + w)
    padded_inputs[:n] = program.source_input(properties, graph)
    accum = np.zeros(padded + w)

    events = IterationEvents()
    for tile in streamer.iter_subgraphs(frontier):
        dense = np.zeros((s, w))
        dense[tile.rows_local, tile.cols_local] = coefficients[tile.edge_ids]
        inputs = padded_inputs[tile.row_base:tile.row_base + s]
        out, tile_events = engine.mac_tile(dense, inputs)
        accum[tile.col_base:tile.col_base + w] += out
        events.merge(tile_events)
        events.edges += tile.nnz
        events.subgraphs += 1

    new_properties = program.apply(accum[:n], properties, graph)
    events.apply_ops += n
    events.scanned_edges = graph.num_edges
    changed = ~np.isclose(new_properties, properties,
                          rtol=0.0, atol=cfg.tolerance)
    return new_properties, changed, events
