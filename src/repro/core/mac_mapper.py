"""Parallel-MAC mapping (Section 4.1): PageRank-style iterations.

One streaming-apply iteration: every non-empty subgraph is written to
the GEs, the source properties are driven once, and the bitline sums
accumulate into the destination register through the sALU's ``add``.
After the full scan the per-vertex ``apply`` step (e.g. PageRank's
teleport term) produces the new property vector.

The default path stacks ``functional_batch_size`` non-empty ``S x S``
crossbar tiles per :meth:`~repro.core.engine.GraphEngine.mac_batch`
call (vectorised scatter + one einsum per batch); ``batch_size=0``
selects the per-tile reference loop, which walks the same crossbar
stream one tile at a time.  Both paths are bit-identical — same
scatter combine, same einsum reduction, same RNG draw order — which
the unit suite asserts.

:func:`run_mac_scan` is the tile loop alone, accumulating into a
caller-provided padded register: the partitioned-execution layer runs
one scan per partition (disk block, cluster stripe) of the same pass
and applies once at the end, so partitioned and whole-graph iterations
execute the identical tile stream.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.vertex_program import VertexProgram
from repro.core.cost import IterationEvents
from repro.core.engine import GraphEngine
from repro.core.streaming import SubgraphStreamer
from repro.graph.graph import Graph

__all__ = ["run_mac_iteration", "run_mac_scan"]


def run_mac_scan(
    streamer: SubgraphStreamer,
    engine: GraphEngine,
    padded_inputs: np.ndarray,
    accum: np.ndarray,
    coefficients: np.ndarray,
    frontier: Optional[np.ndarray] = None,
    batch_size: Optional[int] = None,
) -> IterationEvents:
    """Stream one graph (or partition) of MAC tiles into ``accum``.

    ``padded_inputs`` and ``accum`` are padded property registers of
    length ``padded_vertices + tile_cols`` shared across every scan of
    the same pass; the per-vertex ``apply`` step is the caller's job.
    Returns the scan's tile/edge events (``scanned_edges`` and
    ``apply_ops`` are pass-level quantities the caller charges).
    """
    cfg = streamer.config
    s = cfg.crossbar_size
    if batch_size is None:
        batch_size = cfg.functional_batch_size

    events = IterationEvents()
    if batch_size > 0:
        span = np.arange(s)
        for batch in streamer.iter_tile_batches(
                coefficients, batch_size, frontier=frontier,
                fill_value=0.0, combine="add"):
            inputs = padded_inputs[batch.row_bases[:, None] + span]
            out, tile_events = engine.mac_batch(batch.dense, inputs)
            # ufunc.at applies updates in element order, so columns
            # shared between tiles accumulate exactly like the
            # per-tile loop does.
            np.add.at(accum, batch.col_bases[:, None] + span, out)
            events.merge(tile_events)
            events.edges += batch.edges
            events.subgraphs += batch.subgraph_starts
    else:
        for batch in streamer.iter_tile_batches(
                coefficients, 1, frontier=frontier,
                fill_value=0.0, combine="add"):
            row = int(batch.row_bases[0])
            col = int(batch.col_bases[0])
            inputs = padded_inputs[row:row + s]
            out, tile_events = engine.mac_tile(batch.dense[0], inputs)
            accum[col:col + s] += out
            events.merge(tile_events)
            events.edges += batch.edges
            events.subgraphs += batch.subgraph_starts
    return events


def run_mac_iteration(
    streamer: SubgraphStreamer,
    engine: GraphEngine,
    program: VertexProgram,
    graph: Graph,
    properties: np.ndarray,
    coefficients: np.ndarray,
    frontier: Optional[np.ndarray] = None,
    batch_size: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, IterationEvents]:
    """Execute one parallel-MAC iteration functionally.

    Parameters
    ----------
    coefficients:
        Per-edge crossbar coefficients, aligned with the *original*
        edge order of ``graph.adjacency`` (``tile.edge_ids`` indexes
        into it).  Duplicate edges sum into their shared cell, matching
        :meth:`~repro.graph.coo.COOMatrix.to_dense`.
    batch_size:
        Tiles per batched engine call; ``None`` reads the config's
        ``functional_batch_size`` and ``0`` runs the per-tile loop.

    Returns ``(new_properties, changed_mask, events)``.
    """
    cfg = streamer.config
    n = graph.num_vertices
    padded = streamer.ordering.padded_vertices
    # Pad once so tiles at the matrix edge slice uniformly.
    padded_inputs = np.zeros(padded + cfg.tile_cols)
    padded_inputs[:n] = program.source_input(properties, graph)
    accum = np.zeros(padded + cfg.tile_cols)

    events = run_mac_scan(streamer, engine, padded_inputs, accum,
                          coefficients, frontier=frontier,
                          batch_size=batch_size)

    new_properties = program.apply(accum[:n], properties, graph)
    events.apply_ops += n
    events.scanned_edges = graph.num_edges
    changed = ~np.isclose(new_properties, properties,
                          rtol=0.0, atol=cfg.tolerance)
    return new_properties, changed, events
