"""Public GraphR facade.

>>> from repro.core import GraphR, GraphRConfig
>>> from repro.graph import dataset
>>> accel = GraphR()
>>> result, stats = accel.run("pagerank", dataset("WV"))
>>> stats.seconds > 0 and stats.joules > 0
True

``run`` picks the execution mode per the configuration: functional
(device-level simulation) when the streamed-tile budget allows,
analytic (exact algorithm + event-counted cost) otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.algorithms.registry import PROGRAM_INIT_KEYS, resolve_program
from repro.algorithms.vertex_program import (AlgorithmResult,
                                             MappingPattern,
                                             VertexProgram)
from repro.core.config import GraphRConfig
from repro.core.controller import Controller
from repro.graph.graph import Graph
from repro.hw.stats import RunStats

__all__ = ["GraphR", "choose_execution_mode", "config_summary"]


def config_summary(config: GraphRConfig):
    """The geometry keys every GraphR run reports in ``stats.extra``."""
    return {
        "crossbar_size": config.crossbar_size,
        "crossbars_per_ge": config.crossbars_per_ge,
        "num_ges": config.num_ges,
        "slices": config.slices,
    }

#: Auto-mode iteration estimate for active-list (add-op) algorithms:
#: frontier-driven runs touch each subgraph for a handful of sweeps in
#: total rather than on every iteration, so projecting the full
#: ``max_iterations`` over every non-empty subgraph would overestimate
#: their functional cost by orders of magnitude.
_ACTIVE_LIST_SWEEPS = 4


def choose_execution_mode(config: GraphRConfig, program: VertexProgram,
                          nonempty_subgraphs: int,
                          max_iterations: Optional[int] = None) -> str:
    """Resolve ``mode="auto"``: functional when the projected tile x
    iteration work fits the budget.

    Dense-sweep (MAC) programs stream every non-empty subgraph each
    iteration; add-op active-list programs only stream subgraphs with
    active sources, whose total across a run is a few sweeps of the
    graph (``_ACTIVE_LIST_SWEEPS``) rather than ``max_iterations``-many.
    An active-list program on the *MAC* pattern (k-core peeling) gets
    no such discount: the MAC functional path has no frontier skip, so
    every peel round streams every non-empty subgraph and the dense
    projection is the honest one.  Every deployment (single node,
    out-of-core, multi-node) picks the same way, from its own
    non-empty subgraph count.
    """
    if program.name == "cf":
        return "analytic"
    iterations = max_iterations or config.max_iterations
    if program.needs_active_list \
            and program.pattern is MappingPattern.PARALLEL_ADD_OP:
        projected = nonempty_subgraphs * min(iterations,
                                             _ACTIVE_LIST_SWEEPS)
    else:
        projected = nonempty_subgraphs * iterations
    if projected <= config.functional_tile_budget:
        return "functional"
    return "analytic"


class GraphR:
    """A GraphR node: run vertex programs on the simulated accelerator."""

    def __init__(self, config: Optional[GraphRConfig] = None) -> None:
        self.config = config or GraphRConfig()

    def run(self, algorithm: Union[str, VertexProgram], graph: Graph,
            mode: Optional[str] = None,
            **kwargs) -> Tuple[AlgorithmResult, RunStats]:
        """Execute an algorithm on a graph.

        Parameters
        ----------
        algorithm:
            Registered name (``"pagerank"``, ``"bfs"``, ``"sssp"``,
            ``"spmv"``, ``"cf"``) or a :class:`VertexProgram` instance.
        graph:
            Input graph.
        mode:
            Override the config's execution mode for this run.
        kwargs:
            Algorithm parameters (``source=...``, ``damping=...``,
            ``epochs=...``); routed to both the program constructor and
            the reference implementation as appropriate.

        Returns
        -------
        (AlgorithmResult, RunStats)
            The computed values plus simulated time/energy.
        """
        program, reference_kwargs = resolve_program(algorithm, kwargs)

        controller = Controller(self.config, graph, program)
        max_iterations = kwargs.get("max_iterations")
        chosen = mode or self.config.mode
        if chosen == "auto":
            chosen = self._pick_mode(controller, program, max_iterations)
        if chosen == "functional":
            program_kwargs = {k: v for k, v in kwargs.items()
                              if k in PROGRAM_INIT_KEYS}
            result, stats = controller.run_functional(
                max_iterations=max_iterations, **program_kwargs)
        else:
            result, stats = controller.run_analytic(**reference_kwargs)
        stats.extra["config"] = config_summary(self.config)
        return result, stats

    def _pick_mode(self, controller: Controller, program: VertexProgram,
                   max_iterations: Optional[int] = None) -> str:
        """Resolve ``auto`` from this run's streamer (see
        :func:`choose_execution_mode`)."""
        return choose_execution_mode(
            self.config, program,
            controller.streamer.num_nonempty_subgraphs, max_iterations)

    def __repr__(self) -> str:
        cfg = self.config
        return (f"GraphR(S={cfg.crossbar_size}, C={cfg.crossbars_per_ge}, "
                f"G={cfg.num_ges}, mode={cfg.mode})")
