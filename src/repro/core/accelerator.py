"""Public GraphR facade.

>>> from repro.core import GraphR, GraphRConfig
>>> from repro.graph import dataset
>>> accel = GraphR()
>>> result, stats = accel.run("pagerank", dataset("WV"))
>>> stats.seconds > 0 and stats.joules > 0
True

``run`` picks the execution mode per the configuration: functional
(device-level simulation) when the streamed-tile budget allows,
analytic (exact algorithm + event-counted cost) otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.algorithms.registry import get_program
from repro.algorithms.vertex_program import AlgorithmResult, VertexProgram
from repro.core.config import GraphRConfig
from repro.core.controller import Controller
from repro.graph.graph import Graph
from repro.hw.stats import RunStats

__all__ = ["GraphR"]

#: Auto-mode iteration estimate for active-list (add-op) algorithms:
#: frontier-driven runs touch each subgraph for a handful of sweeps in
#: total rather than on every iteration, so projecting the full
#: ``max_iterations`` over every non-empty subgraph would overestimate
#: their functional cost by orders of magnitude.
_ACTIVE_LIST_SWEEPS = 4

#: Program-constructor keywords, per algorithm, that ``run`` forwards to
#: the program instance rather than the reference call.
_CTOR_KEYS = {
    "pagerank": ("damping", "tolerance"),
    "bfs": ("source",),
    "sssp": ("source",),
    "spmv": (),
    "cf": ("features", "epochs"),
    "wcc": (),
}


class GraphR:
    """A GraphR node: run vertex programs on the simulated accelerator."""

    def __init__(self, config: Optional[GraphRConfig] = None) -> None:
        self.config = config or GraphRConfig()

    def run(self, algorithm: Union[str, VertexProgram], graph: Graph,
            mode: Optional[str] = None,
            **kwargs) -> Tuple[AlgorithmResult, RunStats]:
        """Execute an algorithm on a graph.

        Parameters
        ----------
        algorithm:
            Registered name (``"pagerank"``, ``"bfs"``, ``"sssp"``,
            ``"spmv"``, ``"cf"``) or a :class:`VertexProgram` instance.
        graph:
            Input graph.
        mode:
            Override the config's execution mode for this run.
        kwargs:
            Algorithm parameters (``source=...``, ``damping=...``,
            ``epochs=...``); routed to both the program constructor and
            the reference implementation as appropriate.

        Returns
        -------
        (AlgorithmResult, RunStats)
            The computed values plus simulated time/energy.
        """
        if isinstance(algorithm, VertexProgram):
            program = algorithm
            reference_kwargs = dict(kwargs)
        else:
            ctor_keys = _CTOR_KEYS.get(algorithm.lower(), ())
            ctor_kwargs = {k: v for k, v in kwargs.items() if k in ctor_keys}
            program = get_program(algorithm, **ctor_kwargs)
            reference_kwargs = dict(kwargs)

        controller = Controller(self.config, graph, program)
        max_iterations = kwargs.get("max_iterations")
        chosen = mode or self.config.mode
        if chosen == "auto":
            chosen = self._pick_mode(controller, program, max_iterations)
        if chosen == "functional":
            program_kwargs = {k: v for k, v in kwargs.items()
                              if k in ("source", "x", "seed")}
            result, stats = controller.run_functional(
                max_iterations=max_iterations, **program_kwargs)
        else:
            result, stats = controller.run_analytic(**reference_kwargs)
        stats.extra["config"] = {
            "crossbar_size": self.config.crossbar_size,
            "crossbars_per_ge": self.config.crossbars_per_ge,
            "num_ges": self.config.num_ges,
            "slices": self.config.slices,
        }
        return result, stats

    def _pick_mode(self, controller: Controller, program: VertexProgram,
                   max_iterations: Optional[int] = None) -> str:
        """Functional when the projected tile x iteration work fits the
        budget.

        Dense-sweep (MAC) programs stream every non-empty subgraph each
        iteration; active-list programs only stream subgraphs with
        active sources, whose total across a run is a few sweeps of the
        graph (``_ACTIVE_LIST_SWEEPS``) rather than
        ``max_iterations``-many.
        """
        if program.name == "cf":
            return "analytic"
        iterations = max_iterations or self.config.max_iterations
        per_iteration = controller.streamer.num_nonempty_subgraphs
        if program.needs_active_list:
            projected = per_iteration * min(iterations,
                                            _ACTIVE_LIST_SWEEPS)
        else:
            projected = per_iteration * iterations
        if projected <= self.config.functional_tile_budget:
            return "functional"
        return "analytic"

    def __repr__(self) -> str:
        cfg = self.config
        return (f"GraphR(S={cfg.crossbar_size}, C={cfg.crossbars_per_ge}, "
                f"G={cfg.num_ges}, mode={cfg.mode})")
