"""GraphR cost model: one place where events become seconds and joules.

Both execution modes (functional and analytic) reduce an iteration to
the same :class:`IterationEvents` record, and :class:`CostModel`
converts it to time/energy with the device constants.  This guarantees
the two modes charge identically for identical work.

Timing model (documented assumptions)
-------------------------------------
* The controller streams **non-empty** ``S x S`` crossbar tiles into the
  node's ``logical_crossbars`` full-precision crossbars; empty tiles
  cost nothing (the paper's empty-subgraph skip, applied at crossbar
  granularity — "the sparsity only incurs waste inside the subgraph").
* Programming a tile takes one array write phase
  (``write_latency``; per-row drivers operate in parallel), so a batch
  of ``logical_crossbars`` tiles programs in one write latency.
* A *presentation* is one wordline drive + bitline read of a tile:
  parallel-MAC programs make one presentation per tile, parallel-add-op
  programs one per active source row (Figure 16 c3).  Each presentation
  costs one GE cycle; presentations across the node's crossbars happen
  in parallel, so compute time is ``ceil(presentations /
  logical_crossbars) * ge_cycle``.
* Edge fetch from memory ReRAM and COO->matrix conversion by the
  controller overlap with GE work (double-buffered RegI/RegO), so an
  iteration's latency is ``max(fetch, convert, program + compute)``
  plus a small per-iteration controller overhead.

Energy model
------------
* Crossbar writes: parallel-MAC tiles program only the non-zero
  coefficient cells (zero is the erased HRS default), while
  parallel-add-op tiles program whole touched rows because absent
  cells must hold the reserved maximum value ``M`` (Section 4.2); both
  multiply by the bit-slice count.
* Every presentation activates ``S x S x slices`` cells (read energy),
  converts ``S * slices`` bitlines per logical tile through the ADC,
  performs ``S`` sALU reduce lanes and ``S`` RegO read-modify-writes.
* Memory-ReRAM edge fetch charges one cell read per ``cell_bits`` of
  edge record.
* ReRAM has essentially no leakage, so no static term is charged for
  the arrays; ADC static power is charged over busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import GraphRConfig
from repro.hw.energy import EnergyLedger
from repro.hw.timing import LatencyModel

__all__ = ["IterationEvents", "CostModel", "EDGE_BYTES"]

#: Bytes per COO edge record in memory ReRAM (src, dst, weight packed).
EDGE_BYTES = 8


@dataclass
class IterationEvents:
    """Event counts of one streaming-apply iteration.

    ``subgraphs`` / ``tiles`` count non-empty subgraph steps and
    non-empty ``S x S`` crossbar tiles; ``presentations`` counts
    wordline drives (see the module docstring); ``touched_rows`` counts
    distinct (tile, source-row) pairs that were programmed;
    ``edges`` counts edge records converted into crossbar tiles;
    ``scanned_edges`` counts the records streamed past the controller —
    GraphR's disk/memory accesses are strictly sequential (Section 3.5),
    so every iteration scans the full ordered edge list of the blocks it
    visits even when only a few subgraphs are active.
    ``addop`` marks parallel-add-op iterations, whose presentations have
    ``1/S`` the parallelism of MAC ones (Section 4: C*N*G vs C*C*N*G).
    """

    edges: int = 0
    scanned_edges: int = 0
    subgraphs: int = 0
    tiles: int = 0
    presentations: int = 0
    touched_rows: int = 0
    programmed_cells: int = 0
    reduce_ops: int = 0
    apply_ops: int = 0
    addop: bool = False

    def merge(self, other: "IterationEvents") -> None:
        """Accumulate another record (used when summing blocks)."""
        self.edges += other.edges
        self.scanned_edges += other.scanned_edges
        self.subgraphs += other.subgraphs
        self.tiles += other.tiles
        self.presentations += other.presentations
        self.touched_rows += other.touched_rows
        self.programmed_cells += other.programmed_cells
        self.reduce_ops += other.reduce_ops
        self.apply_ops += other.apply_ops
        self.addop = self.addop or other.addop


class CostModel:
    """Translates :class:`IterationEvents` into seconds and joules."""

    def __init__(self, config: GraphRConfig) -> None:
        self.config = config
        self.tech = config.technology

    # ------------------------------------------------------------------
    def presentation_parallelism(self, addop: bool) -> int:
        """Concurrent presentations per GE cycle.

        MAC presentations use every logical crossbar; add-op
        presentations drive one wordline at a time per tile group and
        engage the sALU comparator path, giving ``1/S`` the parallelism
        (the paper's C*N*G vs C*C*N*G degrees, Section 4).
        """
        units = self.config.logical_crossbars
        if addop:
            units = max(1, units // self.config.crossbar_size)
        return units

    def iteration_time_s(self, events: IterationEvents) -> float:
        """Latency of one iteration (critical path, see module doc)."""
        cfg = self.config
        reram = self.tech.reram

        scanned = max(events.scanned_edges, events.edges)
        fetch_s = scanned * EDGE_BYTES / cfg.mem_bandwidth_bps
        convert_s = events.edges / cfg.controller_edges_per_second

        batches = -(-events.tiles // cfg.logical_crossbars)
        program_s = batches * reram.write_latency_s
        units = self.presentation_parallelism(events.addop)
        cycles = -(-events.presentations // units)
        compute_s = cycles * reram.ge_cycle_s

        pipeline_stage = max(fetch_s, convert_s, program_s + compute_s)
        return pipeline_stage + cfg.iteration_overhead_s

    # ------------------------------------------------------------------
    def charge_iteration(self, events: IterationEvents,
                         energy: EnergyLedger,
                         latency: LatencyModel) -> float:
        """Charge one iteration into the ledgers; returns its seconds."""
        cfg = self.config
        reram = self.tech.reram
        adc = self.tech.adc
        regs = self.tech.registers
        salu = self.tech.salu
        s = cfg.crossbar_size
        slices = cfg.slices

        # --- energy ----------------------------------------------------
        # Programming: MAC tiles write only the non-zero coefficients
        # (zero = erased HRS default); add-op tiles write whole touched
        # rows because absent cells hold the reserved maximum M.
        if events.programmed_cells:
            cells = events.programmed_cells
        elif events.addop:
            cells = events.touched_rows * s
        else:
            cells = events.edges
        energy.charge("crossbar_write", cells * slices,
                      reram.write_energy_j)
        # Analog MVM cell activations.
        cells_read = events.presentations * s * s * slices
        energy.charge("crossbar_read", cells_read, reram.read_energy_j)
        # ADC conversions: every physical bitline of a presented tile.
        conversions = events.presentations * s * slices
        energy.charge("adc", conversions, adc.energy_per_sample_j)
        # sALU reduce lanes and register traffic.  Streaming order sets
        # the register geometry (Figure 11): column-major needs a RegO
        # of one subgraph width and reads RegI per presentation;
        # row-major reads each source stripe once but must hold every
        # destination of the stripe, paying a capacity-scaled access
        # energy (CACTI-style ~sqrt(capacity) wordline/bitline cost).
        energy.charge("salu", events.reduce_ops, salu.op_energy_j)
        if cfg.streaming_order == "column":
            rego_scale = 1.0
            reg_reads = events.presentations * s
        else:
            # Whole-graph blocks (block_size None) are approximated as
            # 16 subgraph widths for the capacity penalty.
            block = cfg.block_size or 16 * cfg.tile_cols
            rego_scale = max(1.0, (block / cfg.tile_cols) ** 0.5)
            reg_reads = events.touched_rows
        energy.charge("reg_read", reg_reads, regs.read_energy_j)
        energy.charge("reg_write", events.reduce_ops,
                      regs.write_energy_j * rego_scale)
        # Memory-ReRAM edge fetch (sequential scan of the ordered list).
        scanned = max(events.scanned_edges, events.edges)
        edge_cells = scanned * EDGE_BYTES * 8 // reram.cell_bits
        energy.charge("mem_reram_read", edge_cells, reram.read_energy_j)
        # Apply phase (teleport add / frontier update) in the sALU.
        energy.charge("apply", events.apply_ops, salu.op_energy_j)

        # --- latency ---------------------------------------------------
        seconds = self.iteration_time_s(events)
        batches = -(-events.tiles // cfg.logical_crossbars)
        program_s = batches * reram.write_latency_s
        units = self.presentation_parallelism(events.addop)
        cycles = -(-events.presentations // units)
        compute_s = cycles * reram.ge_cycle_s
        latency.add("ge_program", program_s)
        latency.add("ge_compute", compute_s)
        overlap = seconds - self.config.iteration_overhead_s
        latency.add("fetch_convert_slack",
                    max(0.0, overlap - program_s - compute_s))
        latency.add("controller", self.config.iteration_overhead_s)

        # ADC static power over the busy window.
        adc_count = cfg.adcs_per_ge * cfg.num_ges
        energy.charge_joules("adc_static",
                             adc_count * adc.power_w * compute_s)
        return seconds
