"""Streamed exact kernels: the references, one edge chunk at a time.

Out-of-core execution (Figure 9) consumes the preprocessed edge list
block by block and must never hold the whole graph in memory — but the
analytic execution mode needs the exact algorithm values.  A
:class:`StreamKernel` is an algorithm's reference implementation
re-expressed over edge *chunks*: per pass it exposes the active-source
frontier, consumes each chunk's ``(src, dst, value)`` arrays in
streaming order, and finishes the pass with the same vector updates
the in-memory reference performs.

Chunked ``np.add.at`` / ``np.minimum.at`` scatters applied in stream
order are element-for-element the same operation sequence as one call
over the concatenated arrays, so a kernel driven over the ordered
block files produces **bit-identical** values to its reference run on
the ordered edge list (min-based kernels are order-independent and
match the unordered reference too).  Only O(|V|) state — property,
degree and frontier vectors — lives across chunks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.algorithms.vertex_program import AlgorithmResult, IterationTrace

__all__ = ["StreamKernel"]


class StreamKernel(ABC):
    """One algorithm's pass-structured exact evaluator.

    Drive it as::

        while not kernel.finished:
            frontier = kernel.frontier     # mask for this pass (or None)
            kernel.begin_pass()
            for chunk in blocks_in_streaming_order:
                kernel.process_edges(src, dst, values)
            kernel.end_pass()

    Subclasses mirror their module's ``*_reference`` loop exactly —
    same numpy expressions, same trace records, same convergence test —
    so a streamed run is a drop-in replacement for the reference.
    """

    #: Registered algorithm name.
    algorithm: str = "abstract"

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = int(num_vertices)
        self.iterations = 0
        self.converged = False
        self.finished = False
        self.trace = IterationTrace()
        #: Active-source mask for the coming pass; ``None`` means every
        #: source is active (dense-sweep programs).
        self.frontier: Optional[np.ndarray] = None
        #: Final property vector (valid once ``finished``).
        self.values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @abstractmethod
    def begin_pass(self) -> None:
        """Prepare the pass's accumulator / per-source vectors."""

    @abstractmethod
    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        """Consume one chunk of edges, in streaming order."""

    @abstractmethod
    def end_pass(self) -> None:
        """Fold the pass into the vertex state; set ``finished`` /
        ``converged`` / ``frontier`` for the next pass."""

    # ------------------------------------------------------------------
    def result(self) -> AlgorithmResult:
        """The run's outcome, shaped like the reference's."""
        return AlgorithmResult(
            algorithm=self.algorithm,
            values=self.values,
            iterations=self.iterations,
            converged=self.converged,
            trace=self.trace,
        )
