"""Single-source widest path (SSWP): the max/min dual of SSSP.

The bottleneck problem: the width of a path is its narrowest edge, and
every vertex wants the widest path from the source —

    processEdge:  E.value = min(V.prop, E.weight)
    reduce:       V.prop  = max(V.prop, E.value)

the exact dual of SSSP's relax (add becomes min, min becomes max), on
the same parallel-add-op hardware: the subgraph's weight matrix sits in
a crossbar, one source row is selected per time slot, and the sALU's
comparator array folds candidates — configured for ``max`` instead of
``min`` (Figure 15 lists both ops).  Unreached vertices hold width 0
(the identity of ``max`` over positive widths), the source holds the
cell maximum ``M`` (its bottleneck is unbounded), and edge weights must
be strictly positive so a zero cell always means "no edge".

Widths only ever take values from the finite set of edge weights (plus
``UNBOUNDED`` at the source) and the functional path compares and
selects rather than accumulating, so functional runs are exact —
bit-identical to this reference.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["SSWPProgram", "SSWPKernel", "sswp_reference",
           "widest_path_reference", "UNBOUNDED"]

#: Source width — the paper's cell maximum ``M`` (no bottleneck yet).
UNBOUNDED = float((1 << 16) - 1)


def _validated_widths(values: np.ndarray) -> np.ndarray:
    weights = np.asarray(values, dtype=np.float64)
    if weights.size and weights.min() <= 0:
        raise GraphFormatError(
            "SSWP requires strictly positive edge weights "
            "(width 0 is the reserved no-edge value)")
    return weights


class SSWPProgram(VertexProgram):
    """Vertex-program descriptor for SSWP."""

    name = "sswp"
    pattern = MappingPattern.PARALLEL_ADD_OP
    reduce_op = "max"
    needs_active_list = True
    #: Identity of ``max`` over positive widths: unreached = width 0.
    reduce_identity = 0.0

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise GraphFormatError("source must be non-negative")
        self.source = int(source)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Width ``M`` at the source, 0 (unreached) elsewhere."""
        source = int(kwargs.get("source", self.source))
        if not 0 <= source < graph.num_vertices:
            raise GraphFormatError(
                f"source {source} out of range for "
                f"{graph.num_vertices} vertices"
            )
        width = np.zeros(graph.num_vertices)
        width[source] = UNBOUNDED
        return width

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """The edge width ``w(u, v)`` is the crossbar cell content."""
        return _validated_widths(values)

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return self.edge_coefficients(graph.adjacency.rows,
                                      graph.adjacency.values, None)

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """No width label changed anywhere."""
        return bool(np.array_equal(old_properties, new_properties))


class SSWPKernel(StreamKernel):
    """:func:`sswp_reference`, one edge chunk at a time.

    ``maximum.at`` is order-independent, so chunked widening against
    the pass-shared ``proposed`` vector is exactly the reference's
    max-scatter.
    """

    algorithm = "sswp"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 source: int = 0, max_iterations: int = 0) -> None:
        super().__init__(num_vertices)
        n = self.num_vertices
        if not 0 <= source < n:
            raise GraphFormatError(f"source {source} out of range")
        self._width = np.zeros(n)
        self._width[source] = UNBOUNDED
        self.frontier = np.zeros(n, dtype=bool)
        self.frontier[source] = True
        self._limit = max_iterations if max_iterations > 0 else n + 1
        self.trace = IterationTrace(frontiers=[])
        self.values = self._width

    def begin_pass(self) -> None:
        self._proposed = self._width.copy()
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        src = np.asarray(src)
        weights = _validated_widths(values)
        edge_mask = self.frontier[src]
        self._pass_edges += int(edge_mask.sum())
        widen_src = src[edge_mask]
        widen_dst = np.asarray(dst)[edge_mask]
        candidate = np.minimum(self._width[widen_src],
                               weights[edge_mask])
        np.maximum.at(self._proposed, widen_dst, candidate)

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=int(self.frontier.sum()),
                          edges=self._pass_edges,
                          frontier=self.frontier)
        improved = self._proposed > self._width
        self._width = self._proposed
        self.frontier = improved
        self.values = self._width
        if not self.frontier.any() or self.iterations >= self._limit:
            self.converged = not self.frontier.any()
            self.finished = True


def sswp_reference(graph: Graph, source: int = 0,
                   max_iterations: int = 0) -> AlgorithmResult:
    """Frontier-driven widest-path iteration with a trace.

    Each iteration widens every out-edge of the vertices whose width
    improved in the previous iteration — the same active-vertex
    schedule as the SSSP reference, with the dual operators.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range")
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    weights = _validated_widths(graph.adjacency.values)

    width = np.zeros(n)
    width[source] = UNBOUNDED
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    limit = max_iterations if max_iterations > 0 else n + 1

    trace = IterationTrace(frontiers=[])
    iterations = 0
    while frontier.any() and iterations < limit:
        iterations += 1
        edge_mask = frontier[src]
        trace.record(vertices=int(frontier.sum()),
                     edges=int(edge_mask.sum()),
                     frontier=frontier)
        widen_src = src[edge_mask]
        widen_dst = dst[edge_mask]
        candidate = np.minimum(width[widen_src], weights[edge_mask])
        # Elementwise max-scatter: keep the best bottleneck per vertex.
        proposed = width.copy()
        np.maximum.at(proposed, widen_dst, candidate)
        improved = proposed > width
        width = proposed
        frontier = improved
    return AlgorithmResult(
        algorithm="sswp",
        values=width,
        iterations=iterations,
        converged=not frontier.any(),
        trace=trace,
    )


def widest_path_reference(graph: Graph, source: int = 0) -> AlgorithmResult:
    """Dijkstra with a max-heap — an independent oracle for tests.

    Produces the same widths as :func:`sswp_reference` on strictly
    positive weights; its trace is empty (it is not a vertex program).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range")
    csr = graph.csr()
    indptr = np.asarray(csr.indptr)
    indices = np.asarray(csr.indices)
    weights = _validated_widths(csr.values)

    width = np.zeros(n)
    width[source] = UNBOUNDED
    visited = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(-UNBOUNDED, source)]
    while heap:
        negative, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        start, stop = int(indptr[u]), int(indptr[u + 1])
        for v, w in zip(indices[start:stop], weights[start:stop]):
            candidate = min(-negative, float(w))
            if candidate > width[v]:
                width[v] = candidate
                heapq.heappush(heap, (-candidate, int(v)))
    return AlgorithmResult(
        algorithm="widest-path",
        values=width,
        iterations=0,
        converged=True,
    )
