"""Single-source shortest paths (Figure 14): parallel-add-op pattern.

``processEdge`` adds the edge weight to the source's distance label;
``reduce`` takes the minimum (the relaxation operator).  GraphR maps a
subgraph's weight matrix into a crossbar, selects one source row per
time slot with a one-hot wordline, adds ``dist(u)`` through an always-on
bias row, and lets the sALU's comparators keep the elementwise minimum
(Figure 16 c3).

Two references are provided: frontier-driven Bellman-Ford (the
paper-faithful relaxation schedule, with an iteration trace) and
Dijkstra (for cross-validation in tests).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["SSSPProgram", "SSSPKernel", "sssp_reference",
           "dijkstra_reference", "INFINITY"]

#: Reserved "no edge / unreached" value — the paper's cell maximum ``M``.
INFINITY = float((1 << 16) - 1)


class SSSPProgram(VertexProgram):
    """Vertex-program descriptor for SSSP (Table 2 row 4)."""

    name = "sssp"
    pattern = MappingPattern.PARALLEL_ADD_OP
    reduce_op = "min"
    needs_active_list = True
    reduce_identity = INFINITY

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise GraphFormatError("source must be non-negative")
        self.source = int(source)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Distance 0 at the source, infinity elsewhere."""
        source = int(kwargs.get("source", self.source))
        if not 0 <= source < graph.num_vertices:
            raise GraphFormatError(
                f"source {source} out of range for {graph.num_vertices} vertices"
            )
        dist = np.full(graph.num_vertices, INFINITY)
        dist[source] = 0.0
        return dist

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """The edge weight ``w(u, v)`` is the crossbar cell content."""
        weights = np.asarray(values, dtype=np.float64)
        if weights.size and weights.min() < 0:
            raise GraphFormatError("SSSP requires non-negative edge weights")
        return weights

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return self.edge_coefficients(graph.adjacency.rows,
                                      graph.adjacency.values, None)

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """No distance label changed anywhere."""
        return bool(np.array_equal(old_properties, new_properties))


class SSSPKernel(StreamKernel):
    """:func:`sssp_reference`, one edge chunk at a time.

    ``minimum.at`` is order-independent, so chunked relaxation against
    the pass-shared ``proposed`` vector is exactly the reference's
    min-scatter.
    """

    algorithm = "sssp"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 source: int = 0, max_iterations: int = 0) -> None:
        super().__init__(num_vertices)
        n = self.num_vertices
        if not 0 <= source < n:
            raise GraphFormatError(f"source {source} out of range")
        self._dist = np.full(n, INFINITY)
        self._dist[source] = 0.0
        self.frontier = np.zeros(n, dtype=bool)
        self.frontier[source] = True
        self._limit = max_iterations if max_iterations > 0 else n + 1
        self.trace = IterationTrace(frontiers=[])
        self.values = self._dist

    def begin_pass(self) -> None:
        self._proposed = self._dist.copy()
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        src = np.asarray(src)
        weights = np.asarray(values, dtype=np.float64)
        if weights.size and weights.min() < 0:
            raise GraphFormatError(
                "SSSP requires non-negative edge weights")
        edge_mask = self.frontier[src]
        self._pass_edges += int(edge_mask.sum())
        relax_src = src[edge_mask]
        relax_dst = np.asarray(dst)[edge_mask]
        candidate = self._dist[relax_src] + weights[edge_mask]
        np.minimum.at(self._proposed, relax_dst, candidate)

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=int(self.frontier.sum()),
                          edges=self._pass_edges,
                          frontier=self.frontier)
        improved = self._proposed < self._dist
        self._dist = self._proposed
        self.frontier = improved
        self.values = self._dist
        if not self.frontier.any() or self.iterations >= self._limit:
            self.converged = not self.frontier.any()
            self.finished = True


def sssp_reference(graph: Graph, source: int = 0,
                   max_iterations: int = 0) -> AlgorithmResult:
    """Frontier-driven Bellman-Ford with an iteration trace.

    Each iteration relaxes every out-edge of the vertices whose label
    changed in the previous iteration — exactly the paper's
    active-vertex semantics (Section 4.2), so the recorded frontiers
    drive the GraphR and baseline cost models.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range")
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    weights = np.asarray(graph.adjacency.values, dtype=np.float64)
    if weights.size and weights.min() < 0:
        raise GraphFormatError("SSSP requires non-negative edge weights")

    dist = np.full(n, INFINITY)
    dist[source] = 0.0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    limit = max_iterations if max_iterations > 0 else n + 1

    trace = IterationTrace(frontiers=[])
    iterations = 0
    while frontier.any() and iterations < limit:
        iterations += 1
        edge_mask = frontier[src]
        trace.record(vertices=int(frontier.sum()),
                     edges=int(edge_mask.sum()),
                     frontier=frontier)
        relax_src = src[edge_mask]
        relax_dst = dst[edge_mask]
        candidate = dist[relax_src] + weights[edge_mask]
        # Elementwise min-scatter: keep the best relaxation per vertex.
        proposed = dist.copy()
        np.minimum.at(proposed, relax_dst, candidate)
        improved = proposed < dist
        dist = proposed
        frontier = improved
    return AlgorithmResult(
        algorithm="sssp",
        values=dist,
        iterations=iterations,
        converged=not frontier.any(),
        trace=trace,
    )


def dijkstra_reference(graph: Graph, source: int = 0) -> AlgorithmResult:
    """Dijkstra's algorithm — an independent oracle for tests.

    Produces the same distances as :func:`sssp_reference` on
    non-negative weights; its trace is empty (it is not a vertex
    program).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range")
    csr = graph.csr()
    indptr = np.asarray(csr.indptr)
    indices = np.asarray(csr.indices)
    weights = np.asarray(csr.values)
    if weights.size and weights.min() < 0:
        raise GraphFormatError("Dijkstra requires non-negative edge weights")

    dist = np.full(n, INFINITY)
    dist[source] = 0.0
    visited = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        start, stop = int(indptr[u]), int(indptr[u + 1])
        for v, w in zip(indices[start:stop], weights[start:stop]):
            nd = d + float(w)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return AlgorithmResult(
        algorithm="dijkstra",
        values=dist,
        iterations=0,
        converged=True,
    )
