"""The vertex programming model (Figure 6) and its GraphR mapping hooks.

A vertex program runs iterations of two phases::

    # Phase 1: compute edge values
    for each edge E(V, U) from active vertex V:
        E.value = processEdge(E.weight, V.prop)

    # Phase 2: reduce and apply
    for each edge E(U, V) to vertex V:
        V.prop = reduce(V.prop, E.value)

GraphR maps a program onto crossbars through two patterns (Section 4):

* :attr:`MappingPattern.PARALLEL_MAC` — ``processEdge`` is a multiply,
  so a whole ``C x C`` crossbar performs MACs every cycle
  (parallelism ~ ``C * C * N * G``);
* :attr:`MappingPattern.PARALLEL_ADD_OP` — ``processEdge`` is an add,
  performed one crossbar row per time slot with the reduce op in the
  sALU (parallelism ~ ``C * N * G``).

The descriptor below exposes exactly what the accelerator and the
baselines need: the crossbar coefficient per edge, the input presented
per source vertex, the sALU reduce op, and the apply step.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import MappingError
from repro.graph.graph import Graph

__all__ = ["MappingPattern", "IterationTrace", "AlgorithmResult",
           "VertexProgram"]


class MappingPattern(enum.Enum):
    """Which Section 4 crossbar mapping a program uses."""

    PARALLEL_MAC = "parallel-mac"
    PARALLEL_ADD_OP = "parallel-add-op"


@dataclass
class IterationTrace:
    """Per-iteration activity record consumed by the platform models.

    ``active_vertices[i]`` / ``active_edges[i]`` are the counts
    processed in iteration ``i``; ``frontiers[i]`` (optional, only for
    active-list algorithms) is the boolean mask of active source
    vertices at the start of iteration ``i``.
    """

    active_vertices: List[int] = field(default_factory=list)
    active_edges: List[int] = field(default_factory=list)
    frontiers: Optional[List[np.ndarray]] = None

    @property
    def iterations(self) -> int:
        """Number of iterations recorded."""
        return len(self.active_edges)

    @property
    def total_edges_processed(self) -> int:
        """Sum of active edges across iterations."""
        return int(sum(self.active_edges))

    def record(self, vertices: int, edges: int,
               frontier: Optional[np.ndarray] = None) -> None:
        """Append one iteration's activity."""
        self.active_vertices.append(int(vertices))
        self.active_edges.append(int(edges))
        if frontier is not None:
            if self.frontiers is None:
                self.frontiers = []
            self.frontiers.append(np.asarray(frontier, dtype=bool).copy())


@dataclass
class AlgorithmResult:
    """What a reference (or simulated) run produced.

    ``values`` is the final vertex property vector (or an
    ``(n, F)`` matrix for collaborative filtering).
    """

    algorithm: str
    values: np.ndarray
    iterations: int
    converged: bool
    trace: IterationTrace = field(default_factory=IterationTrace)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)


class VertexProgram(ABC):
    """Descriptor of one Table 2 vertex program.

    Subclasses declare the mapping pattern, the sALU reduce operation,
    and three callbacks the simulators use:

    * :meth:`crossbar_coefficient` — the value stored in the crossbar
      cell for an edge (Phase 1's multiplicand / addend);
    * :meth:`source_input` — the value presented on the wordline for a
      source vertex;
    * :meth:`apply` — the per-vertex post-reduce step.
    """

    #: Algorithm name as used in Table 2 and the benchmarks.
    name: str = "abstract"
    #: GraphR mapping pattern (Section 4).
    pattern: MappingPattern = MappingPattern.PARALLEL_MAC
    #: sALU reduce operation (Figure 15): "add" or "min".
    reduce_op: str = "add"
    #: Whether the algorithm maintains an active-vertex list (Table 2).
    needs_active_list: bool = False
    #: Identity element of ``reduce_op`` (0 for add, +inf for min).
    reduce_identity: float = 0.0
    #: True when crossbar coefficients live in [0, 1) (probability-style
    #: programs); lets the mapper maximise fractional precision.
    unit_interval_coefficients: bool = False

    # ------------------------------------------------------------------
    @abstractmethod
    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Initial ``V.prop`` vector."""

    @abstractmethod
    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Per-edge coefficient written into crossbar cells.

        Returns an array aligned with ``graph.adjacency`` entries.  For
        parallel-MAC programs this is the multiplier of ``V.prop``; for
        parallel-add-op programs it is the addend (edge weight).
        """

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """Per-edge coefficients from raw edge arrays.

        The partitioned-execution layer (out-of-core blocks, cluster
        stripes) computes coefficients one edge chunk at a time from
        the chunk's source ids / weights plus the *global* out-degree
        vector, so no deployment ever needs the whole edge list in
        memory.  Must agree elementwise with
        :meth:`crossbar_coefficient` — programs implement this and
        derive ``crossbar_coefficient`` from it.
        """
        raise MappingError(
            f"{self.name} has no streamed coefficient computation"
        )

    def source_input(self, properties: np.ndarray, graph: Graph) -> np.ndarray:
        """Value driven on the wordline for each source vertex.

        Default: the property itself (PageRank-style).
        """
        return np.asarray(properties, dtype=np.float64)

    def apply(self, reduced: np.ndarray, old_properties: np.ndarray,
              graph: Graph) -> np.ndarray:
        """Per-vertex post-reduce step (Phase 2's final assignment).

        Default: take the reduced value as the new property.
        """
        return reduced

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """Convergence test run by the controller each iteration."""
        return bool(np.allclose(old_properties, new_properties,
                                atol=1e-10, rtol=0.0))

    def improved(self, new_properties: np.ndarray,
                 old_properties: np.ndarray) -> np.ndarray:
        """Mask of vertices whose add-op fold improved their property —
        the next iteration's frontier.  Direction follows
        :attr:`reduce_op` (``min`` relaxes downward, ``max`` widens
        upward); one definition shared by the single-node mapper and
        the partitioned runner keeps deployments bit-identical.
        """
        if self.reduce_op == "max":
            return np.asarray(new_properties) > np.asarray(old_properties)
        return np.asarray(new_properties) < np.asarray(old_properties)

    # ------------------------------------------------------------------
    @property
    def parallelism_degree_exponent(self) -> int:
        """2 for MAC (C*C*N*G), 1 for add-op (C*N*G) — how many crossbar
        dimensions contribute parallelism."""
        return 2 if self.pattern is MappingPattern.PARALLEL_MAC else 1

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"pattern={self.pattern.value}, reduce={self.reduce_op})")
