"""Graph algorithms as vertex programs (Figure 6, Table 2).

Each algorithm exists twice:

* a **reference implementation** — exact numpy code that also records a
  per-iteration :class:`~repro.algorithms.vertex_program.IterationTrace`
  (active vertices/edges), which every platform model consumes;
* a **vertex program descriptor** — the ``processEdge`` / ``reduce``
  decomposition GraphR maps onto crossbars (parallel-MAC or
  parallel-add-op pattern).
"""

from repro.algorithms.vertex_program import (
    VertexProgram,
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
)
from repro.algorithms.pagerank import PageRankProgram, pagerank_reference
from repro.algorithms.bfs import BFSProgram, bfs_reference
from repro.algorithms.sssp import SSSPProgram, sssp_reference
from repro.algorithms.spmv import SpMVProgram, spmv_reference
from repro.algorithms.cf import CollaborativeFilteringProgram, cf_reference, cf_rmse
from repro.algorithms.kcore import KCoreProgram, kcore_reference
from repro.algorithms.sswp import SSWPProgram, sswp_reference
from repro.algorithms.ppr import PPRProgram, ppr_reference
from repro.algorithms.registry import (
    get_program,
    list_algorithms,
    run_reference,
    weighted_algorithms,
)

__all__ = [
    "VertexProgram",
    "AlgorithmResult",
    "IterationTrace",
    "MappingPattern",
    "PageRankProgram",
    "pagerank_reference",
    "BFSProgram",
    "bfs_reference",
    "SSSPProgram",
    "sssp_reference",
    "SpMVProgram",
    "spmv_reference",
    "CollaborativeFilteringProgram",
    "cf_reference",
    "cf_rmse",
    "KCoreProgram",
    "kcore_reference",
    "SSWPProgram",
    "sswp_reference",
    "PPRProgram",
    "ppr_reference",
    "get_program",
    "list_algorithms",
    "run_reference",
    "weighted_algorithms",
]
