"""Algorithm registry: name -> program descriptor and reference runner.

Mirrors Table 2 of the paper (property, processEdge, reduce, active
list) and is the single lookup point the benchmark harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigError
from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import AlgorithmResult, VertexProgram
from repro.algorithms.pagerank import (PageRankKernel, PageRankProgram,
                                       pagerank_reference)
from repro.algorithms.bfs import BFSKernel, BFSProgram, bfs_reference
from repro.algorithms.sssp import SSSPKernel, SSSPProgram, sssp_reference
from repro.algorithms.spmv import SpMVKernel, SpMVProgram, spmv_reference
from repro.algorithms.cf import CollaborativeFilteringProgram, cf_reference
from repro.algorithms.wcc import WCCKernel, WCCProgram, wcc_reference
from repro.algorithms.kcore import KCoreKernel, KCoreProgram, kcore_reference
from repro.algorithms.sswp import SSWPKernel, SSWPProgram, sswp_reference
from repro.algorithms.ppr import PPRKernel, PPRProgram, ppr_reference
from repro.graph.graph import Graph

__all__ = ["PROGRAM_INIT_KEYS", "get_program", "get_stream_kernel",
           "list_algorithms", "resolve_program", "run_reference",
           "weighted_algorithms", "TABLE2_ROWS", "Table2Row"]


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2."""

    application: str
    vertex_property: str
    process_edge: str
    reduce: str
    active_vertex_list_required: bool


#: Table 2 verbatim (used by the table-2 benchmark and docs).
TABLE2_ROWS: Tuple[Table2Row, ...] = (
    Table2Row("spmv", "Multiplication Value",
              "E.value = V.prop / V.outdegree * E.weight",
              "V.prop = sum(E.value)", False),
    Table2Row("pagerank", "Page Rank Value",
              "E.value = r * V.prop / V.outdegree",
              "V.prop = sum(E.value) + (1-r) / Num_Vertex", False),
    Table2Row("bfs", "Level",
              "E.value = 1 + V.prop",
              "V.prop = min(V.prop, E.value)", True),
    Table2Row("sssp", "Path Length",
              "E.value = E.weight + V.prop",
              "V.prop = min(V.prop, E.value)", True),
)

_PROGRAMS: Dict[str, Callable[..., VertexProgram]] = {
    "pagerank": PageRankProgram,
    "bfs": BFSProgram,
    "sssp": SSSPProgram,
    "spmv": SpMVProgram,
    "cf": CollaborativeFilteringProgram,
    "wcc": WCCProgram,
    "kcore": KCoreProgram,
    "sswp": SSWPProgram,
    "ppr": PPRProgram,
}

_REFERENCES: Dict[str, Callable[..., AlgorithmResult]] = {
    "pagerank": pagerank_reference,
    "bfs": bfs_reference,
    "sssp": sssp_reference,
    "spmv": spmv_reference,
    "cf": cf_reference,
    "wcc": wcc_reference,
    "kcore": kcore_reference,
    "sswp": sswp_reference,
    "ppr": ppr_reference,
}


_KERNELS: Dict[str, Callable[..., StreamKernel]] = {
    "pagerank": PageRankKernel,
    "bfs": BFSKernel,
    "sssp": SSSPKernel,
    "spmv": SpMVKernel,
    "wcc": WCCKernel,
    "kcore": KCoreKernel,
    "sswp": SSWPKernel,
    "ppr": PPRKernel,
}

#: Algorithms whose semantics need edge weights (the dataset analogs
#: default to weighted generation for these).
_WEIGHTED: Tuple[str, ...] = ("sssp", "sswp")

#: Run kwargs forwarded to ``initial_properties`` in functional mode
#: (every deployment filters with the same tuple).
PROGRAM_INIT_KEYS: Tuple[str, ...] = ("source", "x", "seed")

#: Program-constructor keywords, per algorithm; everything else in a
#: run's kwargs goes to the reference call only.
_CTOR_KEYS: Dict[str, Tuple[str, ...]] = {
    "pagerank": ("damping", "tolerance"),
    "bfs": ("source",),
    "sssp": ("source",),
    "spmv": (),
    "cf": ("features", "epochs"),
    "wcc": (),
    "kcore": ("k",),
    "sswp": ("source",),
    "ppr": ("source", "damping", "tolerance"),
}


def list_algorithms() -> Tuple[str, ...]:
    """Names of every registered algorithm."""
    return tuple(_PROGRAMS)


def weighted_algorithms() -> Tuple[str, ...]:
    """Algorithms that need weighted dataset analogs."""
    return _WEIGHTED


def get_program(name: str, **kwargs) -> VertexProgram:
    """Instantiate a vertex program by name (constructor kwargs pass
    through, e.g. ``source=3`` for BFS/SSSP)."""
    key = name.lower()
    if key not in _PROGRAMS:
        raise ConfigError(
            f"unknown algorithm {name!r}; known: {', '.join(_PROGRAMS)}"
        )
    return _PROGRAMS[key](**kwargs)


def resolve_program(algorithm, kwargs: Dict[str, object]):
    """Split a run's kwargs into a constructed program + reference kwargs.

    ``algorithm`` may be a registered name or a ready
    :class:`VertexProgram`.  The program is built with its constructor
    keywords (``features=64`` reaches the CF program, so cost charging
    sees the same parameters the reference computes with); the full
    kwargs are returned for the reference call, which accepts them all.
    Returns ``(program, reference_kwargs)``.
    """
    if isinstance(algorithm, VertexProgram):
        return algorithm, dict(kwargs)
    ctor_keys = _CTOR_KEYS.get(algorithm.lower(), ())
    ctor_kwargs = {k: v for k, v in kwargs.items() if k in ctor_keys}
    return get_program(algorithm, **ctor_kwargs), dict(kwargs)


def get_stream_kernel(name: str) -> Callable[..., StreamKernel]:
    """The algorithm's chunked exact-kernel factory (out-of-core path).

    Factories take ``(num_vertices, out_degrees, **reference_kwargs)``.
    Algorithms without a streamable form (collaborative filtering's
    matrix-valued properties) raise :class:`ConfigError`.
    """
    key = name.lower()
    if key not in _KERNELS:
        raise ConfigError(
            f"{name!r} cannot run block-streamed out-of-core (no "
            f"streamed kernel); available: {', '.join(_KERNELS)}"
        )
    return _KERNELS[key]


def run_reference(name: str, graph: Graph, **kwargs) -> AlgorithmResult:
    """Run the exact reference implementation of an algorithm."""
    key = name.lower()
    if key not in _REFERENCES:
        raise ConfigError(
            f"unknown algorithm {name!r}; known: {', '.join(_REFERENCES)}"
        )
    return _REFERENCES[key](graph, **kwargs)
