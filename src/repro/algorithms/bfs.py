"""Breadth-first search as a vertex program (Table 2 row 3).

BFS is the unweighted special case of SSSP: ``processEdge`` computes
``1 + V.prop`` and ``reduce`` takes the minimum, yielding each vertex's
level (hop distance from the source).  It is a parallel-add-op program
with an active-vertex list.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["BFSProgram", "bfs_reference", "UNREACHABLE"]

#: Property value for unreached vertices — the paper's reserved maximum
#: cell value ``M``.  2**16 - 1 is the 16-bit fixed-point ceiling.
UNREACHABLE = float((1 << 16) - 1)


class BFSProgram(VertexProgram):
    """Vertex-program descriptor for BFS."""

    name = "bfs"
    pattern = MappingPattern.PARALLEL_ADD_OP
    reduce_op = "min"
    needs_active_list = True
    reduce_identity = UNREACHABLE

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise GraphFormatError("source must be non-negative")
        self.source = int(source)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Level 0 at the source, unreachable everywhere else."""
        source = int(kwargs.get("source", self.source))
        if not 0 <= source < graph.num_vertices:
            raise GraphFormatError(
                f"source {source} out of range for {graph.num_vertices} vertices"
            )
        props = np.full(graph.num_vertices, UNREACHABLE)
        props[source] = 0.0
        return props

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Every present edge contributes 1 hop."""
        return np.ones(graph.num_edges)

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """No level changed — the frontier died out."""
        return bool(np.array_equal(old_properties, new_properties))


def bfs_reference(graph: Graph, source: int = 0,
                  max_iterations: int = 0) -> AlgorithmResult:
    """Level-synchronous BFS with a frontier trace.

    ``max_iterations`` of 0 means unbounded (BFS terminates in at most
    ``|V|`` levels).  The trace's ``frontiers`` list holds the active
    source mask per iteration; the platform models use it to count the
    subgraphs/edges actually touched.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range")
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)

    levels = np.full(n, UNREACHABLE)
    levels[source] = 0.0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    limit = max_iterations if max_iterations > 0 else n + 1

    trace = IterationTrace(frontiers=[])
    iterations = 0
    while frontier.any() and iterations < limit:
        iterations += 1
        edge_mask = frontier[src]
        trace.record(vertices=int(frontier.sum()),
                     edges=int(edge_mask.sum()),
                     frontier=frontier)
        # Level-synchronous step: every frontier vertex sits at level
        # iterations-1, so unvisited neighbours get level = iterations.
        candidates = dst[edge_mask]
        fresh = candidates[levels[candidates] == UNREACHABLE]
        levels[fresh] = float(iterations)
        frontier = np.zeros(n, dtype=bool)
        frontier[fresh] = True
    return AlgorithmResult(
        algorithm="bfs",
        values=levels,
        iterations=iterations,
        converged=not frontier.any(),
        trace=trace,
    )
