"""Breadth-first search as a vertex program (Table 2 row 3).

BFS is the unweighted special case of SSSP: ``processEdge`` computes
``1 + V.prop`` and ``reduce`` takes the minimum, yielding each vertex's
level (hop distance from the source).  It is a parallel-add-op program
with an active-vertex list.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["BFSProgram", "BFSKernel", "bfs_reference", "UNREACHABLE"]

#: Property value for unreached vertices — the paper's reserved maximum
#: cell value ``M``.  2**16 - 1 is the 16-bit fixed-point ceiling.
UNREACHABLE = float((1 << 16) - 1)


class BFSProgram(VertexProgram):
    """Vertex-program descriptor for BFS."""

    name = "bfs"
    pattern = MappingPattern.PARALLEL_ADD_OP
    reduce_op = "min"
    needs_active_list = True
    reduce_identity = UNREACHABLE

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise GraphFormatError("source must be non-negative")
        self.source = int(source)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Level 0 at the source, unreachable everywhere else."""
        source = int(kwargs.get("source", self.source))
        if not 0 <= source < graph.num_vertices:
            raise GraphFormatError(
                f"source {source} out of range for {graph.num_vertices} vertices"
            )
        props = np.full(graph.num_vertices, UNREACHABLE)
        props[source] = 0.0
        return props

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """Every present edge contributes 1 hop."""
        return np.ones(len(src))

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return np.ones(graph.num_edges)

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """No level changed — the frontier died out."""
        return bool(np.array_equal(old_properties, new_properties))


class BFSKernel(StreamKernel):
    """:func:`bfs_reference`, one edge chunk at a time.

    Level values are small integers, so chunked discovery is exactly
    the reference's level-synchronous step: a vertex discovered by an
    earlier chunk of the same pass would be re-assigned the same level
    by later chunks anyway.
    """

    algorithm = "bfs"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 source: int = 0, max_iterations: int = 0) -> None:
        super().__init__(num_vertices)
        n = self.num_vertices
        if not 0 <= source < n:
            raise GraphFormatError(f"source {source} out of range")
        self._levels = np.full(n, UNREACHABLE)
        self._levels[source] = 0.0
        self.frontier = np.zeros(n, dtype=bool)
        self.frontier[source] = True
        self._limit = max_iterations if max_iterations > 0 else n + 1
        self.trace = IterationTrace(frontiers=[])
        self.values = self._levels

    def begin_pass(self) -> None:
        self._next = np.zeros(self.num_vertices, dtype=bool)
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        edge_mask = self.frontier[np.asarray(src)]
        self._pass_edges += int(edge_mask.sum())
        candidates = np.asarray(dst)[edge_mask]
        fresh = candidates[self._levels[candidates] == UNREACHABLE]
        self._levels[fresh] = float(self.iterations + 1)
        self._next[fresh] = True

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=int(self.frontier.sum()),
                          edges=self._pass_edges,
                          frontier=self.frontier)
        self.frontier = self._next
        self.values = self._levels
        if not self.frontier.any() or self.iterations >= self._limit:
            self.converged = not self.frontier.any()
            self.finished = True


def bfs_reference(graph: Graph, source: int = 0,
                  max_iterations: int = 0) -> AlgorithmResult:
    """Level-synchronous BFS with a frontier trace.

    ``max_iterations`` of 0 means unbounded (BFS terminates in at most
    ``|V|`` levels).  The trace's ``frontiers`` list holds the active
    source mask per iteration; the platform models use it to count the
    subgraphs/edges actually touched.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range")
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)

    levels = np.full(n, UNREACHABLE)
    levels[source] = 0.0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    limit = max_iterations if max_iterations > 0 else n + 1

    trace = IterationTrace(frontiers=[])
    iterations = 0
    while frontier.any() and iterations < limit:
        iterations += 1
        edge_mask = frontier[src]
        trace.record(vertices=int(frontier.sum()),
                     edges=int(edge_mask.sum()),
                     frontier=frontier)
        # Level-synchronous step: every frontier vertex sits at level
        # iterations-1, so unvisited neighbours get level = iterations.
        candidates = dst[edge_mask]
        fresh = candidates[levels[candidates] == UNREACHABLE]
        levels[fresh] = float(iterations)
        frontier = np.zeros(n, dtype=bool)
        frontier[fresh] = True
    return AlgorithmResult(
        algorithm="bfs",
        values=levels,
        iterations=iterations,
        converged=not frontier.any(),
        trace=trace,
    )
