"""Collaborative filtering on a bipartite rating graph (Section 5.1).

The paper runs CF on Netflix with feature length 32 (GraphChi's SGD
matrix factorisation on CPU, cuMF_SGD on GPU).  We implement
mini-batch-free vectorised SGD over the rating edges: user and item
factor matrices ``P (users x F)`` and ``Q (items x F)`` minimise
``sum (r_ui - p_u . q_i)^2 + lambda (|p|^2 + |q|^2)``.

On GraphR, each SGD epoch streams the rating matrix through the GEs
once per feature direction — a parallel-MAC workload: the dot products
``p_u . q_i`` for all edges of a subgraph are F MAC passes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["CollaborativeFilteringProgram", "cf_reference", "cf_rmse"]

DEFAULT_FEATURES = 32
DEFAULT_EPOCHS = 10
DEFAULT_LEARNING_RATE = 0.01
DEFAULT_REGULARIZATION = 0.05


class CollaborativeFilteringProgram(VertexProgram):
    """Vertex-program descriptor for CF (parallel-MAC, F passes/epoch)."""

    name = "cf"
    pattern = MappingPattern.PARALLEL_MAC
    reduce_op = "add"
    needs_active_list = False
    reduce_identity = 0.0

    def __init__(self, features: int = DEFAULT_FEATURES,
                 epochs: int = DEFAULT_EPOCHS) -> None:
        if features <= 0 or epochs <= 0:
            raise GraphFormatError("features and epochs must be positive")
        self.features = int(features)
        self.epochs = int(epochs)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Flattened random factors (deterministic seed)."""
        rng = np.random.default_rng(kwargs.get("seed", 0))
        return rng.normal(0.0, 0.1,
                          size=(graph.num_vertices, self.features))

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """The rating value stored per edge."""
        return np.asarray(graph.adjacency.values, dtype=np.float64)

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """Fixed epoch budget (SGD has no natural fixed point here)."""
        return iteration >= self.epochs


def cf_reference(
    graph: Graph,
    features: int = DEFAULT_FEATURES,
    epochs: int = DEFAULT_EPOCHS,
    learning_rate: float = DEFAULT_LEARNING_RATE,
    regularization: float = DEFAULT_REGULARIZATION,
    seed: int = 0,
) -> AlgorithmResult:
    """Vectorised SGD matrix factorisation.

    Every epoch processes all rating edges once; the trace therefore
    records ``|E|`` active edges per epoch times ``F`` feature work —
    platform models scale per-edge cost by ``features``.
    """
    n = graph.num_vertices
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    ratings = np.asarray(graph.adjacency.values, dtype=np.float64)
    if ratings.size == 0:
        raise GraphFormatError("CF needs at least one rating edge")

    rng = np.random.default_rng(seed)
    factors = rng.normal(0.0, 0.1, size=(n, features))

    trace = IterationTrace()
    rmse = float("inf")
    for _ in range(epochs):
        predictions = np.einsum("ef,ef->e", factors[src], factors[dst])
        errors = ratings - predictions
        rmse = float(np.sqrt(np.mean(errors ** 2)))
        # Gradient step, accumulated per vertex (vectorised "Jacobi" SGD:
        # all edges use the epoch-start factors, updates applied at once).
        grad = np.zeros_like(factors)
        np.add.at(grad, src,
                  errors[:, None] * factors[dst]
                  - regularization * factors[src])
        np.add.at(grad, dst,
                  errors[:, None] * factors[src]
                  - regularization * factors[dst])
        degree = np.bincount(np.concatenate([src, dst]), minlength=n)
        scale = np.maximum(degree, 1)[:, None]
        factors = factors + learning_rate * grad / np.sqrt(scale)
        trace.record(vertices=n, edges=ratings.size)
    return AlgorithmResult(
        algorithm="cf",
        values=factors,
        iterations=epochs,
        converged=True,
        trace=trace,
    )


def cf_rmse(graph: Graph, factors: np.ndarray) -> float:
    """Root-mean-square rating reconstruction error of a factor matrix."""
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    ratings = np.asarray(graph.adjacency.values, dtype=np.float64)
    factors = np.asarray(factors, dtype=np.float64)
    if factors.ndim != 2 or factors.shape[0] != graph.num_vertices:
        raise GraphFormatError(
            "factors must be (num_vertices, F)"
        )
    predictions = np.einsum("ef,ef->e", factors[src], factors[dst])
    return float(np.sqrt(np.mean((ratings - predictions) ** 2)))
