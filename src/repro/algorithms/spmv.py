"""Sparse matrix-vector multiplication as a vertex program (Table 2 row 1).

The paper's SpMV program computes, for every destination vertex,
``sum over in-edges of (V.prop / V.outdegree * E.weight)`` — i.e. one
multiplication pass of the normalised adjacency against the property
vector.  It is the purest parallel-MAC workload (a single iteration,
no convergence loop), which is why it shows the paper's largest
speedups (Figure 17).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["SpMVProgram", "SpMVKernel", "spmv_reference"]


class SpMVProgram(VertexProgram):
    """Vertex-program descriptor for one SpMV pass."""

    name = "spmv"
    pattern = MappingPattern.PARALLEL_MAC
    reduce_op = "add"
    needs_active_list = False
    reduce_identity = 0.0

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """The input vector ``x`` (default: all ones)."""
        x = kwargs.get("x")
        if x is None:
            return np.ones(graph.num_vertices)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (graph.num_vertices,):
            raise GraphFormatError(
                f"x length {x.shape} != {graph.num_vertices} vertices"
            )
        return x

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """``E.weight / outdeg(src)`` per edge."""
        out_deg = np.asarray(out_degrees).astype(np.float64)
        weights = np.asarray(values, dtype=np.float64)
        return weights / out_deg[np.asarray(src)]

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return self.edge_coefficients(graph.adjacency.rows,
                                      graph.adjacency.values,
                                      graph.out_degrees())

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """SpMV is a single pass."""
        return True


class SpMVKernel(StreamKernel):
    """:func:`spmv_reference`, one edge chunk at a time (single pass)."""

    algorithm = "spmv"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 x: Optional[np.ndarray] = None) -> None:
        super().__init__(num_vertices)
        n = self.num_vertices
        if x is None:
            x = np.ones(n)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise GraphFormatError(f"x length {x.shape} != {n} vertices")
        self._x = x
        out_deg = np.asarray(out_degrees).astype(np.float64)
        self._safe_deg = np.where(out_deg > 0, out_deg, 1.0)

    def begin_pass(self) -> None:
        self._y = np.zeros(self.num_vertices)
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        src = np.asarray(src)
        weights = np.asarray(values, dtype=np.float64)
        np.add.at(self._y, np.asarray(dst),
                  weights / self._safe_deg[src] * self._x[src])
        self._pass_edges += len(src)

    def end_pass(self) -> None:
        self.iterations = 1
        self.trace.record(vertices=self.num_vertices,
                          edges=self._pass_edges)
        self.values = self._y
        self.converged = True
        self.finished = True


def spmv_reference(graph: Graph,
                   x: Optional[np.ndarray] = None) -> AlgorithmResult:
    """Exact single-pass SpMV ``y[v] = sum_u w(u,v)/outdeg(u) * x[u]``."""
    n = graph.num_vertices
    if x is None:
        x = np.ones(n)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise GraphFormatError(f"x length {x.shape} != {n} vertices")
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)
    weights = np.asarray(graph.adjacency.values, dtype=np.float64)
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)

    y = np.zeros(n)
    np.add.at(y, dst, weights / safe_deg[src] * x[src])
    trace = IterationTrace()
    trace.record(vertices=n, edges=graph.num_edges)
    return AlgorithmResult(
        algorithm="spmv",
        values=y,
        iterations=1,
        converged=True,
        trace=trace,
    )
