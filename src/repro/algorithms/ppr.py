"""Personalized PageRank: the restart-vector variant of PageRank.

Instead of teleporting uniformly, every restart jumps back to one
personalization vertex ``s``:

    PPR_{t+1} = r * M @ PPR_t + (1 - r) * e_s

so the stationary vector ranks vertices by their proximity to ``s`` —
the building block of recommendation / "who-to-follow" scenarios.  The
crossbar mapping is PageRank's (parallel-MAC, ``r * M`` stored in the
cells); only the Phase 2 apply differs, adding ``(1 - r)`` to the
restart vertex alone instead of ``(1 - r)/|V|`` everywhere.  As in the
paper's PageRank formulation, dangling mass leaks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, GraphFormatError
from repro.algorithms.kernels import StreamKernel
from repro.algorithms.pagerank import (DEFAULT_DAMPING,
                                       DEFAULT_MAX_ITERATIONS,
                                       DEFAULT_TOLERANCE)
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["PPRProgram", "PPRKernel", "ppr_reference"]


def _checked_source(source: int, num_vertices: int) -> int:
    source = int(source)
    if not 0 <= source < num_vertices:
        raise GraphFormatError(
            f"source {source} out of range for {num_vertices} vertices")
    return source


class PPRProgram(VertexProgram):
    """Vertex-program descriptor for personalized PageRank."""

    name = "ppr"
    pattern = MappingPattern.PARALLEL_MAC
    reduce_op = "add"
    needs_active_list = False
    reduce_identity = 0.0
    unit_interval_coefficients = True

    def __init__(self, source: int = 0,
                 damping: float = DEFAULT_DAMPING,
                 tolerance: float = DEFAULT_TOLERANCE) -> None:
        if source < 0:
            raise GraphFormatError("source must be non-negative")
        if not 0.0 < damping < 1.0:
            # repro: noqa REP106 - library-style constructor contract
            raise ValueError("damping must be in (0, 1)")
        if tolerance <= 0.0:
            # repro: noqa REP106 - library-style constructor contract
            raise ValueError("tolerance must be positive")
        self.source = int(source)
        self.damping = float(damping)
        self.tolerance = float(tolerance)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """All mass on the personalization vertex."""
        source = _checked_source(kwargs.get("source", self.source),
                                 graph.num_vertices)
        rank = np.zeros(graph.num_vertices)
        rank[source] = 1.0
        return rank

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """``r / outdeg(src)`` per edge — identical to PageRank's."""
        out_deg = np.asarray(out_degrees).astype(np.float64)
        return self.damping / out_deg[np.asarray(src)]

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return self.edge_coefficients(graph.adjacency.rows, None,
                                      graph.out_degrees())

    def apply(self, reduced: np.ndarray, old_properties: np.ndarray,
              graph: Graph) -> np.ndarray:
        """Add the restart term ``(1 - r)`` at the source alone."""
        _checked_source(self.source, graph.num_vertices)
        new = np.asarray(reduced).copy()
        new[self.source] += 1.0 - self.damping
        return new

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """L1 change below tolerance."""
        delta = float(np.abs(new_properties - old_properties).sum())
        return delta < self.tolerance


class PPRKernel(StreamKernel):
    """:func:`ppr_reference`, one edge chunk at a time.

    The PageRank kernel with the teleport vector concentrated on the
    restart vertex; same chunked scatter, hence bit-identical on the
    same streaming-ordered edge list.
    """

    algorithm = "ppr"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 source: int = 0,
                 damping: float = DEFAULT_DAMPING,
                 tolerance: float = DEFAULT_TOLERANCE,
                 max_iterations: int = DEFAULT_MAX_ITERATIONS,
                 raise_on_divergence: bool = False) -> None:
        super().__init__(num_vertices)
        self._source = _checked_source(source, self.num_vertices)
        self.damping = float(damping)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.raise_on_divergence = bool(raise_on_divergence)
        out_deg = np.asarray(out_degrees).astype(np.float64)
        self._safe_deg = np.where(out_deg > 0, out_deg, 1.0)
        self._rank = np.zeros(self.num_vertices)
        self._rank[self._source] = 1.0
        self.finished = self.max_iterations < 1
        self.values = self._rank

    def begin_pass(self) -> None:
        self._contrib = self.damping * self._rank / self._safe_deg
        self._acc = np.zeros(self.num_vertices)
        self._acc[self._source] = 1.0 - self.damping
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        np.add.at(self._acc, np.asarray(dst),
                  self._contrib[np.asarray(src)])
        self._pass_edges += len(src)

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=self.num_vertices,
                          edges=self._pass_edges)
        delta = float(np.abs(self._acc - self._rank).sum())
        self._rank = self._acc
        self.values = self._rank
        if delta < self.tolerance:
            self.converged = True
            self.finished = True
        elif self.iterations >= self.max_iterations:
            self.finished = True
            if self.raise_on_divergence:
                raise ConvergenceError(
                    f"personalized PageRank did not converge in "
                    f"{self.max_iterations} iterations"
                )


def ppr_reference(
    graph: Graph,
    source: int = 0,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_divergence: bool = False,
) -> AlgorithmResult:
    """Exact power-iteration personalized PageRank with a trace.

    Parameters mirror :class:`PPRProgram`.  Every iteration processes
    all edges (no active list), like PageRank.
    """
    n = graph.num_vertices
    source = _checked_source(source, n)
    adj = graph.adjacency
    src = np.asarray(adj.rows)
    dst = np.asarray(adj.cols)
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)

    rank = np.zeros(n)
    rank[source] = 1.0
    trace = IterationTrace()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        contrib = damping * rank / safe_deg
        new_rank = np.zeros(n)
        new_rank[source] = 1.0 - damping
        np.add.at(new_rank, dst, contrib[src])
        trace.record(vertices=n, edges=adj.nnz)
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        if delta < tolerance:
            converged = True
            break
    if not converged and raise_on_divergence:
        raise ConvergenceError(
            f"personalized PageRank did not converge in "
            f"{max_iterations} iterations"
        )
    return AlgorithmResult(
        algorithm="ppr",
        values=rank,
        iterations=iterations,
        converged=converged,
        trace=trace,
    )
