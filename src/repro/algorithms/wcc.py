"""Weakly connected components via min-label propagation.

Not one of the paper's four evaluated workloads, but squarely inside
its claim that "GraphR is general because it could accelerate all
vertex programs that can be performed in SpMV form": the program is

    processEdge:  E.value = V.prop          (add-op with addend 0)
    reduce:       V.prop = min(V.prop, E.value)

over the *symmetrized* edge set, with labels initialised to vertex ids.
After convergence every vertex holds the smallest vertex id of its
weakly connected component.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["WCCProgram", "WCCKernel", "wcc_reference", "component_sizes"]


class WCCProgram(VertexProgram):
    """Vertex-program descriptor for weakly connected components.

    The controller should be handed an already-symmetrized graph
    (:meth:`repro.graph.graph.Graph.symmetrized`); the descriptor
    validates nothing about symmetry itself — on a directed edge set it
    computes the min-label *forward* propagation instead.
    """

    name = "wcc"
    pattern = MappingPattern.PARALLEL_ADD_OP
    reduce_op = "min"
    needs_active_list = True
    #: Labels are vertex ids; the identity must exceed every id.
    reduce_identity = float((1 << 16) - 1)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Every vertex starts in its own component."""
        if graph.num_vertices >= (1 << 16) - 1:
            raise GraphFormatError(
                "WCC labels must fit the 16-bit fixed-point range"
            )
        return np.arange(graph.num_vertices, dtype=np.float64)

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """Addend zero: the label passes through unchanged."""
        return np.zeros(len(src))

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return np.zeros(graph.num_edges)


class WCCKernel(StreamKernel):
    """:func:`wcc_reference`, one edge chunk at a time.

    ``symmetrize`` relaxes each directed chunk edge in both directions
    instead of materialising the mirrored edge set — min-label
    propagation is duplicate-insensitive, so labels, frontiers and
    iteration counts match the reference exactly (the per-pass trace
    ``edges`` counts directed active edges, which is what the cost
    model streams).
    """

    algorithm = "wcc"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 symmetrize: bool = True, max_iterations: int = 0) -> None:
        super().__init__(num_vertices)
        n = self.num_vertices
        self._symmetrize = bool(symmetrize)
        self._labels = np.arange(n, dtype=np.float64)
        self.frontier = np.ones(n, dtype=bool)
        self._limit = max_iterations if max_iterations > 0 else n + 1
        self.trace = IterationTrace(frontiers=[])
        self.values = self._labels

    def begin_pass(self) -> None:
        self._proposed = self._labels.copy()
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        src = np.asarray(src)
        dst = np.asarray(dst)
        mask = self.frontier[src]
        self._pass_edges += int(mask.sum())
        np.minimum.at(self._proposed, dst[mask], self._labels[src[mask]])
        if self._symmetrize:
            back = self.frontier[dst]
            np.minimum.at(self._proposed, src[back],
                          self._labels[dst[back]])

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=int(self.frontier.sum()),
                          edges=self._pass_edges,
                          frontier=self.frontier)
        improved = self._proposed < self._labels
        self._labels = self._proposed
        self.frontier = improved
        self.values = self._labels
        if not self.frontier.any() or self.iterations >= self._limit:
            self.converged = not self.frontier.any()
            self.finished = True


def wcc_reference(graph: Graph, symmetrize: bool = True,
                  max_iterations: int = 0) -> AlgorithmResult:
    """Min-label propagation with an iteration trace.

    ``symmetrize`` mirrors the edges first (true WCC); with it off the
    propagation follows edge direction only.
    """
    work = graph.symmetrized() if symmetrize else graph
    n = work.num_vertices
    src = np.asarray(work.adjacency.rows)
    dst = np.asarray(work.adjacency.cols)

    labels = np.arange(n, dtype=np.float64)
    frontier = np.ones(n, dtype=bool)
    limit = max_iterations if max_iterations > 0 else n + 1

    trace = IterationTrace(frontiers=[])
    iterations = 0
    while frontier.any() and iterations < limit:
        iterations += 1
        edge_mask = frontier[src]
        trace.record(vertices=int(frontier.sum()),
                     edges=int(edge_mask.sum()),
                     frontier=frontier)
        proposed = labels.copy()
        np.minimum.at(proposed, dst[edge_mask], labels[src[edge_mask]])
        improved = proposed < labels
        labels = proposed
        frontier = improved
    return AlgorithmResult(
        algorithm="wcc",
        values=labels,
        iterations=iterations,
        converged=not frontier.any(),
        trace=trace,
    )


def component_sizes(labels: np.ndarray) -> dict[int, int]:
    """``component label -> member count`` from a WCC result."""
    labels = np.asarray(labels).astype(np.int64)
    unique, counts = np.unique(labels, return_counts=True)
    return {int(u): int(c) for u, c in zip(unique, counts)}
