"""PageRank (Figure 13): the canonical parallel-MAC program.

Iterates ``PR_{t+1} = r * M @ PR_t + (1 - r) * e`` where ``M`` is the
column-stochastic transition matrix (``M[v, u] = 1/outdeg(u)`` for each
edge ``u -> v``) and ``e`` is the uniform vector.  GraphR stores
``r * M`` in the crossbars and implements the ``(1-r) e`` addition with
an extra always-on row (Figure 16 b3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["PageRankProgram", "pagerank_reference"]

#: The paper's example uses r = 4/5; the standard damping is 0.85.
DEFAULT_DAMPING = 0.85
DEFAULT_TOLERANCE = 1e-7
DEFAULT_MAX_ITERATIONS = 100


class PageRankProgram(VertexProgram):
    """Vertex-program descriptor for PageRank (Table 2 row 2)."""

    name = "pagerank"
    pattern = MappingPattern.PARALLEL_MAC
    reduce_op = "add"
    needs_active_list = False
    reduce_identity = 0.0
    unit_interval_coefficients = True

    def __init__(self, damping: float = DEFAULT_DAMPING,
                 tolerance: float = DEFAULT_TOLERANCE) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.damping = float(damping)
        self.tolerance = float(tolerance)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Uniform distribution ``1/|V|``."""
        n = graph.num_vertices
        return np.full(n, 1.0 / n)

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """``r / outdeg(src)`` per edge — the entries of ``r * M``.

        Dangling sources (outdeg 0) contribute no edges, so no
        coefficient exists for them; their rank mass leaks, as in the
        paper's formulation.
        """
        out_deg = graph.out_degrees().astype(np.float64)
        src = np.asarray(graph.adjacency.rows)
        return self.damping / out_deg[src]

    def apply(self, reduced: np.ndarray, old_properties: np.ndarray,
              graph: Graph) -> np.ndarray:
        """Add the teleport term ``(1 - r) / |V|`` (Figure 13, Phase 2)."""
        return reduced + (1.0 - self.damping) / graph.num_vertices

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """L1 change below tolerance."""
        delta = float(np.abs(new_properties - old_properties).sum())
        return delta < self.tolerance


def pagerank_reference(
    graph: Graph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_divergence: bool = False,
) -> AlgorithmResult:
    """Exact power-iteration PageRank with an iteration trace.

    Parameters mirror :class:`PageRankProgram`.  Every iteration
    processes all edges (PageRank keeps no active list), so the trace
    records ``|V|`` vertices and ``|E|`` edges per iteration.
    """
    n = graph.num_vertices
    adj = graph.adjacency
    src = np.asarray(adj.rows)
    dst = np.asarray(adj.cols)
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)

    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    trace = IterationTrace()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        contrib = damping * rank / safe_deg
        new_rank = np.full(n, teleport)
        np.add.at(new_rank, dst, contrib[src])
        trace.record(vertices=n, edges=adj.nnz)
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        if delta < tolerance:
            converged = True
            break
    if not converged and raise_on_divergence:
        raise ConvergenceError(
            f"PageRank did not converge in {max_iterations} iterations"
        )
    return AlgorithmResult(
        algorithm="pagerank",
        values=rank,
        iterations=iterations,
        converged=converged,
        trace=trace,
    )
