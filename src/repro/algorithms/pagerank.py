"""PageRank (Figure 13): the canonical parallel-MAC program.

Iterates ``PR_{t+1} = r * M @ PR_t + (1 - r) * e`` where ``M`` is the
column-stochastic transition matrix (``M[v, u] = 1/outdeg(u)`` for each
edge ``u -> v``) and ``e`` is the uniform vector.  GraphR stores
``r * M`` in the crossbars and implements the ``(1-r) e`` addition with
an extra always-on row (Figure 16 b3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["PageRankProgram", "PageRankKernel", "pagerank_reference"]

#: The paper's example uses r = 4/5; the standard damping is 0.85.
DEFAULT_DAMPING = 0.85
DEFAULT_TOLERANCE = 1e-7
DEFAULT_MAX_ITERATIONS = 100


class PageRankProgram(VertexProgram):
    """Vertex-program descriptor for PageRank (Table 2 row 2)."""

    name = "pagerank"
    pattern = MappingPattern.PARALLEL_MAC
    reduce_op = "add"
    needs_active_list = False
    reduce_identity = 0.0
    unit_interval_coefficients = True

    def __init__(self, damping: float = DEFAULT_DAMPING,
                 tolerance: float = DEFAULT_TOLERANCE) -> None:
        if not 0.0 < damping < 1.0:
            # repro: noqa REP106 - library-style constructor contract
            raise ValueError("damping must be in (0, 1)")
        if tolerance <= 0.0:
            # repro: noqa REP106 - library-style constructor contract
            raise ValueError("tolerance must be positive")
        self.damping = float(damping)
        self.tolerance = float(tolerance)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Uniform distribution ``1/|V|``."""
        n = graph.num_vertices
        return np.full(n, 1.0 / n)

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """``r / outdeg(src)`` per edge — the entries of ``r * M``.

        Dangling sources (outdeg 0) contribute no edges, so no
        coefficient exists for them; their rank mass leaks, as in the
        paper's formulation.
        """
        out_deg = np.asarray(out_degrees).astype(np.float64)
        return self.damping / out_deg[np.asarray(src)]

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return self.edge_coefficients(graph.adjacency.rows, None,
                                      graph.out_degrees())

    def apply(self, reduced: np.ndarray, old_properties: np.ndarray,
              graph: Graph) -> np.ndarray:
        """Add the teleport term ``(1 - r) / |V|`` (Figure 13, Phase 2)."""
        return reduced + (1.0 - self.damping) / graph.num_vertices

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """L1 change below tolerance."""
        delta = float(np.abs(new_properties - old_properties).sum())
        return delta < self.tolerance


class PageRankKernel(StreamKernel):
    """:func:`pagerank_reference`, one edge chunk at a time.

    Bit-identical to the reference on the same (streaming-ordered)
    edge list: each pass gathers the same per-source contribution
    vector and scatters it chunk by chunk in stream order.
    """

    algorithm = "pagerank"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 damping: float = DEFAULT_DAMPING,
                 tolerance: float = DEFAULT_TOLERANCE,
                 max_iterations: int = DEFAULT_MAX_ITERATIONS,
                 raise_on_divergence: bool = False) -> None:
        super().__init__(num_vertices)
        self.damping = float(damping)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.raise_on_divergence = bool(raise_on_divergence)
        out_deg = np.asarray(out_degrees).astype(np.float64)
        self._safe_deg = np.where(out_deg > 0, out_deg, 1.0)
        self._rank = np.full(self.num_vertices, 1.0 / self.num_vertices)
        self._teleport = (1.0 - self.damping) / self.num_vertices
        self.finished = self.max_iterations < 1
        self.values = self._rank

    def begin_pass(self) -> None:
        self._contrib = self.damping * self._rank / self._safe_deg
        self._acc = np.full(self.num_vertices, self._teleport)
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        np.add.at(self._acc, np.asarray(dst),
                  self._contrib[np.asarray(src)])
        self._pass_edges += len(src)

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=self.num_vertices,
                          edges=self._pass_edges)
        delta = float(np.abs(self._acc - self._rank).sum())
        self._rank = self._acc
        self.values = self._rank
        if delta < self.tolerance:
            self.converged = True
            self.finished = True
        elif self.iterations >= self.max_iterations:
            self.finished = True
            if self.raise_on_divergence:
                raise ConvergenceError(
                    f"PageRank did not converge in "
                    f"{self.max_iterations} iterations"
                )


def pagerank_reference(
    graph: Graph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    raise_on_divergence: bool = False,
) -> AlgorithmResult:
    """Exact power-iteration PageRank with an iteration trace.

    Parameters mirror :class:`PageRankProgram`.  Every iteration
    processes all edges (PageRank keeps no active list), so the trace
    records ``|V|`` vertices and ``|E|`` edges per iteration.
    """
    n = graph.num_vertices
    adj = graph.adjacency
    src = np.asarray(adj.rows)
    dst = np.asarray(adj.cols)
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)

    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    trace = IterationTrace()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        contrib = damping * rank / safe_deg
        new_rank = np.full(n, teleport)
        np.add.at(new_rank, dst, contrib[src])
        trace.record(vertices=n, edges=adj.nnz)
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        if delta < tolerance:
            converged = True
            break
    if not converged and raise_on_divergence:
        raise ConvergenceError(
            f"PageRank did not converge in {max_iterations} iterations"
        )
    return AlgorithmResult(
        algorithm="pagerank",
        values=rank,
        iterations=iterations,
        converged=converged,
        trace=trace,
    )
