"""k-core decomposition: sum-reduce peeling on the parallel-MAC pattern.

Not one of the paper's evaluated workloads, but inside its generality
claim (any vertex program whose reduce is a sum or a min/max): peeling
is

    processEdge:  E.value = 1            (from each *peeling* source)
    reduce:       V.prop  = sum(E.value)
    apply:        V.prop  = V.prop - reduced; peel when V.prop < k

over the directed edge set — a vertex's support is the number of
in-edges from sources still in the core, and vertices whose support
drops below ``k`` are removed round by round until the (k, in-degree)
core remains.  Hand the controller a symmetrized graph
(:meth:`repro.graph.graph.Graph.symmetrized`) for classic undirected
k-core semantics, exactly like WCC.

The crossbar mapping stores coefficient 1 per edge; the wordline
presents 1 for every vertex peeling this round and 0 otherwise, so one
MAC sweep counts each destination's peeling in-neighbours.  The state
encoding keeps the whole program in one float vector:

* ``INIT`` (-2): not yet seeded — the first round everyone "fires"
  once, and the MAC sweep itself computes the in-degree vector (no
  deployment ever needs the degrees up front);
* ``>= 0``: remaining in-support of a live vertex; values below ``k``
  fire (announce removal) on the next round;
* ``REMOVED`` (-1): peeled out.

Every quantity is integer-valued, so functional runs are *exact*: the
fixed-point MAC on {0, 1} inputs and unit coefficients reproduces the
reference bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.kernels import StreamKernel
from repro.algorithms.vertex_program import (
    AlgorithmResult,
    IterationTrace,
    MappingPattern,
    VertexProgram,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["KCoreProgram", "KCoreKernel", "kcore_reference",
           "core_membership", "INIT", "REMOVED"]

#: Sentinel for "not yet seeded" (fires the degree-counting round).
INIT = -2.0
#: Sentinel for "peeled out of the core".
REMOVED = -1.0


def _firing(properties: np.ndarray, k: int) -> np.ndarray:
    """Vertices announcing themselves this round: the unseeded (degree
    sweep) plus live vertices whose support fell below ``k``."""
    properties = np.asarray(properties)
    return (properties == INIT) | ((properties >= 0) & (properties < k))


def _peel_step(properties: np.ndarray, reduced: np.ndarray,
               k: int) -> np.ndarray:
    """One apply step of the peeling program (shared by the reference,
    the stream kernel and the vertex program — one formula, three
    callers, so every execution layer peels identically).

    The support floor at 0 is a no-op in exact arithmetic (a vertex's
    firing in-neighbours are always still counted in its support, so
    ``reduced <= prop``) but keeps the state encoding closed when the
    functional engine adds read noise: a noise-inflated subtraction
    lands at 0 — which fires and peels next round — instead of below
    zero, where it would collide with the sentinels and freeze.
    """
    new = properties.copy()
    seed = properties == INIT
    new[seed] = np.maximum(reduced[seed], 0.0)
    fired = (properties >= 0) & (properties < k)
    new[fired] = REMOVED
    alive = properties >= k
    new[alive] = np.maximum(properties[alive] - reduced[alive], 0.0)
    return new


class KCoreProgram(VertexProgram):
    """Vertex-program descriptor for k-core peeling."""

    name = "kcore"
    pattern = MappingPattern.PARALLEL_MAC
    reduce_op = "add"
    needs_active_list = True
    reduce_identity = 0.0

    def __init__(self, k: int = 2) -> None:
        if int(k) < 1:
            raise GraphFormatError("k must be a positive integer")
        self.k = int(k)

    def initial_properties(self, graph: Graph, **kwargs) -> np.ndarray:
        """Everything unseeded: the first sweep counts the degrees."""
        return np.full(graph.num_vertices, INIT)

    def edge_coefficients(self, src: np.ndarray, values: np.ndarray,
                          out_degrees: np.ndarray) -> np.ndarray:
        """Unit coefficient: each edge carries one unit of support."""
        return np.ones(len(src))

    def crossbar_coefficient(self, graph: Graph) -> np.ndarray:
        """Whole-graph view of :meth:`edge_coefficients`."""
        return np.ones(graph.num_edges)

    def source_input(self, properties: np.ndarray,
                     graph: Graph) -> np.ndarray:
        """Drive 1 on the wordline of every firing vertex, 0 elsewhere."""
        return _firing(properties, self.k).astype(np.float64)

    def apply(self, reduced: np.ndarray, old_properties: np.ndarray,
              graph: Graph) -> np.ndarray:
        """Seed, peel, or decrement — see :func:`_peel_step`."""
        return _peel_step(np.asarray(old_properties), reduced, self.k)

    def has_converged(self, old_properties: np.ndarray,
                      new_properties: np.ndarray, iteration: int) -> bool:
        """No vertex seeded, peeled or lost support."""
        return bool(np.array_equal(old_properties, new_properties))


class KCoreKernel(StreamKernel):
    """:func:`kcore_reference`, one edge chunk at a time.

    Chunked ``np.add.at`` of unit contributions is exact integer
    arithmetic, so any chunking produces the reference's support
    counts bit for bit.
    """

    algorithm = "kcore"

    def __init__(self, num_vertices: int, out_degrees: np.ndarray,
                 k: int = 2, max_iterations: int = 0) -> None:
        super().__init__(num_vertices)
        if int(k) < 1:
            raise GraphFormatError("k must be a positive integer")
        self._k = int(k)
        n = self.num_vertices
        self._prop = np.full(n, INIT)
        self.frontier = np.ones(n, dtype=bool)
        self._limit = max_iterations if max_iterations > 0 else n + 2
        self.trace = IterationTrace(frontiers=[])
        self.values = self._prop

    def begin_pass(self) -> None:
        self._acc = np.zeros(self.num_vertices)
        self._pass_edges = 0

    def process_edges(self, src: np.ndarray, dst: np.ndarray,
                      values: np.ndarray) -> None:
        src = np.asarray(src)
        mask = self.frontier[src]
        self._pass_edges += int(mask.sum())
        np.add.at(self._acc, np.asarray(dst)[mask], 1.0)

    def end_pass(self) -> None:
        self.iterations += 1
        self.trace.record(vertices=int(self.frontier.sum()),
                          edges=self._pass_edges,
                          frontier=self.frontier)
        new = _peel_step(self._prop, self._acc, self._k)
        changed = not np.array_equal(new, self._prop)
        self._prop = new
        self.values = new
        self.frontier = _firing(new, self._k)
        if not changed or self.iterations >= self._limit:
            self.converged = not changed
            self.finished = True


def kcore_reference(graph: Graph, k: int = 2,
                    max_iterations: int = 0) -> AlgorithmResult:
    """Synchronous peeling with an iteration trace.

    The first pass fires every vertex (the degree-counting sweep);
    subsequent passes fire the vertices whose support dropped below
    ``k``.  The run ends with the pass that changes nothing (that
    confirming pass is counted, matching the functional loop's
    convergence test).  ``values`` holds the surviving in-support for
    core members and :data:`REMOVED` for peeled vertices.
    """
    if int(k) < 1:
        raise GraphFormatError("k must be a positive integer")
    k = int(k)
    n = graph.num_vertices
    src = np.asarray(graph.adjacency.rows)
    dst = np.asarray(graph.adjacency.cols)

    prop = np.full(n, INIT)
    firing = np.ones(n, dtype=bool)
    limit = max_iterations if max_iterations > 0 else n + 2

    trace = IterationTrace(frontiers=[])
    converged = False
    iterations = 0
    while iterations < limit:
        iterations += 1
        edge_mask = firing[src]
        trace.record(vertices=int(firing.sum()),
                     edges=int(edge_mask.sum()),
                     frontier=firing)
        reduced = np.zeros(n)
        np.add.at(reduced, dst[edge_mask], 1.0)
        new = _peel_step(prop, reduced, k)
        changed = not np.array_equal(new, prop)
        prop = new
        firing = _firing(new, k)
        if not changed:
            converged = True
            break
    return AlgorithmResult(
        algorithm="kcore",
        values=prop,
        iterations=iterations,
        converged=converged,
        trace=trace,
    )


def core_membership(values: np.ndarray) -> np.ndarray:
    """Boolean core mask from a k-core result's values."""
    return np.asarray(values) >= 0
