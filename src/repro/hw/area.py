"""First-order silicon area model for one GraphR node.

The paper discusses ADC area pressure qualitatively ("ADCs have
relatively higher area and power consumption, ADCs are not connected to
every bitline ... but shared"); this module quantifies the trade with
survey-class constants so the geometry sweeps can report area next to
time and energy.

Constants (32 nm class, consistent with the paper's CACTI setting):

* ReRAM cell: 4F^2 crosspoint, F = 32 nm -> ~0.004 um^2/cell; array
  overhead (drivers/sense) triples it.
* 8-bit 1 GSps SAR ADC: ~3000 um^2 (Murmann survey mid-range).
* sALU lane: ~200 um^2; 16-bit register: ~15 um^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily: repro.core depends on repro.hw
    from repro.core.config import GraphRConfig

__all__ = ["AreaParams", "node_area_mm2", "AreaBreakdown"]

_UM2_PER_MM2 = 1e6


@dataclass(frozen=True)
class AreaParams:
    """Per-component area constants in um^2."""

    cell_um2: float = 0.004
    array_overhead: float = 3.0         # drivers, mux, sense per array
    adc_um2: float = 3000.0
    salu_lane_um2: float = 200.0
    register_entry_um2: float = 15.0
    controller_um2: float = 50_000.0

    def __post_init__(self) -> None:
        if min(self.cell_um2, self.array_overhead, self.adc_um2,
               self.salu_lane_um2, self.register_entry_um2,
               self.controller_um2) <= 0:
            raise ConfigError("area constants must be positive")


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of one node, in mm^2."""

    crossbars_mm2: float
    adcs_mm2: float
    salu_mm2: float
    registers_mm2: float
    controller_mm2: float

    @property
    def total_mm2(self) -> float:
        """Sum of all components."""
        return (self.crossbars_mm2 + self.adcs_mm2 + self.salu_mm2
                + self.registers_mm2 + self.controller_mm2)

    def describe(self) -> str:
        """Multi-line text report."""
        rows = [
            ("crossbars", self.crossbars_mm2),
            ("ADCs", self.adcs_mm2),
            ("sALU", self.salu_mm2),
            ("registers", self.registers_mm2),
            ("controller", self.controller_mm2),
        ]
        lines = [f"  {name:11s} {area:8.4f} mm^2 "
                 f"({100 * area / self.total_mm2:5.1f}%)"
                 for name, area in rows]
        lines.append(f"  {'total':11s} {self.total_mm2:8.4f} mm^2")
        return "\n".join(lines)


def node_area_mm2(config: "GraphRConfig",
                  params: AreaParams | None = None) -> AreaBreakdown:
    """Area of the GE portion of one GraphR node.

    Memory-ReRAM storage is excluded — it replaces DRAM the system
    would need anyway; the accounted area is the compute overlay the
    accelerator *adds*.
    """
    params = params or AreaParams()
    s = config.crossbar_size
    cells_per_array = s * s
    arrays = config.crossbars_per_ge * config.num_ges
    crossbars = (arrays * cells_per_array * params.cell_um2
                 * params.array_overhead)

    adcs = config.adcs_per_ge * config.num_ges * params.adc_um2
    salu = config.num_ges * config.technology.salu.ops_per_cycle \
        * params.salu_lane_um2
    # RegI (tile_rows) + RegO (tile_cols) per node.
    registers = (config.tile_rows + config.tile_cols) \
        * params.register_entry_um2

    return AreaBreakdown(
        crossbars_mm2=crossbars / _UM2_PER_MM2,
        adcs_mm2=adcs / _UM2_PER_MM2,
        salu_mm2=salu / _UM2_PER_MM2,
        registers_mm2=registers / _UM2_PER_MM2,
        controller_mm2=params.controller_um2 / _UM2_PER_MM2,
    )
