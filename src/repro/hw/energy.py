"""Energy accounting: a named-counter ledger in joules.

Simulators never add floats ad hoc; they charge named events into an
:class:`EnergyLedger` so reports can break total energy into
device-level components (crossbar writes, ADC conversions, register
traffic, ...), mirroring how the paper's Section 5.4 attributes savings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ConfigError

__all__ = ["EnergyLedger"]


class EnergyLedger:
    """Accumulates ``(component -> joules)`` and ``(component -> count)``.

    Example
    -------
    >>> ledger = EnergyLedger()
    >>> ledger.charge("adc", count=128, energy_per_event_j=16e-12)
    >>> ledger.total_j
    2.048e-09
    """

    __slots__ = ("_energy_j", "_counts")

    def __init__(self) -> None:
        self._energy_j: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)

    def charge(self, component: str, count: int = 1,
               energy_per_event_j: float = 0.0) -> None:
        """Record ``count`` events of ``component``.

        ``energy_per_event_j`` may be zero to count events that are
        timing-only (the count still shows up in reports).
        """
        if count < 0:
            raise ConfigError("event count must be non-negative")
        if energy_per_event_j < 0:
            raise ConfigError("energy per event must be non-negative")
        self._counts[component] += int(count)
        self._energy_j[component] += count * energy_per_event_j

    def charge_joules(self, component: str, joules: float) -> None:
        """Record a lump of energy with no event count (e.g. static power
        integrated over runtime)."""
        if joules < 0:
            raise ConfigError("energy must be non-negative")
        self._energy_j[component] += joules

    # ------------------------------------------------------------------
    @property
    def total_j(self) -> float:
        """Total joules across every component."""
        return float(sum(self._energy_j.values()))

    def energy_of(self, component: str) -> float:
        """Joules charged to one component (0.0 if never charged)."""
        return self._energy_j.get(component, 0.0)

    def count_of(self, component: str) -> int:
        """Event count of one component (0 if never charged)."""
        return self._counts.get(component, 0)

    def components(self) -> Tuple[str, ...]:
        """All component names, sorted by descending energy."""
        return tuple(sorted(self._energy_j, key=self._energy_j.get,
                            reverse=True))

    def breakdown(self) -> Mapping[str, float]:
        """Copy of the ``component -> joules`` mapping."""
        return dict(self._energy_j)

    def counts(self) -> Mapping[str, int]:
        """Copy of the ``component -> event count`` mapping."""
        return dict(self._counts)

    @classmethod
    def from_parts(cls, breakdown: Mapping[str, float],
                   counts: Mapping[str, int]) -> "EnergyLedger":
        """Rebuild a ledger from serialized ``breakdown()``/``counts()``.

        Restores both maps verbatim — including insertion order, so
        ``total_j`` sums in the same order and reproduces the original
        float bit-for-bit.
        """
        ledger = cls()
        for component, joules in breakdown.items():
            if joules < 0:
                raise ConfigError("energy must be non-negative")
            ledger._energy_j[component] = float(joules)
        for component, count in counts.items():
            if count < 0:
                raise ConfigError("event count must be non-negative")
            ledger._counts[component] = int(count)
        return ledger

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger into this one."""
        for component, joules in other._energy_j.items():
            self._energy_j[component] += joules
        for component, count in other._counts.items():
            self._counts[component] += count

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._energy_j.items()))

    def __repr__(self) -> str:
        return f"EnergyLedger(total={self.total_j:.3e} J, components={len(self._energy_j)})"
