"""Technology and platform constants, in one auditable table.

Sources (mirroring Section 5.2 of the paper):

* ReRAM cell: HRS/LRS 25 MOhm / 50 kOhm, read 0.7 V, write 2.0 V,
  read/write latency 29.31 ns / 50.88 ns, read/write energy
  1.08 pJ / 3.91 nJ — Niu et al., ICCAD 2013 [44], as cited by the paper.
* 4-bit cells (conservative vs. the 5-bit programming reported in [26]);
  16-bit fixed-point data via four bit-slices recombined by shift-add.
* GE cycle 64 ns with one 1.0 GSps ADC shared by eight 8-bitline
  crossbars per GE (Section 3.2, "Data Format" and "ADC").
* On-chip registers modelled after CACTI 6.5 at 32 nm [1].
* ADC energy from the Murmann ADC survey [41].
* CPU: 2x Intel Xeon E5-2630 v3 (8 cores, 2.40 GHz, 20 MB L3, 85 W TDP
  each), 128 GB DRAM (Table 4); energy estimated from TDP as the paper
  does via Intel Product Specifications.
* GPU: NVIDIA Tesla K40c — 2880 CUDA cores, 745 MHz, 12 GB GDDR5 at
  288 GB/s, 235 W board power (Table 5; power via nvidia-smi in the
  paper).
* PIM: Tesseract [4] — 16 HMC cubes x 32 vaults, one in-order 2 GHz
  core per vault (512 cores), 8 TB/s aggregate internal bandwidth.

Every dataclass is frozen; experiments derive modified copies with
:func:`dataclasses.replace` for ablations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Mapping

from repro.errors import ConfigError

__all__ = [
    "ReRAMParams",
    "ADCParams",
    "RegisterParams",
    "SALUParams",
    "CPUParams",
    "GPUParams",
    "PIMParams",
    "DiskParams",
    "TechnologyParams",
    "default_technology",
    "technology_to_dict",
    "technology_from_dict",
]


@dataclass(frozen=True)
class ReRAMParams:
    """ReRAM cell and array constants ([44] via the paper)."""

    read_latency_s: float = 29.31e-9
    write_latency_s: float = 50.88e-9
    read_energy_j: float = 1.08e-12      # per cell read
    write_energy_j: float = 3.91e-9     # per cell write
    cell_bits: int = 4                   # conservative multi-level cell
    hrs_ohm: float = 25e6
    lrs_ohm: float = 50e3
    read_voltage_v: float = 0.7
    write_voltage_v: float = 2.0
    ge_cycle_s: float = 64e-9            # one streaming-apply GE cycle

    def __post_init__(self) -> None:
        if self.cell_bits <= 0 or self.cell_bits > 8:
            raise ConfigError("cell_bits must be in [1, 8]")
        if min(self.read_latency_s, self.write_latency_s, self.ge_cycle_s) <= 0:
            raise ConfigError("latencies must be positive")


@dataclass(frozen=True)
class ADCParams:
    """Shared analog-to-digital converter ([41])."""

    sample_rate_sps: float = 1.0e9       # 1.0 GSps (Section 3.2)
    resolution_bits: int = 8
    power_w: float = 16e-3               # ISAAC-class 8-bit 1 GSps ADC

    @property
    def energy_per_sample_j(self) -> float:
        """Joules per conversion = power / rate."""
        return self.power_w / self.sample_rate_sps


@dataclass(frozen=True)
class RegisterParams:
    """RegI/RegO register file at 32 nm (CACTI 6.5)."""

    read_energy_j: float = 0.3e-12       # per 16-bit entry
    write_energy_j: float = 0.6e-12
    access_latency_s: float = 0.5e-9


@dataclass(frozen=True)
class SALUParams:
    """Simple digital ALU performing reduce (add/min/...)."""

    op_energy_j: float = 0.5e-12
    op_latency_s: float = 1.0e-9
    ops_per_cycle: int = 64              # lanes per GE


@dataclass(frozen=True)
class CPUParams:
    """Dual-socket Xeon E5-2630 v3 platform (Table 4)."""

    sockets: int = 2
    cores_per_socket: int = 8
    threads: int = 32
    frequency_hz: float = 2.4e9
    ipc: float = 1.6                     # sustained on pointer-heavy code
    tdp_w_per_socket: float = 85.0
    dram_power_w: float = 25.0           # 128 GB DDR4, active
    dram_bandwidth_bps: float = 59e9     # 4-channel DDR4-1866, ~59 GB/s
    cache_line_bytes: int = 64
    l3_bytes: int = 20 * 1024 * 1024

    @property
    def total_power_w(self) -> float:
        """Package + DRAM power, the paper's TDP-based estimate."""
        return self.sockets * self.tdp_w_per_socket + self.dram_power_w

    @property
    def total_cores(self) -> int:
        """Physical cores across sockets."""
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True)
class GPUParams:
    """NVIDIA Tesla K40c platform (Table 5)."""

    cuda_cores: int = 2880
    frequency_hz: float = 745e6
    memory_bandwidth_bps: float = 288e9
    memory_bytes: int = 12 * 1024**3
    board_power_w: float = 235.0
    pcie_bandwidth_bps: float = 12e9     # PCIe 3.0 x16 effective
    kernel_launch_s: float = 8e-6
    simt_efficiency: float = 0.25        # divergence/irregularity derate


@dataclass(frozen=True)
class PIMParams:
    """Tesseract-style HMC processing-in-memory platform [4]."""

    cubes: int = 16
    vaults_per_cube: int = 32
    core_frequency_hz: float = 2.0e9
    core_ipc: float = 1.0                # single-issue in-order
    internal_bandwidth_bps: float = 8e12  # aggregate across cubes
    intercube_bandwidth_bps: float = 120e9
    message_overhead_cycles: int = 40    # put() injection + interrupt
    #: 16 HMC cubes at ~11 W each (DRAM + logic + SerDes links) plus 512
    #: in-order cores — consistent with Tesseract's reported budget.
    power_w: float = 220.0
    remote_edge_fraction: float = 0.75   # edges crossing vault boundaries

    @property
    def total_cores(self) -> int:
        """One in-order core per vault."""
        return self.cubes * self.vaults_per_cube


@dataclass(frozen=True)
class DiskParams:
    """Sequential-only disk, per the out-of-core workflow.

    Execution-time comparisons exclude disk I/O (Section 5.2), but the
    model exists so examples can report end-to-end numbers.
    """

    sequential_bandwidth_bps: float = 500e6
    power_w: float = 5.0


@dataclass(frozen=True)
class TechnologyParams:
    """Bundle of every platform's constants used in one experiment."""

    reram: ReRAMParams = field(default_factory=ReRAMParams)
    adc: ADCParams = field(default_factory=ADCParams)
    registers: RegisterParams = field(default_factory=RegisterParams)
    salu: SALUParams = field(default_factory=SALUParams)
    cpu: CPUParams = field(default_factory=CPUParams)
    gpu: GPUParams = field(default_factory=GPUParams)
    pim: PIMParams = field(default_factory=PIMParams)
    disk: DiskParams = field(default_factory=DiskParams)

    def with_reram(self, **kwargs) -> "TechnologyParams":
        """Copy with ReRAM constants overridden (ablation helper)."""
        return replace(self, reram=replace(self.reram, **kwargs))


def default_technology() -> TechnologyParams:
    """The constants used by every shipped benchmark."""
    return TechnologyParams()


def technology_to_dict(technology: TechnologyParams) -> Dict[str, Dict[str, object]]:
    """JSON-safe nested dictionary of every platform constant.

    Dataclass fields are plain numbers, so :func:`dataclasses.asdict`
    is already canonical; the result round-trips exactly through
    :func:`technology_from_dict`.
    """
    return asdict(technology)


def technology_from_dict(payload: Mapping[str, Mapping[str, object]]
                         ) -> TechnologyParams:
    """Rebuild a :class:`TechnologyParams` from its dictionary form.

    Missing sub-bundles or fields keep their defaults (so partial
    overrides from job files work); unknown names are rejected to catch
    typos early.
    """
    # Each TechnologyParams field's default_factory IS its bundle
    # class, so the registry derives from the dataclass itself and a
    # future ninth bundle needs no edit here.
    classes = {f.name: f.default_factory for f in
               fields(TechnologyParams)}
    kwargs = {}
    for name, value in payload.items():
        if name not in classes:
            raise ConfigError(f"unknown technology bundle {name!r}")
        cls = classes[name]
        known = {f.name for f in fields(cls)}
        unknown = set(value) - known
        if unknown:
            raise ConfigError(
                f"unknown {name} parameter(s): {', '.join(sorted(unknown))}")
        kwargs[name] = cls(**value)
    return TechnologyParams(**kwargs)
