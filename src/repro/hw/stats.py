"""Merged run statistics returned by every platform's ``run`` method."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.hw.energy import EnergyLedger
from repro.hw.timing import LatencyModel

__all__ = ["RunStats", "VOLATILE_EXTRA_KEYS"]

#: ``extra`` keys that carry observational telemetry with wall-clock
#: content (trace span trees).  They ride along in :meth:`RunStats.to_dict`
#: and the result cache, but two otherwise-identical runs will differ
#: here — :meth:`RunStats.identity_dict` strips them for bit-identity
#: comparisons.
VOLATILE_EXTRA_KEYS = ("trace",)


@dataclass
class RunStats:
    """What one simulated execution cost and how it went.

    Attributes
    ----------
    platform:
        ``"graphr"``, ``"cpu"``, ``"gpu"`` or ``"pim"``.
    algorithm:
        Algorithm name (``"pagerank"`` ...).
    dataset:
        Graph name the run used.
    seconds:
        Simulated execution time (excludes disk I/O, per Section 5.2).
    energy:
        Component-level energy ledger.
    latency:
        Phase-level latency breakdown summing to ``seconds``.
    iterations:
        Algorithm iterations executed.
    extra:
        Model-specific counters (non-empty subgraphs, cache hit rate...).
    """

    platform: str
    algorithm: str
    dataset: str
    seconds: float = 0.0
    energy: EnergyLedger = field(default_factory=EnergyLedger)
    latency: LatencyModel = field(default_factory=LatencyModel)
    iterations: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def joules(self) -> float:
        """Total simulated energy."""
        return self.energy.total_j

    def speedup_over(self, baseline: "RunStats") -> float:
        """``baseline.seconds / self.seconds`` (Figure 17/19/20 metric)."""
        if self.seconds <= 0:
            raise ZeroDivisionError("run has zero simulated time")
        return baseline.seconds / self.seconds

    def energy_saving_over(self, baseline: "RunStats") -> float:
        """``baseline.joules / self.joules`` (Figure 18/19/20 metric)."""
        if self.joules <= 0:
            raise ZeroDivisionError("run has zero simulated energy")
        return baseline.joules / self.joules

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"[{self.platform}] {self.algorithm} on {self.dataset}: "
            f"{self.seconds:.4g} s, {self.joules:.4g} J, "
            f"{self.iterations} iterations"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary of this run's statistics.

        Non-serializable ``extra`` values are dropped; everything else
        round-trips exactly through :meth:`from_dict` (JSON preserves
        Python floats losslessly), which the result cache and the
        process-pool runtime rely on.
        """
        return {
            "platform": self.platform,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "seconds": self.seconds,
            "joules": self.joules,
            "iterations": self.iterations,
            "energy_breakdown": dict(self.energy.breakdown()),
            "energy_counts": dict(self.energy.counts()),
            "latency_breakdown": dict(self.latency.breakdown()),
            "extra": {k: v for k, v in self.extra.items()
                      if isinstance(v, (str, int, float, bool, list,
                                        dict))},
        }

    def identity_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus volatile telemetry.

        The simulated *result* of a run — every second, joule and
        counter — with wall-clock observational extras (the trace span
        tree) removed, so bit-identity across serial/parallel,
        fresh/recovered and batch/service executions can be asserted
        even though each execution's trace timings necessarily differ.
        """
        payload = self.to_dict()
        extra = payload["extra"]
        for key in VOLATILE_EXTRA_KEYS:
            extra.pop(key, None)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunStats":
        """Rebuild stats from :meth:`to_dict` output (exactly)."""
        from repro.errors import ConfigError

        for key in ("platform", "algorithm", "dataset"):
            if key not in payload:
                raise ConfigError(f"stats payload missing {key!r}")
        return cls(
            platform=payload["platform"],
            algorithm=payload["algorithm"],
            dataset=payload["dataset"],
            seconds=float(payload.get("seconds", 0.0)),
            iterations=int(payload.get("iterations", 0)),
            extra=dict(payload.get("extra", {})),
            energy=EnergyLedger.from_parts(
                payload.get("energy_breakdown", {}),
                payload.get("energy_counts", {})),
            latency=LatencyModel.from_parts(
                payload.get("latency_breakdown", {})),
        )
