"""Latency accounting mirroring :class:`~repro.hw.energy.EnergyLedger`.

Simulated time is accumulated per named phase (``crossbar_program``,
``ge_compute``, ``reduce`` ...) so reports can show where cycles go.
Phases on parallel hardware should be charged with the *critical path*
duration, not the sum over parallel units — callers decide.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigError

__all__ = ["LatencyModel"]


class LatencyModel:
    """Accumulates ``(phase -> seconds)``."""

    __slots__ = ("_seconds",)

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = defaultdict(float)

    def add(self, phase: str, seconds: float) -> None:
        """Charge wall-clock seconds to a phase."""
        if seconds < 0:
            raise ConfigError("latency must be non-negative")
        self._seconds[phase] += seconds

    @property
    def total_s(self) -> float:
        """Total simulated seconds across phases."""
        return float(sum(self._seconds.values()))

    def seconds_of(self, phase: str) -> float:
        """Seconds charged to one phase (0.0 if never charged)."""
        return self._seconds.get(phase, 0.0)

    def phases(self) -> Tuple[str, ...]:
        """Phase names sorted by descending time."""
        return tuple(sorted(self._seconds, key=self._seconds.get,
                            reverse=True))

    def breakdown(self) -> Mapping[str, float]:
        """Copy of the ``phase -> seconds`` mapping."""
        return dict(self._seconds)

    @classmethod
    def from_parts(cls, breakdown: Mapping[str, float]) -> "LatencyModel":
        """Rebuild a model from a serialized ``breakdown()``, verbatim
        (insertion order included, so ``total_s`` sums identically)."""
        model = cls()
        for phase, seconds in breakdown.items():
            if seconds < 0:
                raise ConfigError("latency must be non-negative")
            model._seconds[phase] = float(seconds)
        return model

    def merge(self, other: "LatencyModel") -> None:
        """Fold another latency model into this one."""
        for phase, seconds in other._seconds.items():
            self._seconds[phase] += seconds

    def __repr__(self) -> str:
        return f"LatencyModel(total={self.total_s:.3e} s, phases={len(self._seconds)})"
