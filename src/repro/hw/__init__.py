"""Hardware modelling primitives: technology constants, energy ledger,
latency bookkeeping and merged run statistics.

All device numbers live in :mod:`repro.hw.params` in one auditable
table; simulators never embed magic constants.
"""

from repro.hw.params import (
    TechnologyParams,
    ReRAMParams,
    ADCParams,
    RegisterParams,
    SALUParams,
    CPUParams,
    GPUParams,
    PIMParams,
    DiskParams,
    default_technology,
)
from repro.hw.energy import EnergyLedger
from repro.hw.timing import LatencyModel
from repro.hw.stats import RunStats
from repro.hw.area import AreaBreakdown, AreaParams, node_area_mm2

__all__ = [
    "AreaBreakdown",
    "AreaParams",
    "node_area_mm2",
    "TechnologyParams",
    "ReRAMParams",
    "ADCParams",
    "RegisterParams",
    "SALUParams",
    "CPUParams",
    "GPUParams",
    "PIMParams",
    "DiskParams",
    "default_technology",
    "EnergyLedger",
    "LatencyModel",
    "RunStats",
]
