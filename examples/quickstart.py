#!/usr/bin/env python
"""Quickstart: PageRank on the WikiVote analog, on a GraphR node.

Runs the paper's headline workload end to end — generate the dataset
analog, execute PageRank on the simulated accelerator, and print the
top-ranked vertices with the simulated time/energy breakdown.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphR, GraphRConfig, dataset


def main() -> None:
    graph = dataset("WV")
    print(f"dataset: {graph}")

    accelerator = GraphR(GraphRConfig(mode="analytic"))
    print(f"accelerator: {accelerator}")

    result, stats = accelerator.run("pagerank", graph, max_iterations=30)

    print(f"\nconverged={result.converged} after {result.iterations} "
          f"iterations")
    top = np.argsort(result.values)[-5:][::-1]
    print("top-5 vertices by PageRank:")
    for rank, vertex in enumerate(top, start=1):
        print(f"  {rank}. vertex {vertex:6d}  "
              f"score {result.values[vertex]:.6f}")

    print(f"\nsimulated execution: {stats.seconds * 1e3:.3f} ms, "
          f"{stats.joules * 1e3:.3f} mJ")
    print("energy breakdown:")
    for component in stats.energy.components():
        joules = stats.energy.energy_of(component)
        share = 100.0 * joules / stats.joules
        print(f"  {component:16s} {joules * 1e3:10.4f} mJ  ({share:5.1f}%)")
    print(f"non-empty subgraphs streamed per iteration: "
          f"{stats.extra['nonempty_subgraphs']} "
          f"of {stats.extra['subgraph_slots']} slots")


if __name__ == "__main__":
    main()
