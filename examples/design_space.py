#!/usr/bin/env python
"""Design-space exploration: sweep the GraphR geometry.

The paper fixes crossbar size S=8, C=32 crossbars per GE and G=64 GEs.
This example sweeps S and G on PageRank/WikiVote and prints how
simulated time and energy respond — the kind of study an architect
would run before taping out a node.

Usage::

    python examples/design_space.py
"""

from __future__ import annotations

from repro import GraphR, GraphRConfig, dataset
from repro.experiments.report import render_table


def run_config(graph, **overrides):
    config = GraphRConfig(mode="analytic", **overrides)
    accelerator = GraphR(config)
    _, stats = accelerator.run("pagerank", graph, max_iterations=10)
    return config, stats


def main() -> None:
    graph = dataset("WV")
    print(f"workload: 10 PageRank iterations on {graph}\n")

    body = []
    for crossbar_size in (4, 8, 16):
        for num_ges in (16, 64, 256):
            config, stats = run_config(graph,
                                       crossbar_size=crossbar_size,
                                       num_ges=num_ges)
            body.append([
                str(crossbar_size),
                str(config.crossbars_per_ge),
                str(num_ges),
                str(config.logical_crossbars),
                f"{stats.seconds * 1e6:.1f}",
                f"{stats.joules * 1e3:.2f}",
            ])
    print(render_table(
        ["S", "C", "G", "logical crossbars", "time (us)", "energy (mJ)"],
        body,
    ))
    print("\nReading the table: more GEs buy time linearly until the "
          "sequential edge scan binds; larger crossbars trade fewer, "
          "denser tiles against more wasted cells per tile.")


if __name__ == "__main__":
    main()
