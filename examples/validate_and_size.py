#!/usr/bin/env python
"""Cross-mode validation and silicon sizing of a GraphR node.

Before trusting large analytic sweeps, check that the three views of a
computation agree (reference / functional devices / analytic events),
then report the silicon area the accelerator overlay would cost — the
pre-tapeout sanity ritual.

Usage::

    python examples/validate_and_size.py
"""

from __future__ import annotations

from repro import GraphRConfig
from repro.experiments.validation import validate_matrix
from repro.graph.generators import rmat
from repro.hw.area import node_area_mm2


def main() -> None:
    graph = rmat(6, 300, seed=41, weighted=True, name="validation")
    print(f"validation workloads on {graph}\n")

    reports = validate_matrix(graph)
    for report in reports.values():
        print(report.describe())
    all_passed = all(r.passed for r in reports.values())
    print(f"\nall validations passed: {all_passed}")

    print("\nsilicon area of the paper's node (S=8, C=32, G=64):")
    print(node_area_mm2(GraphRConfig()).describe())

    small = GraphRConfig(num_ges=16)
    print("\nsame node with G=16:")
    print(node_area_mm2(small).describe())


if __name__ == "__main__":
    main()
