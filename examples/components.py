#!/usr/bin/env python
"""Weakly connected components + multi-node GraphR (extension demo).

Shows two features beyond the paper's evaluated scope that its design
supports: an additional SpMV-form vertex program (min-label component
propagation) and the multi-node deployment mode Section 3.1 sketches.

Usage::

    python examples/components.py
"""

from __future__ import annotations

from repro import GraphR, GraphRConfig
from repro.algorithms.wcc import component_sizes, wcc_reference
from repro.core.multinode import MultiNodeConfig, MultiNodeGraphR
from repro.graph.analysis import summarize
from repro.graph.generators import rmat


def main() -> None:
    graph = rmat(9, 2000, seed=31, name="rmat512")
    print(summarize(graph).describe())

    # --- WCC on a single GraphR node --------------------------------
    result, stats = GraphR(GraphRConfig(mode="analytic")).run(
        "wcc", graph)
    sizes = component_sizes(result.values)
    largest = max(sizes.values())
    print(f"\nWCC: {len(sizes)} components, largest holds {largest} "
          f"vertices ({100.0 * largest / graph.num_vertices:.1f}%)")
    print(f"single node: {stats.seconds * 1e3:.3f} ms, "
          f"{stats.joules * 1e3:.2f} mJ, {stats.iterations} iterations")

    # --- the same workload on a 4-node cluster ----------------------
    cluster = MultiNodeGraphR(MultiNodeConfig(num_nodes=4))
    print(f"\ncluster: {cluster}")
    c_result, c_stats = cluster.run("pagerank", graph, max_iterations=15)
    mono, m_stats = GraphR(GraphRConfig(mode="analytic")).run(
        "pagerank", graph, max_iterations=15)
    print(f"PageRank 15 iterations:")
    print(f"  1 node : {m_stats.seconds * 1e3:.3f} ms")
    print(f"  4 nodes: {c_stats.seconds * 1e3:.3f} ms "
          f"(incl. {c_stats.latency.seconds_of('exchange') * 1e3:.3f} ms "
          f"property exchange)")
    print(f"  per-node edges: {c_stats.extra['stripe_edges']}")


if __name__ == "__main__":
    main()
