#!/usr/bin/env python
"""Persistent simulation service: submit, poll, reuse.

Spins the whole service stack up *in this process* — durable SQLite
job store, warm worker pool, stdlib HTTP API — then talks to it purely
over HTTP with :class:`repro.service.ServiceClient`, exactly as a
remote client would against a standalone ``repro serve`` daemon:

1. submit a small batch (``POST /v1/jobs``) and poll it to completion;
2. resubmit the same batch — content-key dedup serves every job from
   the result cache, no simulation runs;
3. run a parameter sweep with the service as the sweep backend;
4. read the daemon's live metrics (``GET /v1/metrics``).

Against a real daemon, replace the in-process setup with
``repro serve --workers 4`` and point ``ServiceClient`` at its URL.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.experiments.sweeps import geometry_sweep
from repro.service import (ServiceClient, SimulationService,
                           serve_in_thread)

JOBS = [
    {"algorithm": "pagerank", "dataset": "WV",
     "run_kwargs": {"max_iterations": 5}},
    {"algorithm": "spmv", "dataset": "WV"},
    {"algorithm": "bfs", "dataset": "WV", "platform": "cpu",
     "run_kwargs": {"source": 0}},
]


def main() -> None:
    scratch = Path(tempfile.mkdtemp(prefix="repro-service-demo-"))
    service = SimulationService(scratch / "jobs.db", workers=2)
    service.start()
    server = serve_in_thread(service)
    client = ServiceClient(server.url, poll_interval_s=0.1)
    print(f"service up at {server.url} (db {service.db_path})\n")

    try:
        # 1. Submit and poll.
        started = time.perf_counter()
        submissions = client.submit(JOBS)
        details = client.wait_for([s["id"] for s in submissions],
                                  timeout_s=300)
        cold = time.perf_counter() - started
        print(f"cold batch: {len(details)} job(s) in {cold:.2f}s")
        for detail in details:
            spec = detail["spec"]
            stats = detail["stats"]
            print(f"  {detail['id']}  "
                  f"{spec.get('platform', 'graphr')}:"
                  f"{spec['algorithm']}:{spec['dataset']}  "
                  f"{detail['state']}  {stats['seconds']:.3e} s")

        # 2. Resubmit: dedup + cache serve, no execution.
        started = time.perf_counter()
        again = client.submit(JOBS)
        warm = time.perf_counter() - started
        assert all(s["from_cache"] and s["state"] == "done"
                   for s in again)
        print(f"\nwarm resubmit: all {len(again)} served from cache "
              f"in {warm * 1000:.1f} ms")

        # 3. The service as a sweep backend.
        points = geometry_sweep("WV", crossbar_sizes=(4, 8),
                                ge_counts=(16,),
                                run_kwargs={"max_iterations": 2},
                                runner=client)
        print("\ngeometry sweep through the service:")
        for point in points:
            print(f"  {point.parameters}  {point.seconds:.3e} s")

        # 4. Live metrics.
        metrics = client.metrics()
        print(f"\nmetrics: queue_depth={metrics['queue_depth']} "
              f"completed={metrics['jobs']['completed']} "
              f"served_from_cache="
              f"{metrics['jobs']['served_from_cache']} "
              f"cache_hit_rate={metrics['cache']['hit_rate']:.2f}")
    finally:
        server.shutdown()
        service.stop()
        print("\nservice stopped (jobs stay in the db; a restart "
              "would requeue unfinished work)")


if __name__ == "__main__":
    main()
