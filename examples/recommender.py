#!/usr/bin/env python
"""Collaborative filtering on the Netflix analog (the paper's CF
workload, feature length 32).

Trains the factor model on the bipartite rating graph, reports the
reconstruction RMSE per epoch budget, and prints item recommendations
for one user — the end-to-end application the paper's evaluation
motivates.

Usage::

    python examples/recommender.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphR, GraphRConfig, dataset
from repro.algorithms.cf import cf_rmse
from repro.graph.datasets import PAPER_DATASETS


def main() -> None:
    graph = dataset("NF")
    spec = PAPER_DATASETS["NF"]
    num_users = graph.num_vertices - spec.items
    print(f"ratings graph: {graph} "
          f"({num_users} users x {spec.items} movies)")

    accelerator = GraphR(GraphRConfig(mode="analytic"))
    result, stats = accelerator.run("cf", graph, features=32, epochs=6)
    rmse = cf_rmse(graph, result.values)
    print(f"\ntrained 32-feature model in {result.iterations} epochs; "
          f"rating RMSE = {rmse:.3f}")
    print(f"simulated accelerator cost: {stats.seconds * 1e3:.2f} ms, "
          f"{stats.joules * 1e3:.1f} mJ")

    # Recommend for the heaviest-rating user.
    user = int(np.argmax(graph.out_degrees()[:num_users]))
    factors = result.values
    items = np.arange(num_users, graph.num_vertices)
    scores = factors[items] @ factors[user]

    rated = set(
        int(d) for s, d, _ in graph.adjacency if s == user)
    print(f"\nuser {user} rated {len(rated)} movies; top suggestions "
          f"among unseen ones:")
    order = items[np.argsort(scores)[::-1]]
    shown = 0
    for item in order:
        if int(item) in rated:
            continue
        movie = int(item) - num_users
        print(f"  movie {movie:5d}  predicted score "
              f"{scores[item - num_users]:.2f}")
        shown += 1
        if shown == 5:
            break


if __name__ == "__main__":
    main()
