#!/usr/bin/env python
"""Batch runtime: fan a job grid across workers with a result cache.

Builds a small (platform x algorithm) grid on WikiVote, runs it through
:class:`repro.runtime.BatchRunner` twice with a persistent cache, and
shows that the second pass is answered entirely from disk — the
workflow behind ``repro batch jobs.json --workers N --cache-dir PATH``.

The second half demonstrates the batched functional engine: the same
WikiVote PageRank executed through the device models, once with the
default crossbar-tile batching and once with the bit-identical
per-tile reference loop (``functional_batch_size=0``).
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import GraphR, GraphRConfig, dataset
from repro.runtime import BatchRunner, Job


def build_jobs() -> list:
    """A 2-platform x 3-algorithm grid on the WikiVote analog."""
    jobs = []
    for platform in ("graphr", "cpu"):
        jobs.append(Job("pagerank", "WV", platform=platform,
                        run_kwargs={"max_iterations": 5}))
        jobs.append(Job("bfs", "WV", platform=platform,
                        run_kwargs={"source": 0}))
        jobs.append(Job("spmv", "WV", platform=platform))
    return jobs


def functional_batching_demo() -> None:
    """Batched vs per-tile functional execution on WikiVote PageRank.

    Auto mode now picks the functional engine for WV-sized graphs (the
    projected tile x iteration work fits ``functional_tile_budget``);
    the batch size only changes wall-clock, never the results.
    """
    graph = dataset("WV")
    outputs = {}
    for label, batch_size in (("batched", 256), ("per-tile", 0)):
        accel = GraphR(GraphRConfig(
            mode="functional", functional_batch_size=batch_size))
        start = time.perf_counter()
        result, stats = accel.run("pagerank", graph, max_iterations=5)
        elapsed = time.perf_counter() - start
        outputs[label] = result.values
        print(f"  {label:8s} (batch={batch_size:3d}): "
              f"{elapsed:6.3f}s wall, {stats.iterations} iterations, "
              f"simulated {stats.seconds * 1e3:.3f} ms")
    identical = np.array_equal(outputs["batched"], outputs["per-tile"])
    print(f"  results bit-identical: {identical}")


def main() -> None:
    jobs = build_jobs()
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = BatchRunner(workers=2, cache_dir=cache_dir)

        print("first pass (simulating):")
        for result in runner.run_jobs(jobs):
            stats = result.unwrap()
            origin = "cache" if result.from_cache else "fresh"
            print(f"  [{origin}] {stats.summary()}")

        print("\nsecond pass (same cache dir):")
        rerun = BatchRunner(workers=2, cache_dir=cache_dir)
        for result in rerun.run_jobs(jobs):
            stats = result.unwrap()
            origin = "cache" if result.from_cache else "fresh"
            print(f"  [{origin}] {stats.summary()}")

        cache = rerun.cache_stats()
        print(f"\nsecond-pass cache stats: {cache['hits']} hits, "
              f"{cache['misses']} misses "
              f"(hit rate {cache['hit_rate']:.0%})")

    print("\nfunctional batching (WV pagerank, device-level engine):")
    functional_batching_demo()


if __name__ == "__main__":
    main()
