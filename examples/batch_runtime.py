#!/usr/bin/env python
"""Batch runtime: fan a job grid across workers with a result cache.

Builds a small (platform x algorithm) grid on WikiVote, runs it through
:class:`repro.runtime.BatchRunner` twice with a persistent cache, and
shows that the second pass is answered entirely from disk — the
workflow behind ``repro batch jobs.json --workers N --cache-dir PATH``.
"""

from __future__ import annotations

import tempfile

from repro.runtime import BatchRunner, Job


def build_jobs() -> list:
    """A 2-platform x 3-algorithm grid on the WikiVote analog."""
    jobs = []
    for platform in ("graphr", "cpu"):
        jobs.append(Job("pagerank", "WV", platform=platform,
                        run_kwargs={"max_iterations": 5}))
        jobs.append(Job("bfs", "WV", platform=platform,
                        run_kwargs={"source": 0}))
        jobs.append(Job("spmv", "WV", platform=platform))
    return jobs


def main() -> None:
    jobs = build_jobs()
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = BatchRunner(workers=2, cache_dir=cache_dir)

        print("first pass (simulating):")
        for result in runner.run_jobs(jobs):
            stats = result.unwrap()
            origin = "cache" if result.from_cache else "fresh"
            print(f"  [{origin}] {stats.summary()}")

        print("\nsecond pass (same cache dir):")
        rerun = BatchRunner(workers=2, cache_dir=cache_dir)
        for result in rerun.run_jobs(jobs):
            stats = result.unwrap()
            origin = "cache" if result.from_cache else "fresh"
            print(f"  [{origin}] {stats.summary()}")

        cache = rerun.cache_stats()
        print(f"\nsecond-pass cache stats: {cache['hits']} hits, "
              f"{cache['misses']} misses "
              f"(hit rate {cache['hit_rate']:.0%})")


if __name__ == "__main__":
    main()
