#!/usr/bin/env python
"""Device-exact SSSP: the parallel-add-op pattern on functional GEs.

Builds a small weighted graph, runs SSSP through the *functional*
device chain (bit-sliced crossbars, one-hot row selects, sALU min —
Figure 16 of the paper) and verifies the distances are identical to
Dijkstra's algorithm.

Usage::

    python examples/shortest_paths.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphR, GraphRConfig
from repro.algorithms.sssp import INFINITY, dijkstra_reference
from repro.graph.generators import rmat


def main() -> None:
    graph = rmat(8, 1500, seed=21, weighted=True, name="rmat256w")
    print(f"graph: {graph}")

    config = GraphRConfig(
        crossbar_size=4,
        crossbars_per_ge=8,
        num_ges=4,
        mode="functional",
        max_iterations=100,
    )
    accelerator = GraphR(config)
    result, stats = accelerator.run("sssp", graph, source=0)
    oracle = dijkstra_reference(graph, source=0)

    exact = np.array_equal(result.values, oracle.values)
    reachable = int((result.values < INFINITY).sum())
    print(f"\ndistances identical to Dijkstra: {exact}")
    print(f"reachable vertices: {reachable} / {graph.num_vertices}")
    print(f"iterations (relaxation rounds): {result.iterations}")

    print(f"\nsimulated time: {stats.seconds * 1e6:.2f} us")
    print("latency breakdown:")
    for phase in stats.latency.phases():
        seconds = stats.latency.seconds_of(phase)
        print(f"  {phase:22s} {seconds * 1e6:9.3f} us")

    sample = np.flatnonzero(result.values < INFINITY)[:8]
    print("\nsample distances from vertex 0:")
    for v in sample:
        print(f"  vertex {int(v):4d}: {result.values[v]:.0f}")


if __name__ == "__main__":
    main()
