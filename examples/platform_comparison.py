#!/usr/bin/env python
"""Mini evaluation: GraphR vs CPU, GPU and PIM on one workload.

Reproduces a single column of the paper's Figures 17-20: PageRank on
the Amazon analog across all four simulated platforms, printing the
speedups and energy savings relative to the CPU baseline.

Usage::

    python examples/platform_comparison.py [dataset] [algorithm]
    python examples/platform_comparison.py LJ sssp
"""

from __future__ import annotations

import sys

from repro import GraphR, GraphRConfig, dataset
from repro.baselines import CPUPlatform, GPUPlatform, PIMPlatform
from repro.experiments.report import render_table


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "AZ"
    algorithm = sys.argv[2] if len(sys.argv) > 2 else "pagerank"
    if algorithm in ("bfs", "sssp"):
        kwargs = {"source": 0}
    elif algorithm == "pagerank":
        kwargs = {"max_iterations": 20}
    elif algorithm == "cf":
        kwargs = {"epochs": 3}
    else:
        kwargs = {}
    graph = dataset(code, weighted=(algorithm == "sssp"))
    print(f"workload: {algorithm} on {graph}\n")

    runs = {}
    accelerator = GraphR(GraphRConfig(mode="analytic"))
    _, runs["graphr"] = accelerator.run(algorithm, graph, **kwargs)
    for platform in (CPUPlatform(), GPUPlatform(), PIMPlatform()):
        _, runs[platform.name] = platform.run(algorithm, graph, **kwargs)

    cpu = runs["cpu"]
    body = []
    for name in ("cpu", "gpu", "pim", "graphr"):
        stats = runs[name]
        body.append([
            name,
            f"{stats.seconds * 1e3:.3f}",
            f"{stats.joules:.4f}",
            f"{cpu.seconds / stats.seconds:.2f}x",
            f"{cpu.joules / stats.joules:.2f}x",
        ])
    print(render_table(
        ["platform", "time (ms)", "energy (J)",
         "speedup vs CPU", "energy saving vs CPU"],
        body,
    ))

    graphr = runs["graphr"]
    print(f"\nGraphR vs GPU: {runs['gpu'].seconds / graphr.seconds:.2f}x "
          f"faster, {runs['gpu'].joules / graphr.joules:.2f}x less energy")
    print(f"GraphR vs PIM: {runs['pim'].seconds / graphr.seconds:.2f}x "
          f"faster, {runs['pim'].joules / graphr.joules:.2f}x less energy")


if __name__ == "__main__":
    main()
