"""Figure 19: GraphR vs GPU (PR, SSSP on LiveJournal; CF on Netflix).

Paper numbers: 1.69x-2.19x speedup; 4.77x-8.91x less energy.  The PR
and CF speedups exceed SSSP's... no — the paper notes SSSP's *speedup
is lower* than PR/CF because the GPU's cache hierarchy supports the
random accesses SSSP needs; in our traces SSSP's GPU iterations are
light, so we assert the band, not the per-algorithm ordering.

Shape assertions:
* GraphR wins every comparison (speedup and energy);
* speedups sit in a band around the paper's 1.69-2.19x ([1.2, 3.5]);
* energy savings are substantially larger than speedups (paper:
  4.77-8.91x vs 1.69-2.19x).
"""

from __future__ import annotations

from repro.experiments.calibration import BANDS
from repro.experiments.figures import figure19


def test_figure19_gpu_shape(benchmark, runner):
    result = benchmark.pedantic(lambda: figure19(runner),
                                rounds=1, iterations=1)
    print("\n" + result.describe())

    assert [(r.algorithm, r.dataset) for r in result.rows] == [
        ("pagerank", "LJ"), ("sssp", "LJ"), ("cf", "NF")]

    for row in result.rows:
        assert row.speedup > 1.0, f"{row.algorithm}: GraphR must win"
        assert BANDS["speedup_vs_gpu"].contains(row.speedup), \
            f"{row.algorithm} speedup {row.speedup:.2f} outside the " \
            f"paper band (1.69-2.19) tolerance"
        assert row.energy_saving > row.speedup, \
            "energy gap must exceed performance gap (paper: 4.77-8.91x)"
        assert row.energy_saving >= 3.0
