"""Figure 21: sensitivity to sparsity.

The paper plots GraphR's performance and energy saving over CPU for PR
and SSSP against dataset density (#edges / #vertices^2, WV..LJ): both
metrics *decrease* as density decreases, because sparser graphs spread
their edges over more subgraph tiles, slowing edge access.

Shape assertions: for both algorithms, the densest dataset (WV) gives
the largest speedup and energy saving, the sparsest (WG/LJ) the
smallest; the overall trend down-with-sparsity holds in rank
correlation.
"""

from __future__ import annotations

from repro.experiments.figures import figure21


def _rank_correlation(xs, ys) -> float:
    """Spearman rank correlation without scipy dependency here."""
    def ranks(vals):
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        out = [0.0] * len(vals)
        for rank, idx in enumerate(order):
            out[idx] = float(rank)
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def test_figure21_sparsity_trend(benchmark, runner):
    result = benchmark.pedantic(lambda: figure21(runner),
                                rounds=1, iterations=1)
    print("\n" + result.describe())
    densities = result.extra["density"]

    for algorithm in ("pagerank", "sssp"):
        rows = [r for r in result.rows if r.algorithm == algorithm]
        dens = [densities[r.dataset] for r in rows]
        speed = [r.speedup for r in rows]
        energy = [r.energy_saving for r in rows]

        densest = max(range(len(rows)), key=lambda i: dens[i])
        sparsest = min(range(len(rows)), key=lambda i: dens[i])
        assert speed[densest] > speed[sparsest], \
            f"{algorithm}: performance should fall with sparsity"
        assert energy[densest] > energy[sparsest], \
            f"{algorithm}: energy saving should fall with sparsity"

        assert _rank_correlation(dens, speed) > 0.5, \
            f"{algorithm}: speedup not increasing with density"
