"""Ablation: analog-noise resilience (the paper's Section 1 claim).

"The iterative algorithms could tolerate the imprecise values by
nature" — we run PageRank functionally with Gaussian crossbar read
noise and check the result still identifies the same top-ranked
vertices as the exact reference.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.pagerank import pagerank_reference
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.generators import rmat


def test_pagerank_tolerates_read_noise(benchmark):
    graph = rmat(8, 1200, seed=11)
    reference = pagerank_reference(graph)
    top_ref = set(np.argsort(reference.values)[-10:])

    def noisy_run():
        config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                              num_ges=4, mode="functional",
                              noise_sigma=0.5, max_iterations=60)
        result, _ = GraphR(config).run("pagerank", graph)
        return result

    result = benchmark.pedantic(noisy_run, rounds=1, iterations=1)
    top_noisy = set(np.argsort(result.values)[-10:])
    overlap = len(top_ref & top_noisy)
    print(f"\ntop-10 overlap under noise: {overlap}/10")
    assert overlap >= 7, "rankings should survive analog read noise"
