"""Table 1: qualitative architecture comparison.

Regenerates the paper's Table 1 and checks the GraphR column states the
two differentiators the paper claims: crossbar-based processEdge and
purely sequential (preprocessed) memory access.
"""

from __future__ import annotations

from repro.experiments.tables import table1


def test_table1_rows(benchmark):
    rows, text = benchmark(table1)
    print("\n" + text)
    names = [r.architecture for r in rows]
    assert names == ["CPU", "GPU", "Tesseract", "GAA",
                     "Graphicionado", "GraphR"]
    graphr = rows[-1]
    assert "crossbar" in graphr.process_edge.lower()
    assert "sequential" in graphr.memory_access.lower()
    assert "spmv" in graphr.generality.lower()
