"""Table 3: dataset inventory.

Generates every dataset analog and checks the published statistics are
honoured: unscaled datasets match the paper's vertex/edge counts
(edges exactly, vertices up to power-of-two rounding), scaled ones
record their scale factor and stay within the generation cap.
"""

from __future__ import annotations

from repro.experiments.tables import table3
from repro.graph.datasets import MAX_SYNTH_EDGES, PAPER_DATASETS


def test_table3_generated_datasets(benchmark):
    rows, text = benchmark.pedantic(
        lambda: table3(generate=True), rounds=1, iterations=1)
    print("\n" + text)
    assert set(rows) == set(PAPER_DATASETS)
    for code, entry in rows.items():
        spec = PAPER_DATASETS[code]
        assert entry["paper_edges"] == spec.paper_edges
        if spec.paper_edges <= MAX_SYNTH_EDGES and not spec.bipartite:
            assert entry["generated_edges"] == spec.paper_edges
            # R-MAT rounds vertices up to the next power of two.
            assert entry["generated_vertices"] >= spec.paper_vertices
            assert entry["generated_vertices"] < 2 * spec.paper_vertices
            assert entry["scale_factor"] == 1.0
        else:
            assert entry["generated_edges"] <= MAX_SYNTH_EDGES
            assert entry["scale_factor"] >= 1.0
