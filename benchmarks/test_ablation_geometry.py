"""Ablation: crossbar geometry sweep (DESIGN.md Section 5.4).

The paper fixes S=8, C=32, G=64.  This bench sweeps the crossbar size
and GE count on PageRank/WV and checks the cost model responds sanely:
more GEs -> faster (more parallel tiles); larger crossbars -> fewer,
denser tiles (time should not increase by more than the sparsity waste
allows).
"""

from __future__ import annotations

import pytest

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.datasets import dataset


def _run(config: GraphRConfig) -> float:
    accel = GraphR(config)
    _, stats = accel.run("pagerank", dataset("WV"), max_iterations=10)
    return stats.seconds


def test_more_ges_is_faster(benchmark):
    def sweep():
        few = _run(GraphRConfig(mode="analytic", num_ges=16))
        many = _run(GraphRConfig(mode="analytic", num_ges=64))
        return few, many

    few, many = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nG=16: {few * 1e3:.3f} ms   G=64: {many * 1e3:.3f} ms")
    assert many < few, "4x the graph engines must not be slower"


@pytest.mark.parametrize("crossbar_size", [4, 8, 16])
def test_crossbar_size_sweep(benchmark, crossbar_size):
    seconds = benchmark.pedantic(
        lambda: _run(GraphRConfig(mode="analytic",
                                  crossbar_size=crossbar_size)),
        rounds=1, iterations=1)
    print(f"\nS={crossbar_size}: {seconds * 1e3:.3f} ms")
    assert seconds > 0
