"""Ablation: out-of-core block size ``B`` (Figure 9's memory knob).

Smaller blocks shrink the memory-ReRAM footprint a node needs but add
per-block padding and boundary tiles.  The bench sweeps B on
PageRank/WV and checks the cost response stays modest — GraphR's
streaming order makes blocking cheap, which is the point of the
preprocessing design.
"""

from __future__ import annotations

from repro.experiments.sweeps import block_size_sweep
from repro.graph.datasets import dataset


def test_block_size_sweep_is_gentle(benchmark):
    def sweep():
        graph = dataset("WV")
        return block_size_sweep(
            graph,
            block_sizes=(1024, 4096, graph.num_vertices),
            run_kwargs={"max_iterations": 5},
        )

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for point in points:
        print(f"B={point.parameters['block_size']:6d}: "
              f"{point.seconds * 1e3:8.3f} ms, "
              f"{point.joules * 1e3:8.2f} mJ")
    assert all(p.seconds > 0 for p in points)
    whole = points[-1]
    smallest = points[0]
    # Blocking costs something, but the streaming order keeps the
    # penalty under ~3x even at 1/8th-graph blocks.
    assert smallest.seconds <= 3.0 * whole.seconds
