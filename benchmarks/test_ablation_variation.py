"""Ablation: device variation (programming variation + IR drop).

Extends the noise ablation with the two non-idealities
:mod:`repro.reram.variation` models: PageRank's top ranking must
survive realistic programming variation (sigma ~ 0.1) and moderate IR
drop (alpha ~ 0.1), and accuracy must degrade monotonically as the
non-ideality grows.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.pagerank import pagerank_reference
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.generators import rmat


def _top_overlap(graph, k: int = 10, **variation) -> int:
    reference = pagerank_reference(graph)
    config = GraphRConfig(crossbar_size=4, crossbars_per_ge=8,
                          num_ges=4, mode="functional",
                          max_iterations=60, **variation)
    result, _ = GraphR(config).run("pagerank", graph)
    top_ref = set(np.argsort(reference.values)[-k:])
    top_var = set(np.argsort(result.values)[-k:])
    return len(top_ref & top_var)


def test_realistic_variation_preserves_ranking(benchmark):
    graph = rmat(8, 1200, seed=29)

    def run():
        return _top_overlap(graph, programming_sigma=0.1,
                            ir_drop_alpha=0.1)

    overlap = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntop-10 overlap under sigma=0.1, alpha=0.1: {overlap}/10")
    assert overlap >= 7


def test_accuracy_degrades_with_variation(benchmark):
    graph = rmat(8, 1200, seed=29)

    def run():
        mild = _top_overlap(graph, programming_sigma=0.05)
        harsh = _top_overlap(graph, programming_sigma=0.8)
        return mild, harsh

    mild, harsh = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\noverlap sigma=0.05: {mild}/10, sigma=0.8: {harsh}/10")
    assert mild >= harsh
