"""Functional batching: wall-clock win of the batched engine.

The batched path stacks non-empty crossbar tiles into ``(B, S, S)``
blocks (one vectorised scatter + one einsum per batch) where the
per-tile reference loop makes one engine call per crossbar tile.  Both
are bit-identical (asserted in the unit suite); this benchmark pins the
performance claim — the batched path must beat the per-tile loop by at
least 5x on WikiVote PageRank — and smoke-tests that auto mode now
runs the paper-scale WV/SD workloads functionally end-to-end.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.registry import get_program
from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.core.controller import Controller
from repro.graph.datasets import dataset

#: Iterations measured for the speedup ratio: enough work to dominate
#: setup, small enough to keep the per-tile baseline quick.
MEASURED_ITERATIONS = 3


def _functional_seconds(graph, batch_size: int) -> float:
    config = GraphRConfig(mode="functional",
                          functional_batch_size=batch_size)
    controller = Controller(config, graph, get_program("pagerank"))
    start = time.perf_counter()
    controller.run_functional(max_iterations=MEASURED_ITERATIONS)
    return time.perf_counter() - start


def test_wv_pagerank_batched_speedup(benchmark):
    graph = dataset("WV")
    # Warm the dataset/streamer caches outside the measured region.
    _functional_seconds(graph, 256)
    batched = benchmark.pedantic(
        lambda: _functional_seconds(graph, 256), rounds=1, iterations=1)
    per_tile = _functional_seconds(graph, 0)
    speedup = per_tile / batched
    print(f"\nWV pagerank functional: per-tile {per_tile:.3f}s, "
          f"batched {batched:.3f}s -> {speedup:.1f}x")
    assert speedup >= 5.0, \
        f"batched path must be >=5x the per-tile loop, got {speedup:.1f}x"


def test_wv_and_sd_run_functional_end_to_end():
    """Auto mode picks the functional engine for the paper's two
    smallest graphs — PageRank on WV, SSSP on WV and SD — and the runs
    complete with converged results."""
    accel = GraphR()

    result, stats = accel.run("pagerank", dataset("WV"),
                              max_iterations=20)
    assert stats.extra["mode"] == "functional"
    assert np.isfinite(result.values).all()

    for code in ("WV", "SD"):
        graph = dataset(code, weighted=True)
        result, stats = accel.run("sssp", graph, source=0)
        assert stats.extra["mode"] == "functional", code
        assert result.converged, code


def test_batched_and_per_tile_bit_identical_on_wv():
    """The acceptance check at paper scale: same values, same stats."""
    graph = dataset("WV")
    outputs = []
    for batch_size in (256, 0):
        config = GraphRConfig(mode="functional",
                              functional_batch_size=batch_size)
        controller = Controller(config, graph, get_program("pagerank"))
        result, stats = controller.run_functional(max_iterations=2)
        outputs.append((result.values, stats.to_dict()))
    assert np.array_equal(outputs[0][0], outputs[1][0])
    assert outputs[0][1] == outputs[1][1]
