"""Ablation: selective block scanning (an optimisation beyond the paper).

The paper's controller streams every block each iteration — all memory
accesses stay sequential (Section 3.5).  With per-block activity
metadata, blocks containing no active-source edges could be skipped
entirely.  This bench quantifies what that would buy on SSSP, whose
early iterations touch a tiny frontier.
"""

from __future__ import annotations

from repro.core.accelerator import GraphR
from repro.core.config import GraphRConfig
from repro.graph.datasets import dataset


def test_selective_scan_helps_frontier_algorithms(benchmark):
    def ablate():
        graph = dataset("AZ", weighted=True)
        base = GraphRConfig(mode="analytic", block_size=16384)
        plain = GraphR(base)
        selective = GraphR(base.with_overrides(selective_block_scan=True))
        _, on = selective.run("sssp", graph, source=0)
        _, off = plain.run("sssp", graph, source=0)
        return on, off

    on, off = benchmark.pedantic(ablate, rounds=1, iterations=1)
    gain = off.seconds / on.seconds
    print(f"\nfull scan: {off.seconds * 1e3:.3f} ms   "
          f"selective: {on.seconds * 1e3:.3f} ms   gain: {gain:.2f}x")
    # Never slower; usually saves a measurable fraction of scan time.
    assert on.seconds <= off.seconds
    assert on.joules <= off.joules
